"""Shortest routes over an evolving road network.

A city road network (grid graph) evolves over a two-week window: some road
segments close (deletions — construction) and new segments open
(additions).  A logistics operator wants the shortest travel time from the
depot to every intersection *on every day* — a textbook evolving-graph
query (track a property over a time window), not a streaming one.

The example evaluates SSSP over all days with the deletion-free BOE
workflow, prints how the route cost to the farthest corner changes as the
network evolves, and compares against the streaming baseline that has to
process the closures as expensive deletions.

Run:  python examples/road_traffic.py
"""

import numpy as np

from repro import get_algorithm, synthesize_scenario
from repro.engines import PlanExecutor
from repro.engines.validation import validate_workflow
from repro.graph.generators import grid_edges
from repro.schedule import boe_plan, streaming_plan

ROWS, COLS = 24, 24
N_DAYS = 14


def main() -> None:
    # Road grid with travel-time weights; extra diagonal "express" links
    # form the pool of segments that can open during the window.
    roads = grid_edges(ROWS, COLS, seed=3)
    rng = np.random.default_rng(3)
    n = ROWS * COLS
    express_src = rng.integers(0, n - COLS - 1, size=300)
    express = type(roads)(
        n,
        express_src,
        np.minimum(express_src + COLS + 1, n - 1),
        rng.uniform(1.0, 4.0, size=300),
    )
    pool = roads.concat(express).without_self_loops().deduplicate()

    # construction-heavy fortnight: closures outnumber openings 2:1
    scenario = synthesize_scenario(
        pool,
        n_snapshots=N_DAYS,
        batch_pct=0.03,
        add_fraction=0.33,
        seed=9,
        source=0,  # the depot sits at the north-west corner
        name="roads",
    )
    sssp = get_algorithm("sssp")
    print(
        f"road network: {n} intersections, "
        f"{scenario.unified.n_union_edges} segments in the window, "
        f"{N_DAYS} daily snapshots"
    )

    result = PlanExecutor(scenario, sssp).run(boe_plan(scenario.unified))
    validate_workflow(scenario, sssp, result)

    far_corner = n - 1
    print(f"\n{'day':>4} {'open segments':>14} {'depot->far corner':>18}")
    for day in range(N_DAYS):
        dist = result.values(day)[far_corner]
        n_open = scenario.snapshot_graph(day).n_edges
        cost = f"{dist:.1f}" if np.isfinite(dist) else "unreachable"
        print(f"{day:>4} {n_open:>14} {cost:>18}")

    # The streaming engine reaches the same answers, paying for deletions.
    streaming = PlanExecutor(scenario, sssp).run(
        streaming_plan(scenario.unified)
    )
    validate_workflow(scenario, sssp, streaming)
    boe_events = result.collector.total("events_generated")
    stream_events = streaming.collector.total("events_generated")
    print(
        f"\nevent work: BOE {boe_events} vs streaming {stream_events} "
        f"({stream_events / max(boe_events, 1):.1f}x more for streaming, "
        f"deletion repair included)"
    )


if __name__ == "__main__":
    main()
