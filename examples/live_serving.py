"""Continuous serving: slide the analysis window as new data arrives.

The paper analyzes a fixed historical window; a deployed monitoring
service keeps answering as time moves on.  This example stands up a
:class:`~repro.core.window_server.WindowServer` over a delivery network,
then feeds it a week of daily transitions: each ``advance`` call reuses
the surviving snapshots' results untouched and computes only the new
latest snapshot (incremental additions + KickStarter repair on a
reconstructed dependence tree).

Run:  python examples/live_serving.py
"""

import numpy as np

from repro import get_algorithm, synthesize_scenario
from repro.analysis import track_reach
from repro.core import WindowServer
from repro.graph.edges import EdgeList, edge_keys
from repro.graph.generators import rmat_edges

N_SITES = 500
N_ROUTES = 5_000
WINDOW = 7  # a rolling week
NEW_DAYS = 5


def random_transition(server, rng, n_adds=20, n_dels=15):
    """A day's churn: some new routes open, some old ones close."""
    u = server.scenario.unified
    n = u.n_vertices
    taken = set(edge_keys(u.graph.src_of_edge, u.graph.dst, n).tolist())
    adds = []
    while len(adds) < n_adds:
        s, d = int(rng.integers(n)), int(rng.integers(n))
        if s == d or s * n + d in taken:
            continue
        taken.add(s * n + d)
        adds.append((s, d, float(rng.uniform(1, 6))))
    deletable = np.flatnonzero(
        u.presence_mask(u.n_snapshots - 1) & (u.add_step < 1)
    )
    chosen = rng.choice(deletable, size=n_dels, replace=False)
    dels = [
        (int(u.graph.src_of_edge[e]), int(u.graph.dst[e])) for e in chosen
    ]
    return EdgeList.from_tuples(n, adds), dels


def main() -> None:
    rng = np.random.default_rng(17)
    pool = rmat_edges(N_SITES, N_ROUTES, seed=23)
    scenario = synthesize_scenario(
        pool, n_snapshots=WINDOW, batch_pct=0.02, seed=3, name="delivery"
    )
    algo = get_algorithm("sssp")
    server = WindowServer(scenario, algo)
    print(
        f"serving a rolling {WINDOW}-day window over {N_SITES} sites; "
        f"initial evaluation done (BOE)"
    )

    for day in range(NEW_DAYS):
        adds, dels = random_transition(server, rng)
        server.advance(adds, dels)
        reach = int(np.isfinite(server.latest()).sum())
        oldest = int(np.isfinite(server.values(0)).sum())
        print(
            f"  day +{day + 1}: +{len(adds)} routes, -{len(dels)} routes; "
            f"latest snapshot reaches {reach} sites "
            f"(oldest in window: {oldest})"
        )

    series = track_reach(server.as_result(), algo)
    print(f"\nreach across the current window: {series.sparkline()}")
    print(f"window slid {server.slides} times; results always ground-truth "
          f"(see tests/test_window_server.py)")


if __name__ == "__main__":
    main()
