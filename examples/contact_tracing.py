"""Contact tracing over an evolving contact graph (the paper's §1 example).

The introduction motivates evolving-graph analytics with Covid-19 contact
tracing: a graph of people who came into contact changes continuously, and
epidemiologists ask how a property — here, the number of people within a
few hops of a known case — progressed over a time window, e.g. after a
variant appeared or a mobility restriction was introduced.

This example builds a synthetic contact network whose window contains a
"mitigation" phase: late transitions delete many more contacts than they
add (lockdown).  BFS hop distance from patient zero is evaluated on every
snapshot *simultaneously* with Batch-Oriented-Execution, and the infection
reach per snapshot shows the mitigation taking effect.

Run:  python examples/contact_tracing.py
"""

import numpy as np

from repro import get_algorithm
from repro.engines import PlanExecutor
from repro.engines.validation import validate_workflow
from repro.evolving.snapshots import EvolvingScenario
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges
from repro.schedule import boe_plan

N_PEOPLE = 600
N_CONTACTS = 7_000
N_SNAPSHOTS = 10
MITIGATION_AT = 5  # lockdown starts at this transition


def build_window(seed: int = 11) -> EvolvingScenario:
    """Hand-tag an evolving window: growth early, lockdown late.

    Early transitions add contacts (social mixing grows); transitions from
    ``MITIGATION_AT`` onward delete them (lockdown).  We tag the union
    edges directly, which is exactly the unified-CSR storage format the
    accelerator consumes (Fig. 6).
    """
    rng = np.random.default_rng(seed)
    pool = rmat_edges(N_PEOPLE, N_CONTACTS, seed=seed)
    order = np.lexsort((pool.dst, pool.src))
    graph = CSRGraph.from_edges(pool)

    m = len(pool)
    add_step = np.full(m, -1, dtype=np.int32)
    del_step = np.full(m, -1, dtype=np.int32)
    shuffled = rng.permutation(m)
    # 25% of contacts appear during the growth phase...
    growth = shuffled[: m // 4]
    add_step[growth] = rng.integers(0, MITIGATION_AT, size=growth.size)
    # ...and 35% disappear during the lockdown.
    locked = shuffled[m // 4: m // 4 + (35 * m) // 100]
    del_step[locked] = rng.integers(
        MITIGATION_AT, N_SNAPSHOTS - 1, size=locked.size
    )
    unified = UnifiedCSR(
        graph, add_step[order], del_step[order], N_SNAPSHOTS
    )
    patient_zero = int(np.argmax(np.diff(unified.common_graph().indptr)))
    return EvolvingScenario(unified, source=patient_zero, name="contacts")


def main() -> None:
    scenario = build_window()
    bfs = get_algorithm("bfs")
    print(
        f"contact window: {N_PEOPLE} people, "
        f"{scenario.unified.n_union_edges} distinct contacts, "
        f"{N_SNAPSHOTS} snapshots, patient zero = {scenario.source}"
    )

    # Evaluate BFS on all snapshots at once with BOE, and double-check it.
    result = PlanExecutor(scenario, bfs).run(boe_plan(scenario.unified))
    validate_workflow(scenario, bfs, result)

    print(f"\n{'snapshot':>8} {'contacts':>9} {'<=2 hops':>9} {'<=4 hops':>9}")
    for k in range(N_SNAPSHOTS):
        hops = result.values(k)
        n_edges = scenario.snapshot_graph(k).n_edges
        within2 = int((hops <= 2).sum())
        within4 = int((hops <= 4).sum())
        marker = "  <- mitigation" if k == MITIGATION_AT + 1 else ""
        print(f"{k:>8} {n_edges:>9} {within2:>9} {within4:>9}{marker}")

    pre = (result.values(MITIGATION_AT) <= 4).sum()
    post = (result.values(N_SNAPSHOTS - 1) <= 4).sum()
    print(
        f"\npeople within 4 hops of patient zero: {int(pre)} before "
        f"mitigation -> {int(post)} at window end"
    )

    # Contact *clusters* per snapshot (connected components via the
    # MinLabel extension algorithm) — the lockdown fragments the network.
    from repro.algorithms import MinLabel

    clusters = PlanExecutor(scenario, MinLabel()).run(
        boe_plan(scenario.unified)
    )
    first = len(np.unique(clusters.values(0)))
    last = len(np.unique(clusters.values(N_SNAPSHOTS - 1)))
    print(
        f"contact clusters (weakly, via directed min-label): "
        f"{first} at window start -> {last} after the lockdown"
    )


if __name__ == "__main__":
    main()
