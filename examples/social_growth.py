"""Influence bandwidth on a growing social network, on the accelerator.

A social platform's follower graph grows over a quarter; the analytics
team tracks, per weekly snapshot, the *widest path* (SSWP — the maximum
bottleneck influence) from a seed account to the rest of the network.
This example runs the full accelerator stack: the JetStream streaming
baseline and MEGA with each CommonGraph workflow, reporting cycles,
events, edge reads, partitions, and the Fig. 5-style reuse that makes
Batch-Oriented-Execution win.

Run:  python examples/social_growth.py
"""

from repro import get_algorithm, synthesize_scenario
from repro.accel import JetStreamSimulator, MegaSimulator
from repro.graph.generators import rmat_edges
from repro.metrics import edge_reuse_across_snapshots, edge_reuse_same_snapshot

N_ACCOUNTS = 2_000
N_FOLLOWS = 24_000
N_WEEKS = 12


def main() -> None:
    pool = rmat_edges(N_ACCOUNTS, N_FOLLOWS, seed=21)
    # growth-heavy window: 80% of the churn is new follows
    scenario = synthesize_scenario(
        pool,
        n_snapshots=N_WEEKS,
        batch_pct=0.015,
        add_fraction=0.8,
        seed=4,
        name="social",
    )
    # pretend the platform is 1000x larger for on-chip capacity purposes
    scenario.metadata["capacity_scale"] = 1 / 1000
    sswp = get_algorithm("sswp")
    print(
        f"follower graph: {N_ACCOUNTS} accounts, "
        f"{scenario.unified.n_union_edges} follows in the window, "
        f"{N_WEEKS} weekly snapshots"
    )

    reuse_same = edge_reuse_same_snapshot(scenario, sswp)
    reuse_cross = edge_reuse_across_snapshots(scenario, sswp)
    print(
        f"edge reuse: {reuse_same:.1%} across batches on one snapshot, "
        f"{reuse_cross:.1%} for one batch across snapshots "
        f"(the Fig. 4/5 asymmetry BOE exploits)"
    )

    jetstream = JetStreamSimulator().run(scenario, sswp, validate=True)
    print(f"\n{'system':24s} {'ms':>8} {'events':>9} {'edge reads':>10} "
          f"{'parts':>5} {'speedup':>8}")
    c = jetstream.counters
    print(
        f"{'jetstream/streaming':24s} {jetstream.update_time_ms:8.4f} "
        f"{c.events_generated:>9} {c.edges_fetched:>10} "
        f"{jetstream.n_partitions:>5} {'1.00x':>8}"
    )
    for workflow, pipeline in [
        ("direct-hop", False),
        ("work-sharing", False),
        ("boe", False),
        ("boe", True),
    ]:
        report = MegaSimulator(workflow, pipeline=pipeline).run(
            scenario, sswp, validate=True
        )
        c = report.counters
        name = f"mega/{report.workflow}"
        print(
            f"{name:24s} {report.update_time_ms:8.4f} "
            f"{c.events_generated:>9} {c.edges_fetched:>10} "
            f"{report.n_partitions:>5} "
            f"{report.speedup_over(jetstream):>7.2f}x"
        )


if __name__ == "__main__":
    main()
