"""Ad-hoc time-window queries and multi-source analysis.

An analyst holds a long history (24 snapshots of a logistics network) and
asks two Tegra-style ad-hoc questions:

1. *Windowing*: "how did delivery reach look during weeks 10-15 only?" —
   the triangular-grid algebra re-roots the unified CSR at the window's
   own common graph, and any workflow runs on the sub-window unchanged.
2. *Multi-query BOE*: "shortest routes from all three depots, on every
   day" — the multi-query extension stacks (query, snapshot) pairs into
   one unified value array, fetching each update batch exactly once.

Run:  python examples/window_queries.py
"""

import numpy as np

from repro import synthesize_scenario
from repro.core import EvolvingGraphEngine
from repro.graph.generators import rmat_edges

N_SITES = 900
N_ROUTES = 10_000
N_DAYS = 24


def main() -> None:
    pool = rmat_edges(N_SITES, N_ROUTES, seed=33)
    scenario = synthesize_scenario(
        pool, n_snapshots=N_DAYS, batch_pct=0.01, seed=12, name="logistics"
    )
    engine = EvolvingGraphEngine(scenario, "sssp")
    print(
        f"history: {N_SITES} sites, {scenario.unified.n_union_edges} routes "
        f"in the union, {N_DAYS} snapshots"
    )

    # -- 1. ad-hoc window -------------------------------------------------
    lo, hi = 10, 15
    window = engine.evaluate_window(lo, hi, validate=True)
    print(f"\nwindow [{lo}, {hi}] — reachable sites per day:")
    for k in range(lo, hi + 1):
        reach = int(np.isfinite(window.values(k - lo)).sum())
        print(f"  day {k:>2}: {reach} sites reachable from the main depot")

    # -- 2. multi-source query over the full history ----------------------
    degrees = np.diff(scenario.common_graph().indptr)
    depots = [int(i) for i in np.argsort(degrees)[-3:]]
    mq = engine.evaluate_multi_query(depots)
    print(f"\nthree-depot study (depots {depots}), full history:")
    for q, depot in enumerate(depots):
        first = mq.values(q, 0)
        last = mq.values(q, N_DAYS - 1)
        print(
            f"  depot {depot:>4}: mean route cost "
            f"{np.nanmean(np.where(np.isfinite(first), first, np.nan)):6.2f} (day 0) -> "
            f"{np.nanmean(np.where(np.isfinite(last), last, np.nan)):6.2f} (day {N_DAYS - 1})"
        )

    # fetch sharing: the batch seeding cost did not triple
    adds = [e for e in mq.collector.executions if e.phase == "add"]
    total_fetch = sum(e.edges_fetched for e in adds)
    print(
        f"\n{len(adds)} shared batch executions fetched {total_fetch} edges "
        f"for {len(depots)} queries x {N_DAYS} snapshots"
    )


if __name__ == "__main__":
    main()
