"""The paper's argument, end to end, on one workload.

Replays MEGA's narrative arc on a single proxy scenario:

  1. §2.2 motivation — deletions are expensive on a streaming accelerator
     (Fig. 2) and the CommonGraph workflows multiply operations (Fig. 3);
  2. the locality asymmetry that justifies Batch-Oriented-Execution
     (Figs. 4/5);
  3. the payoff — one Table 4 row: Direct-Hop, Work-Sharing, BOE and
     BOE+BP speedups over JetStream, all validated against ground truth;
  4. the price — Table 5's power/area overhead of the version machinery.

Run:  python examples/paper_walkthrough.py
"""

import numpy as np

from repro.accel import PowerAreaModel, jetstream_config, mega_config
from repro.accel.simulate import simulate_plan
from repro.core import EvolvingGraphEngine
from repro.evolving.batches import BatchId, BatchKind
from repro.metrics import applied_edge_counts
from repro.schedule.plan import ApplyEdges, DeleteEdges, EvalFull, Plan
from repro.workloads import load_scenario


def step1_deletions(scenario, engine) -> None:
    print("1) Fig. 2 — why CommonGraph kills deletions")
    times = {}
    for kind in (BatchKind.ADDITION, BatchKind.DELETION):
        plan = Plan(name="one", n_states=1, initial_graph="snapshot0")
        plan.steps.append(EvalFull(0))
        batch = BatchId(kind, 0)
        idx = np.flatnonzero(scenario.unified.batch_mask(batch))
        step = (
            ApplyEdges((0,), idx, (batch,))
            if kind is BatchKind.ADDITION
            else DeleteEdges(0, idx, (batch,))
        )
        plan.steps.append(step)
        report, __ = simulate_plan(
            scenario, engine.algorithm, plan, jetstream_config(), concurrent=False
        )
        times[kind.value] = report.update_time_ms * 1000
    print(
        f"   one batch on JetStream: additions {times['add']:.2f} us, "
        f"deletions {times['del']:.2f} us "
        f"({times['del'] / times['add']:.1f}x more expensive)\n"
    )


def step2_operation_counts(scenario) -> None:
    print("2) Fig. 3 — but deletion-free workflows repeat work")
    counts = applied_edge_counts(scenario)
    s = counts["streaming"]
    print(
        f"   edges applied: streaming {s}, work-sharing {counts['work-sharing']} "
        f"({counts['work-sharing'] / s:.1f}x), direct-hop {counts['direct-hop']} "
        f"({counts['direct-hop'] / s:.1f}x)\n"
    )


def step3_reuse(engine) -> None:
    print("3) Figs. 4/5 — the locality asymmetry BOE exploits")
    profile = engine.reuse_profile()
    print(
        f"   fetched-edge overlap: {profile['same_snapshot']:.1%} between "
        f"batches on one snapshot vs {profile['across_snapshots']:.1%} for "
        f"one batch across snapshots\n"
    )


def step4_speedups(engine) -> None:
    print("4) Table 4 — the payoff on the accelerator")
    reports = engine.compare_accelerators()
    js = reports["jetstream"]
    print(f"   JetStream streaming: {js.update_time_ms * 1000:.1f} us")
    for name in ("direct-hop", "work-sharing", "boe", "boe+bp"):
        r = reports[name]
        print(
            f"   MEGA {name:12s}: {r.speedup_over(js):4.2f}x "
            f"({r.n_partitions} partition(s))"
        )
    print()


def step5_cost() -> None:
    print("5) Table 5 — what the version machinery costs")
    model = PowerAreaModel(mega_config())
    total = model.total()
    over = model.overhead_over_jetstream()["Total"]
    print(
        f"   MEGA: {total.total_mw / 1000:.2f} W, {total.area_mm2:.0f} mm^2 "
        f"(+{over[0]:.1f}% power, +{over[1]:.1f}% area over JetStream)"
    )


def main() -> None:
    scenario = load_scenario("LJ", "small")
    engine = EvolvingGraphEngine(scenario, "sssp")
    print(
        f"workload: {scenario.name}, {scenario.n_vertices} vertices, "
        f"{scenario.unified.n_union_edges} union edges, "
        f"{scenario.n_snapshots} snapshots (SSSP)\n"
    )
    step1_deletions(scenario, engine)
    step2_operation_counts(scenario)
    step3_reuse(engine)
    step4_speedups(engine)
    step5_cost()


if __name__ == "__main__":
    main()
