"""Quickstart: evaluate an evolving-graph query with every workflow.

Builds a synthetic evolving graph (8 snapshots over a power-law graph),
evaluates single-source shortest paths on every snapshot with all four
workflows — streaming (JetStream-style), Direct-Hop, Work-Sharing and
Batch-Oriented-Execution — checks they agree with from-scratch ground
truth, and prints the accelerator-model comparison.

Run:  python examples/quickstart.py
"""

from repro import get_algorithm, synthesize_scenario
from repro.accel import JetStreamSimulator, MegaSimulator
from repro.engines import PlanExecutor
from repro.engines.validation import validate_workflow
from repro.graph.generators import rmat_edges
from repro.schedule import plan_for


def main() -> None:
    # 1. An edge pool: the union of everything the graph will ever contain.
    pool = rmat_edges(n_vertices=512, n_edges=6_000, seed=42)

    # 2. Synthesize the evolving window: 8 snapshots, each transition moves
    #    2% of the edges (half additions, half deletions) — §5.1 style.
    scenario = synthesize_scenario(
        pool, n_snapshots=8, batch_pct=0.02, seed=7, name="quickstart"
    )
    print(
        f"scenario: {scenario.n_vertices} vertices, "
        f"{scenario.unified.n_union_edges} union edges, "
        f"{scenario.n_snapshots} snapshots, source={scenario.source}"
    )

    # 3. Evaluate SSSP on every snapshot with each software workflow.
    algo = get_algorithm("sssp")
    for workflow in ("streaming", "direct-hop", "work-sharing", "boe"):
        plan = plan_for(workflow, scenario.unified)
        result = PlanExecutor(scenario, algo).run(plan)
        validate_workflow(scenario, algo, result)  # raises on any mismatch
        reached = int((result.values(scenario.n_snapshots - 1) < float("inf")).sum())
        print(
            f"  {workflow:12s}: ok — last snapshot reaches {reached} vertices"
        )

    # 4. Compare the accelerators: JetStream streaming vs MEGA BOE+BP.
    jetstream = JetStreamSimulator().run(scenario, algo)
    mega = MegaSimulator("boe", pipeline=True).run(scenario, algo)
    print(f"\n{jetstream.summary()}")
    print(mega.summary())
    print(
        f"MEGA speedup over JetStream (update phase): "
        f"{mega.speedup_over(jetstream):.2f}x"
    )


if __name__ == "__main__":
    main()
