"""End-to-end file pipeline: text edges -> events -> window -> npz -> serve.

The adoption path for real data, with every I/O module in one script:

1. a text edge list (the format SNAP/KONECT ship) is written and read
   back;
2. a timestamped event log is cut into a CommonGraph window with the
   builder — including the validity split for a flapping edge;
3. the window is persisted as ``.npz`` (the unified-CSR storage format)
   and reloaded;
4. the reloaded window is evaluated, validated, and served.

Run:  python examples/file_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import get_algorithm
from repro.core import EvolvingGraphEngine
from repro.evolving.builder import EvolvingGraphBuilder
from repro.evolving.windows_split import split_boundaries
from repro.graph.io import (
    load_scenario_file,
    read_edge_list,
    save_scenario,
    write_edge_list,
)
from repro.workloads import karate_club_edges


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="mega_pipeline_"))
    rng = np.random.default_rng(42)

    # 1. text round trip -------------------------------------------------
    edges = karate_club_edges(seed=1)
    text_path = workdir / "karate.txt"
    write_edge_list(edges, text_path)
    base = read_edge_list(text_path)
    print(f"1. {text_path.name}: {len(base)} directed friendships reloaded")

    # 2. an event log over one season ------------------------------------
    builder = EvolvingGraphBuilder(base.n_vertices, base)
    events = []
    taken = set(base.keys.tolist())
    added = 0
    while added < 12:
        s, d = int(rng.integers(34)), int(rng.integers(34))
        if s == d or s * 34 + d in taken:
            continue
        taken.add(s * 34 + d)
        t = float(rng.uniform(0, 10))
        builder.add_edge(t, s, d, weight=float(rng.uniform(1, 4)))
        from repro.evolving.builder import EdgeEvent

        events.append(EdgeEvent(t, s, d, add=True))
        added += 1
    boundaries = np.linspace(0, 10, 6)[1:]
    windows = split_boundaries(
        events, boundaries, 34, initially_present=set(base.keys.tolist())
    )
    print(f"2. event log cut into valid windows: {windows}")
    scenario = builder.build(n_snapshots=6, boundaries=boundaries)

    # 3. persist / reload --------------------------------------------------
    npz_path = workdir / "season.npz"
    save_scenario(scenario, npz_path)
    reloaded = load_scenario_file(npz_path)
    print(
        f"3. {npz_path.name}: {reloaded.unified.n_union_edges} union edges, "
        f"{reloaded.n_snapshots} snapshots reloaded"
    )

    # 4. evaluate + serve ---------------------------------------------------
    engine = EvolvingGraphEngine(reloaded, get_algorithm("bfs"))
    result = engine.evaluate("boe", validate=True)
    reach_first = int(np.isfinite(result.values(0)).sum())
    reach_last = int(np.isfinite(result.values(5)).sum())
    print(
        f"4. BFS reach from member {reloaded.source}: "
        f"{reach_first} -> {reach_last} members across the season "
        "(validated against from-scratch evaluation)"
    )


if __name__ == "__main__":
    main()
