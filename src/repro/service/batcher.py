"""Admission queue and BOE coalescing rules.

The paper's Batch-Oriented Execution applies one delta batch to every
snapshot that needs it; the serving-layer generalization coalesces every
*query* that can share a plan.  Two queries are compatible when they agree
on everything the multi-query plan fixes — graph, algorithm, snapshot
window, execution mode, and ingest epoch — and differ only in source
vertex (:meth:`repro.service.request.QueryRequest.compat_key`).

The batcher is time-and-size bounded: queries admitted within one
coalescing window (``coalesce_ms``) are grouped, each group is split into
plans of at most ``max_batch`` *distinct* sources, and duplicate sources
within a plan share a single row of the (query, snapshot) value matrix —
the degenerate but common case of many clients asking the same question.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from dataclasses import dataclass, field

from repro.obs.trace import QueryTrace
from repro.service.request import QueryRequest, QueryResponse

__all__ = ["PendingQuery", "AdmissionQueue", "coalesce", "split_expired"]


@dataclass
class PendingQuery:
    """A submitted request awaiting its response."""

    request: QueryRequest
    epoch: int
    submitted_at: float = field(default_factory=time.monotonic)
    #: absolute monotonic deadline (from ``request.deadline_s``), or None
    deadline: float | None = None
    #: set once, read by the submitter after ``done`` fires
    response: QueryResponse | None = None
    done: threading.Event = field(default_factory=threading.Event)
    retried: bool = False
    #: span timeline; marked as the query crosses each pipeline stage
    trace: QueryTrace = field(default_factory=QueryTrace)

    def __post_init__(self) -> None:
        if self.deadline is None and self.request.deadline_s is not None:
            self.deadline = self.submitted_at + self.request.deadline_s
        self.trace.mark("admit", self.submitted_at)

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (now if now is not None else time.monotonic()) >= self.deadline

    def resolve(self, response: QueryResponse) -> None:
        resolved_at = time.monotonic()
        self.trace.mark("resolve", resolved_at)
        response.latency_s = resolved_at - self.submitted_at
        response.stages = self.trace.stage_durations_ms()
        self.response = response
        self.done.set()

    def wait(self, timeout: float | None = None) -> QueryResponse | None:
        self.done.wait(timeout)
        return self.response


def split_expired(
    pending: list[PendingQuery],
) -> tuple[list[PendingQuery], list[PendingQuery]]:
    """Partition a drained batch into (live, deadline-expired) queries.

    Called by the batcher *before* plan construction, so an overloaded
    service sheds stale work instead of executing plans nobody is waiting
    for — the deadline analogue of admission-queue overflow.
    """
    now = time.monotonic()
    live: list[PendingQuery] = []
    expired: list[PendingQuery] = []
    for p in pending:
        (expired if p.expired(now) else live).append(p)
    return live, expired


class AdmissionQueue:
    """Bounded FIFO between submitters and the batcher thread.

    Overflow is *admission control*, not an error path: the service sheds
    load with an immediate ``rejected`` response instead of queueing work
    it cannot finish (the load harness counts these as dropped queries and
    the CLI exits non-zero).
    """

    def __init__(self, max_pending: int = 1024) -> None:
        self.max_pending = int(max_pending)
        self._lock = threading.Lock()
        self._items: list[PendingQuery] = []

    def offer(self, pending: PendingQuery) -> bool:
        with self._lock:
            if len(self._items) >= self.max_pending:
                return False
            self._items.append(pending)
            return True

    def drain(self) -> list[PendingQuery]:
        with self._lock:
            items, self._items = self._items, []
            return items

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


def coalesce(
    pending: list[PendingQuery], max_batch: int
) -> list[list[PendingQuery]]:
    """Group compatible queries, then split into ≤ ``max_batch``-source
    plans (FIFO within a group, so no query starves behind coalescing).

    ``max_batch`` counts *distinct* sources: duplicates ride along free —
    they share one plan row, the query-level analogue of BOE's shared
    batch fetch.
    """
    groups: dict[tuple, list[PendingQuery]] = defaultdict(list)
    for p in pending:
        groups[p.request.compat_key(p.epoch)].append(p)

    plans: list[list[PendingQuery]] = []
    for group in groups.values():
        plan: list[PendingQuery] = []
        sources: set[int] = set()
        for p in group:
            if (
                plan
                and len(sources) >= max_batch
                and p.request.source not in sources
            ):
                plans.append(plan)
                plan, sources = [], set()
            plan.append(p)
            sources.add(p.request.source)
        if plan:
            plans.append(plan)
    return plans
