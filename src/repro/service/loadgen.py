"""Seeded open-loop load harness for the query service.

Open loop means arrivals follow a fixed schedule (Poisson at ``rate_qps``)
regardless of how fast the service responds — the honest way to measure a
server, since a closed loop self-throttles and hides queueing collapse.
Sources are drawn Zipf-like from each graph's high-degree vertices, so the
workload repeats itself the way real query traffic does and the result
cache has something to hit.

Overload realism: queries can carry a deadline (``deadline_s``), and the
client retries shed/rejected queries with capped exponential backoff plus
jitter, honouring the service's ``retry_after`` hint — the cooperative
client the shedding path is designed for.  A query that exhausts its
retries counts as ``gave_up`` and marks the run degraded.

``run_load`` drives a :class:`~repro.service.core.QueryService` in
process, then folds the service's counters and the per-query latencies
into one JSON-able report (``BENCH_service.json``) so successive PRs have
a perf trajectory to beat.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.obs.trace import stage_percentiles
from repro.perf.backend import requested_tier
from repro.service.core import NotPrimaryError, QueryService, ServiceConfig
from repro.service.request import QueryRequest

__all__ = ["LoadSpec", "BenchReport", "run_load"]

#: 8: sliding-window serving — a ``sliding`` block (slide checkpoint
#: count, worker window advances, cache entries re-keyed across slides,
#: stable-vertex reuse rate, and a post-drain ``parity`` verdict holding
#: the slid window bit-identical to a freshly built one per graph and
#: algorithm); a parity failure marks the run degraded;
#: 7: kernel-backend provenance — ``kernel_backend`` (requested tier +
#: the per-worker resolved map from the pool warm-up pings);
#: 6: cluster fields — ``failovers`` (writer re-resolutions of the
#: primary after its target died mid-run, i.e. ingest survived a leader
#: election) next to the schema-4 ``redirects``;
#: 5: sharding fields — ``n_shards``, per-shard ``shards`` stats (role,
#: WAL depth, shm generation), and a ``scatter`` block with global round
#: count, scatter/gather stage latencies, and cross-shard frontier volume;
#: 4: replication fields — ``redirects`` (ingests re-aimed at the primary
#: after a ``not_primary`` refusal), ``role``, ``replication_lag_epochs``;
#: 3: per-stage latency percentiles (``stage_latency_ms``), sampled span
#: timelines (``traces``), optional ``round_profile``.  Every schema-3
#: field is preserved.
BENCH_SCHEMA_VERSION = 8


@dataclass
class LoadSpec:
    """One open-loop workload (CLI flags map 1:1)."""

    duration_s: float = 5.0
    rate_qps: float = 50.0
    seed: int = 0
    graphs: tuple[str, ...] = ("PK",)
    algos: tuple[str, ...] = ("sssp",)
    #: queries draw their source from this many top-degree vertices
    n_sources: int = 16
    #: Zipf exponent for the source draw (higher = more repeats)
    zipf_s: float = 1.3
    #: probability a query asks for a random sub-window
    window_fraction: float = 0.2
    #: ingest a synthesized delta every this many seconds (0 = never)
    ingest_every_s: float = 0.0
    #: edges added *and* deleted per synthesized delta — sizes the
    #: per-epoch apply work every reader of the chain must absorb
    ingest_edges: int = 8
    #: per-query execution deadline in seconds (0 = none)
    deadline_s: float = 0.0
    #: client-side retries of shed/rejected queries (0 = give up at once)
    max_retries: int = 0
    #: base of the exponential backoff between retries
    retry_base_s: float = 0.05
    #: give up on stragglers this long after the last arrival
    drain_timeout_s: float = 60.0
    #: embed this many per-query span timelines in the report (0 = none)
    trace_sample: int = 0
    #: how long a writer keeps re-resolving the primary after its ingest
    #: target dies mid-run (a leader election in progress) before giving
    #: up — the redirect-following client's patience window
    failover_grace_s: float = 30.0


@dataclass
class BenchReport:
    """Everything serve-bench measures, JSON-able."""

    config: dict
    workload: dict
    results: dict

    @property
    def degraded(self) -> bool:
        """Errored queries, queries that exhausted their retries, or an
        injected fault that did not recover, mark the run degraded (CLI
        exits non-zero).  Shed queries that a retry later completed are
        the overload protection *working*, not degradation."""
        r = self.results
        unrecovered = r["faults"]["injected"] > 0 and (
            r["faults"]["recovered"] == 0 and r["retries"] == 0
        )
        parity_failed = not (
            r.get("sliding", {}).get("parity", {}).get("ok", True)
        )
        return bool(
            r["errored"] or r["gave_up"] or unrecovered or parity_failed
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "bench": "service",
                "schema_version": BENCH_SCHEMA_VERSION,
                "config": self.config,
                "workload": self.workload,
                "results": self.results,
            },
            indent=2,
            sort_keys=True,
        )

    def format_table(self) -> str:
        r = self.results
        lat = r["latency_ms"]
        lines = [
            "== serve-bench: concurrent evolving-graph query service ==",
            f"submitted {r['submitted']}  completed {r['completed']}  "
            f"cached {r['cached']}  errored {r['errored']}  "
            f"rejected {r['rejected']}",
            f"shed {r['shed']}  client retries {r['client_retries']}  "
            f"gave up {r['gave_up']}  redirects {r.get('redirects', 0)}  "
            f"failovers {r.get('failovers', 0)}",
            f"throughput {r['throughput_qps']:.1f} q/s  "
            f"(offered {r['offered_qps']:.1f} q/s "
            f"over {r['duration_s']:.1f}s)",
            f"latency ms  p50 {lat['p50']:.1f}  p95 {lat['p95']:.1f}  "
            f"p99 {lat['p99']:.1f}  mean {lat['mean']:.1f}",
            f"plans {r['plans']}  batching factor "
            f"{r['batching_factor']:.2f} queries/plan",
            f"cache hit rate {r['cache_hit_rate']:.1%}  "
            f"ingests {r['ingests']}",
            f"faults injected {r['faults']['injected']}  "
            f"recovered {r['faults']['recovered']}  "
            f"plan retries {r['retries']}",
        ]
        if r["wal"].get("enabled"):
            lines.append(
                f"wal records {r['wal']['records']}  "
                f"lag {r['wal']['lag_records']}  "
                f"compactions {r['wal']['compactions']}"
            )
        sliding = r.get("sliding", {})
        if sliding.get("enabled"):
            parity = sliding.get("parity", {})
            lines.append(
                f"slides {sliding['slides']}  "
                f"worker advances {sliding['slide_advances']}  "
                f"stable vertices {sliding['stable_vertex_rate']:.1%}  "
                f"cache rebased {sliding['cache_rebased']}  "
                f"parity {'ok' if parity.get('ok') else 'FAILED'} "
                f"({parity.get('checked', 0)} checks)"
            )
        if "n_shards" in r:
            sc = r.get("scatter", {})
            triples = sum(sc.get("frontier_triples", {}).values())
            lines.append(
                f"shards {r['n_shards']}  "
                f"scatter rounds {sc.get('global_rounds', 0)}  "
                f"frontier triples {triples}  "
                f"scatter p.mean "
                f"{sc.get('scatter_stage', {}).get('mean_ms', 0.0):.1f}ms  "
                f"gather p.mean "
                f"{sc.get('gather_stage', {}).get('mean_ms', 0.0):.1f}ms"
            )
        if r.get("role", "primary") != "primary":
            lines.append(
                f"role {r['role']}  replication lag "
                f"{r.get('replication_lag_epochs', 0)} epochs"
            )
        stages = r.get("stage_latency_ms", {})
        if stages:
            parts = [
                f"{name} {stages[name]['p95']:.1f}"
                for name in (
                    "admit_to_plan", "plan_to_worker", "worker",
                    "worker_to_resolve",
                )
                if name in stages
            ]
            if parts:
                lines.append("stage p95 ms  " + "  ".join(parts))
        prof = r.get("round_profile")
        if prof and prof.get("sections"):
            parts = [
                f"{name} {sec['mean_us']:.0f}us/round"
                for name, sec in prof["sections"].items()
            ]
            lines.append(
                f"kernel profile (1/{prof['sample_every']} rounds)  "
                + "  ".join(parts)
            )
        return "\n".join(lines)


def _source_pool(graph: str, scale: str, n_snapshots: int, n: int) -> list[int]:
    """Top-degree vertices of the graph's common graph (stable targets)."""
    from repro.experiments.runner import scenario_cache

    scenario = scenario_cache(graph, scale, n_snapshots=n_snapshots)
    degrees = np.diff(scenario.common_graph().indptr)
    ranked = np.argsort(-degrees)
    return [int(v) for v in ranked[: max(1, min(n, len(ranked)))]]


def _zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized Zipf probability vector (hoisted out of the arrival
    loop — it was rebuilt per arrival, dominating schedule planning for
    large source pools)."""
    weights = 1.0 / np.arange(1, n + 1) ** s
    return weights / weights.sum()


def _zipf_index(rng: np.random.Generator, weights: np.ndarray) -> int:
    return int(rng.choice(len(weights), p=weights))


def _plan_arrivals(
    cfg: ServiceConfig,
    spec: LoadSpec,
    rng: np.random.Generator,
    pools: dict[str, list[int]],
) -> list[tuple[float, QueryRequest]]:
    """Pre-plan the Poisson arrival schedule (no RNG in the submit loop).

    Window draws are valid for any snapshot count: with a single
    snapshot the only window is ``(0, 0)`` (``rng.integers(0)`` raises,
    which used to crash ``--snapshots 1`` runs with a window fraction).
    """
    zipf = {g: _zipf_weights(len(pool), spec.zipf_s)
            for g, pool in pools.items()}
    arrivals: list[tuple[float, QueryRequest]] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / spec.rate_qps))
        if t >= spec.duration_s:
            break
        graph = spec.graphs[int(rng.integers(len(spec.graphs)))]
        algo = spec.algos[int(rng.integers(len(spec.algos)))]
        pool = pools[graph]
        source = pool[_zipf_index(rng, zipf[graph])]
        window = None
        if spec.window_fraction > 0 and rng.random() < spec.window_fraction:
            lo = (
                int(rng.integers(cfg.n_snapshots - 1))
                if cfg.n_snapshots > 1 else 0
            )
            hi = int(rng.integers(lo, cfg.n_snapshots))
            window = (lo, hi)
        arrivals.append(
            (t, QueryRequest(graph=graph, algo=algo, source=source,
                             window=window, mode=cfg.mode,
                             deadline_s=spec.deadline_s or None))
        )
    return arrivals


def _retry_query(
    service: QueryService,
    request: QueryRequest,
    response,
    spec: LoadSpec,
    rng: np.random.Generator,
    deadline: float,
) -> tuple[object, int]:
    """Client-side backoff loop for one shed/rejected query.

    Exponential backoff with full jitter, floored at the service's
    ``retry_after`` hint; returns the final response and attempt count.
    """
    attempts = 0
    while (
        response is not None
        and response.retryable
        and attempts < spec.max_retries
        and time.monotonic() < deadline
    ):
        base = spec.retry_base_s * (2 ** attempts)
        if response.retry_after is not None:
            base = max(base, response.retry_after)
        pause = min(base, 2.0) * (0.5 + float(rng.random()))
        time.sleep(min(pause, max(0.0, deadline - time.monotonic())))
        attempts += 1
        retry = QueryRequest(
            graph=request.graph,
            algo=request.algo,
            source=request.source,
            window=request.window,
            mode=request.mode,
            deadline_s=request.deadline_s,
        )
        handle = service.submit(retry)
        response = handle.wait(timeout=max(0.0, deadline - time.monotonic()))
    return response, attempts


def _slide_parity(service, spec: LoadSpec) -> dict:
    """Differential slide check run after the drain, against final state.

    For every (graph, algorithm) the run served: advance a
    :class:`~repro.core.window_server.WindowServer` from the deterministic
    base through the *exact* delta log the service ingested, and compare
    every snapshot's values bit-for-bit against a window freshly built at
    the final epoch.  Any mismatch fails the check (and degrades the
    bench) — the Table 1 algorithms converge to a unique fixpoint, so
    incremental repair and a scratch build must agree exactly.
    """
    from repro.algorithms import get_algorithm
    from repro.core.window_server import WindowServer
    from repro.evolving.snapshots import EvolvingScenario
    from repro.experiments.runner import scenario_cache
    from repro.service.ingest import apply_delta

    graph_deltas = getattr(service, "graph_deltas", None)
    if graph_deltas is None:  # sharded front end: shards own the chains
        return {"checked": 0, "ok": True, "mismatches": []}
    cfg = service.config
    checked = 0
    mismatches: list[dict] = []
    for graph in spec.graphs:
        deltas = graph_deltas(graph)
        base = scenario_cache(graph, cfg.scale, n_snapshots=cfg.n_snapshots)
        fresh = base
        for delta in deltas:
            fresh = apply_delta(fresh, delta)
        source = _source_pool(graph, cfg.scale, cfg.n_snapshots, 1)[0]
        n = base.n_vertices
        for algo_name in spec.algos:
            algorithm = get_algorithm(algo_name)
            slid = WindowServer(
                EvolvingScenario(
                    base.unified, source=source,
                    name=base.name, metadata=dict(base.metadata),
                ),
                algorithm,
            )
            for delta in deltas:
                slid.advance(delta.additions(n), delta.deletions())
            built = WindowServer(
                EvolvingScenario(
                    fresh.unified, source=source,
                    name=fresh.name, metadata=dict(fresh.metadata),
                ),
                algorithm,
            )
            checked += 1
            for k in range(built.n_snapshots):
                if not np.array_equal(
                    slid.values(k), built.values(k), equal_nan=True
                ):
                    mismatches.append(
                        {"graph": graph, "algo": algo_name, "snapshot": k}
                    )
                    break
    return {"checked": checked, "ok": not mismatches,
            "mismatches": mismatches}


def run_load(
    service: QueryService,
    spec: LoadSpec,
    primary: QueryService | None = None,
    resolve_primary=None,
) -> BenchReport:
    """Drive ``service`` with ``spec``; both must already be configured.

    The service must be started; this call blocks for the workload
    duration plus drain time.

    ``primary`` is the redirect target when ``service`` is a follower:
    an ingest refused with ``not_primary`` backs off briefly (the same
    cooperative-client posture as the shed/reject retry loop) and is
    re-sent there, counted under ``redirects`` in the report.  Without a
    target the refusal propagates.

    ``resolve_primary`` generalizes the static target across a leader
    election: a zero-argument callable returning the current ingest
    target (anything with ``.ingest``; ``None`` = no primary known yet).
    When the writer's target dies mid-ingest it keeps re-resolving for
    up to ``spec.failover_grace_s`` — each change of target counts as a
    ``failover`` in the report — and, because the in-flight write may
    have landed on the dead primary's WAL and survived onto its elected
    successor, it consults the new target's ``epoch`` before re-sending:
    an epoch past the writer's last confirmed one means the write made
    it, and re-sending would fork the seeded delta chain.  (That dedup
    assumes this writer is the only ingest client, which is exactly the
    drill/bench harness topology.)
    """
    cfg = service.config
    rng = np.random.default_rng(spec.seed)
    retry_rng = np.random.default_rng(spec.seed + 0x5EED)
    pools = {
        g: _source_pool(g, cfg.scale, cfg.n_snapshots, spec.n_sources)
        for g in spec.graphs
    }

    arrivals = _plan_arrivals(cfg, spec, rng, pools)

    # writes come from their own client thread: the read arrival loop
    # never stalls on an ingest apply, a redirect backoff, or the
    # round-trip to a remote primary — readers and writers are separate
    # clients in any real deployment, and serializing them here would
    # understate read throughput in exactly the follower topology the
    # redirect path exists for
    redirects = 0
    failovers = 0
    write_errors: list[BaseException] = []
    stop_writes = threading.Event()
    writer_rng = np.random.default_rng(spec.seed + 0xD00D)
    #: per-graph epoch of this writer's last confirmed ingest — the dedup
    #: baseline for failover re-sends (single-writer assumption)
    confirmed: dict[str, int] = {}
    #: the writer's current remote target, for failover counting
    target: list = [None]

    def _acquire_target():
        if resolve_primary is not None:
            try:
                return resolve_primary()
            except Exception:  # noqa: BLE001 - no primary known right now
                return None
        return primary

    def _send(graph: str, seed: int) -> bool:
        """One logical ingest: local, else redirect, else follow the
        failover until a new primary answers or the grace runs out."""
        nonlocal redirects, failovers
        try:
            confirmed[graph] = service.ingest(
                graph, seed=seed,
                n_add=spec.ingest_edges, n_del=spec.ingest_edges,
            )
            return True
        except NotPrimaryError:
            if primary is None and resolve_primary is None:
                raise
        base = confirmed.get(graph)
        if base is None:
            # no confirmed write yet: the follower's applied epoch is the
            # best available baseline for survived-write detection
            base = service.epoch(graph)
        maybe_applied = False
        deadline = time.monotonic() + max(spec.failover_grace_s, 0.0)
        while time.monotonic() < deadline:
            nxt = _acquire_target()
            if nxt is None:
                time.sleep(0.02)
                continue
            if target[0] is not None and nxt is not target[0]:
                failovers += 1
            target[0] = nxt
            if maybe_applied:
                # our last attempt died mid-flight; if the (possibly new)
                # primary already carries an epoch past our baseline, the
                # write survived the failover — re-sending would fork the
                # seeded chain
                epoch_of = getattr(nxt, "epoch", None)
                if epoch_of is not None:
                    try:
                        cur = int(epoch_of(graph))
                    except Exception:  # noqa: BLE001 - target flapping
                        time.sleep(0.02)
                        continue
                    if cur > base:
                        confirmed[graph] = cur
                        return True
            # cooperative redirect: brief jittered backoff, then re-aim
            time.sleep(
                min(spec.retry_base_s, 0.05)
                * (0.5 + float(writer_rng.random()))
            )
            try:
                epoch = nxt.ingest(
                    graph, seed=seed,
                    n_add=spec.ingest_edges, n_del=spec.ingest_edges,
                )
            except NotPrimaryError:
                continue  # stale target (demoted since): re-resolve
            except Exception:  # noqa: BLE001 - target died mid-send
                maybe_applied = True
                continue
            redirects += 1
            confirmed[graph] = int(epoch)
            return True
        return False

    def _writer() -> None:
        seed = spec.seed
        writes = 0
        next_due = spec.ingest_every_s
        while not stop_writes.is_set():
            wait = start + next_due - time.monotonic()
            if wait > 0 and stop_writes.wait(wait):
                break
            seed += 1
            graph = spec.graphs[writes % len(spec.graphs)]
            writes += 1
            try:
                if not _send(graph, seed):
                    raise TimeoutError(
                        f"no primary accepted {graph} seed {seed} within "
                        f"the {spec.failover_grace_s:.1f}s failover grace"
                    )
            except BaseException as exc:  # noqa: BLE001 - rethrown below
                write_errors.append(exc)
                return
            next_due += spec.ingest_every_s

    start = time.monotonic()
    writer = None
    if spec.ingest_every_s > 0:
        writer = threading.Thread(
            target=_writer, name="loadgen-writer", daemon=True
        )
        writer.start()
    handles = []
    try:
        for due, request in arrivals:
            now = time.monotonic() - start
            if due > now:
                time.sleep(due - now)
            handles.append(service.submit(request))
    finally:
        stop_writes.set()
        if writer is not None:
            writer.join(timeout=30.0)
    if write_errors:
        raise write_errors[0]
    submitted_window = time.monotonic() - start

    deadline = time.monotonic() + spec.drain_timeout_s
    responses = []
    client_retries = 0
    for h in handles:
        r = h.wait(timeout=max(0.0, deadline - time.monotonic()))
        if r is not None and r.retryable and spec.max_retries > 0:
            r, attempts = _retry_query(
                service, h.request, r, spec, retry_rng, deadline
            )
            client_retries += attempts
        responses.append((h, r))
    end = time.monotonic()

    latencies = [
        r.latency_s * 1e3 for __, r in responses if r is not None and r.ok
    ]
    lost = sum(1 for __, r in responses if r is None)
    gave_up = sum(
        1 for __, r in responses if r is not None and r.retryable
    )
    stats = service.service_stats()
    completed = stats["completed"]
    duration = max(end - start, 1e-9)

    def pct(p: float) -> float:
        return float(np.percentile(latencies, p)) if latencies else 0.0

    # per-stage breakdown over every resolved query's span timeline
    stage_latency = stage_percentiles(
        [h.trace.stage_durations_ms() for h, r in responses if r is not None]
    )
    traces = [
        {
            "id": h.request.id,
            "status": r.status,
            **h.trace.as_dict(),
        }
        for h, r in responses[: max(0, spec.trace_sample)]
        if r is not None
    ]
    round_profile = service.round_profile()

    results = {
        "submitted": stats["submitted"],
        "completed": completed,
        "cached": stats["cached"],
        "errored": stats["errored"] + lost,
        "rejected": stats["rejected"],
        "shed": stats["shed"],
        "client_retries": client_retries,
        "gave_up": gave_up,
        "offered_qps": len(arrivals) / max(spec.duration_s, 1e-9),
        "throughput_qps": completed / duration,
        "duration_s": duration,
        "submit_window_s": submitted_window,
        "latency_ms": {
            "p50": pct(50), "p95": pct(95), "p99": pct(99),
            "mean": float(np.mean(latencies)) if latencies else 0.0,
        },
        "plans": stats["plans"],
        "batching_factor": stats["batching_factor"],
        "cache_hit_rate": stats["cache"]["hit_rate"],
        "retries": stats["retries"],
        "ingests": stats["ingests"],
        "redirects": redirects,
        "failovers": failovers,
        "role": service.role,
        "replication_lag_epochs": (
            service.replica.lag_epochs()
            if service.replica is not None
            else max(service.follower_lags().values(), default=0)
        ),
        "faults": {
            "injected": len(cfg.inject_fault),
            "recovered": stats["faults_recovered"],
        },
        "wal": (
            service.wal.stats() if service.wal is not None
            else {"enabled": False}
        ),
        "shm": (
            service.plane.stats() if service.plane is not None
            else {"enabled": False}
        ),
        "stage_latency_ms": {
            stage: {k: round(v, 3) for k, v in pcts.items()}
            for stage, pcts in stage_latency.items()
        },
        "traces": traces,
    }
    slide_every = int(getattr(cfg, "window_slide_every", 0) or 0)
    if slide_every > 0:
        slide_vertices = stats.get("slide_vertices", 0)
        results["sliding"] = {
            "enabled": True,
            "slide_every": slide_every,
            "slides": stats.get("slides", 0),
            "slide_advances": stats.get("slide_advances", 0),
            "cache_rebased": stats.get("cache_rebased", 0),
            "stable_vertex_rate": (
                stats.get("stable_vertices", 0) / slide_vertices
                if slide_vertices else 0.0
            ),
            "parity": _slide_parity(service, spec),
        }
    else:
        results["sliding"] = {"enabled": False}
    if round_profile.get("sections"):
        results["round_profile"] = round_profile
    # which kernel tier actually served the run (schema 7): requested
    # backend plus the per-worker resolved map, so a mixed pool is
    # visible in the committed bench artifact; sharded front ends report
    # the union of every shard's pool
    pools = []
    pool = getattr(service, "pool", None)
    if pool is not None:
        pools.append(pool)
    else:
        shard_manager = getattr(service, "manager", None)
        if shard_manager is not None:
            pools.extend(
                shard.pool
                for shard in shard_manager.shards
                if getattr(shard, "pool", None) is not None
            )
    if pools:
        results["kernel_backend"] = {
            "requested": requested_tier(pools[0].kernel_backend),
            "workers": {
                str(pid): name
                for p in pools
                for pid, name in sorted(p.worker_backends.items())
            },
        }
    # sharded front ends expose per-shard health and scatter-gather stats;
    # the plain service has neither attribute and the report omits both
    manager = getattr(service, "manager", None)
    if manager is not None:
        results["n_shards"] = manager.n_shards
        results["shards"] = manager.shard_health()
    scatter_stats = getattr(service, "scatter_stats", None)
    if scatter_stats is not None:
        results["scatter"] = scatter_stats()
    workload = asdict(spec)
    workload["graphs"] = list(spec.graphs)
    workload["algos"] = list(spec.algos)
    config = asdict(cfg)
    config["inject_fault"] = list(cfg.inject_fault)
    return BenchReport(config=config, workload=workload, results=results)
