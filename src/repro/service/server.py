"""JSON-lines front end: ``mega-repro serve``.

One request per line on stdin, one JSON response per line on stdout — the
simplest protocol that composes with anything (netcat, a socket wrapper,
a shell pipe, a test harness).  Operations::

    {"op": "query", "graph": "PK", "algo": "sssp", "source": 3,
     "window": [0, 5]}                     -> one blocking query
    {"op": "batch", "queries": [{...}, ...]}  -> submit together, await all
                                                 (exercises coalescing)
    {"op": "ingest", "graph": "PK", "seed": 1, "n_add": 8, "n_del": 8}
    {"op": "ingest", "graph": "PK", "adds": [[u, v, w], ...],
     "dels": [[u, v], ...]}                -> explicit delta batch
    {"op": "stats"}                        -> service counters
    {"op": "health"}                       -> epochs, WAL lag, queue depth,
                                              role + replication lag +
                                              fencing token, degraded state
    {"op": "metrics"}                      -> Prometheus text exposition of
                                              every registered instrument
    {"op": "promote"}                      -> follower only: finish replay,
                                              fence the old primary, start
                                              accepting ingest
    {"op": "clear_caches"}                 -> coordinator + worker caches
    {"op": "shutdown"}                     -> drain and exit

An ``ingest`` sent to a follower (``mega-repro serve --follow <dir>``) is
refused with ``{"ok": false, "error": "not_primary", ...}`` so clients
redirect their writes to the primary; reads are served normally at the
follower's replicated epoch (a prefix of the primary's epoch order).

Queries accept an optional ``"deadline_ms"``: if the service cannot start
executing within it, the query is shed with a ``retry_after_s`` hint
instead of waiting out the overload.

Every response is ``{"ok": true, ...}`` or ``{"ok": false, "error": ...}``;
protocol errors never kill the server.  The session is *degraded* if any
query errored or was shed — ``serve`` exits non-zero then, matching the
CLI convention (docs/RESILIENCE.md).
"""

from __future__ import annotations

import json
import sys
from typing import IO, TYPE_CHECKING

from repro.service.core import NotPrimaryError, QueryService
from repro.service.ingest import DeltaBatch
from repro.service.request import QueryRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.replica import ReplicaServer

__all__ = ["ServiceFrontend", "serve_stdio"]

#: per-query wait inside one stdio exchange; far above any sane plan time
QUERY_TIMEOUT_S = 300.0


class ServiceFrontend:
    """Decode one JSON-lines operation, run it, encode the response."""

    def __init__(
        self,
        service: QueryService,
        replica: "ReplicaServer | None" = None,
    ) -> None:
        self.service = service
        #: set when serving a follower: enables the ``promote`` op
        self.replica = replica
        self.shutdown_requested = False

    def handle_line(self, line: str) -> dict:
        try:
            message = json.loads(line)
        except json.JSONDecodeError as exc:
            return {"ok": False, "error": f"bad JSON: {exc}"}
        if not isinstance(message, dict) or "op" not in message:
            return {"ok": False, "error": 'expected {"op": ...}'}
        op = message["op"]
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            return {"ok": False, "error": f"unknown op {op!r}"}
        try:
            return handler(message)
        except Exception as exc:  # noqa: BLE001 - protocol must not die
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    # -- operations --------------------------------------------------------

    @staticmethod
    def _request_of(message: dict) -> QueryRequest:
        window = message.get("window")
        deadline_ms = message.get("deadline_ms")
        return QueryRequest(
            graph=message.get("graph", "PK"),
            algo=message.get("algo", "sssp"),
            source=int(message.get("source", 0)),
            window=tuple(window) if window is not None else None,
            mode=message.get("mode", "eval"),
            deadline_s=(
                float(deadline_ms) / 1e3 if deadline_ms is not None else None
            ),
        )

    def _op_query(self, message: dict) -> dict:
        pending = self.service.submit(self._request_of(message))
        response = pending.wait(timeout=QUERY_TIMEOUT_S)
        if response is None:
            return {"ok": False, "error": "query timed out"}
        return {"ok": response.ok, **response.as_dict()}

    def _op_batch(self, message: dict) -> dict:
        queries = message.get("queries", [])
        handles = [
            self.service.submit(self._request_of(q)) for q in queries
        ]
        out = []
        for h in handles:
            response = h.wait(timeout=QUERY_TIMEOUT_S)
            out.append(
                {"ok": False, "error": "query timed out"}
                if response is None
                else {"ok": response.ok, **response.as_dict()}
            )
        return {"ok": all(r["ok"] for r in out), "responses": out}

    def _op_ingest(self, message: dict) -> dict:
        graph = message.get("graph", "PK")
        try:
            if "adds" in message or "dels" in message:
                delta = DeltaBatch.from_lists(
                    message.get("adds", []), message.get("dels", [])
                )
                epoch, ack = self.service.ingest_with_ack(
                    graph, delta=delta
                )
            else:
                epoch, ack = self.service.ingest_with_ack(
                    graph,
                    seed=int(message.get("seed", 0)),
                    n_add=int(message.get("n_add", 8)),
                    n_del=int(message.get("n_del", 8)),
                )
        except NotPrimaryError as exc:
            # a structured redirect, not a generic error: the client
            # re-aims the write at the primary and retries
            return {
                "ok": False,
                "error": "not_primary",
                "role": exc.role,
                "primary_wal_dir": exc.primary_wal_dir,
                "detail": str(exc),
            }
        # the ack block tells the client what the ack *means* (quorum
        # proven, or degraded to local durability after the timeout)
        return {"ok": True, "graph": graph, "epoch": epoch, "ack": ack}

    def _op_stats(self, message: dict) -> dict:
        return {"ok": True, "stats": self.service.service_stats()}

    def _op_health(self, message: dict) -> dict:
        return {"ok": True, **self.service.health()}

    def _op_metrics(self, message: dict) -> dict:
        return {"ok": True, "metrics": self.service.metrics_text()}

    def _op_promote(self, message: dict) -> dict:
        if self.replica is None:
            return {
                "ok": False,
                "error": f"promote: this node is a {self.service.role}, "
                         f"not a follower",
            }
        token = self.replica.promote()
        return {
            "ok": True,
            "role": self.service.role,
            "fencing_token": token,
        }

    def _op_clear_caches(self, message: dict) -> dict:
        self.service.clear_caches()
        return {"ok": True}

    def _op_shutdown(self, message: dict) -> dict:
        self.shutdown_requested = True
        return {"ok": True, "shutting_down": True}


def serve_stdio(
    service: QueryService,
    stdin: IO[str] | None = None,
    stdout: IO[str] | None = None,
    replica: "ReplicaServer | None" = None,
) -> int:
    """Serve JSON lines until EOF or a shutdown op; returns an exit code
    (0 clean, 1 degraded — errored or shed queries during the session).

    With ``replica`` set the session is a follower: the replica's
    lifecycle (initial sync + tailer thread) brackets the loop and the
    ``promote`` op is live.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    frontend = ServiceFrontend(service, replica=replica)
    with (replica if replica is not None else service):
        for line in stdin:
            if not line.strip():
                continue
            response = frontend.handle_line(line)
            print(json.dumps(response), file=stdout, flush=True)
            if frontend.shutdown_requested:
                break
        stats = service.service_stats()
    return 1 if (stats["errored"] or stats["rejected"]) else 0
