"""Self-healing replication cluster supervision (PR 8).

PR 6 shipped the primary/follower pair but left promotion to an external
driver.  This package closes the loop so an N-node group survives a
primary loss on its own:

* :mod:`repro.service.cluster.heartbeat` — liveness beacons over small
  files in the WAL root (the same transport as follower cursors) and a
  :class:`HeartbeatMonitor` with phi-accrual-style suspicion, jittered
  thresholds, and hysteresis;
* :mod:`repro.service.cluster.supervisor` — the per-node
  :class:`ClusterNode` brain: beat, observe, demote a fenced-out zombie
  primary, and elect the most-caught-up live follower through the
  ``fence.json`` compare-and-swap
  (:func:`repro.service.wal.try_claim_fence`).

Quorum acknowledgement of ingest (``ServiceConfig.ack_mode``) lives in
:mod:`repro.service.core`; this package provides the failure detection
and the leader hand-off around it.
"""

from repro.service.cluster.heartbeat import (
    Beacon,
    HeartbeatMonitor,
    ManualClock,
    read_beacons,
    write_beacon,
)
from repro.service.cluster.supervisor import (
    CLUSTER_FAULT_POINTS,
    ClusterNode,
)

__all__ = [
    "Beacon",
    "CLUSTER_FAULT_POINTS",
    "ClusterNode",
    "HeartbeatMonitor",
    "ManualClock",
    "read_beacons",
    "write_beacon",
]
