"""The per-node cluster brain: beat, observe, demote, elect.

One :class:`ClusterNode` wraps either a primary :class:`QueryService`
(it has a live WAL writer) or a follower :class:`ReplicaServer`, and
runs a small deterministic ``tick()`` — a daemon thread calls it on a
jittered cadence, but tests and the fault campaign drive it manually
with an injected clock.

Per tick:

1. **beat** — publish this node's beacon (role, fence token, position,
   applied epochs) unless the ``cluster.heartbeat-drop`` fault eats it;
2. **observe** — sample every peer's beacon through the
   :class:`~repro.service.cluster.heartbeat.HeartbeatMonitor`;
3. **primary**: check the on-disk fence.  A token newer than our own
   means we were superseded while alive (a zombie) — stop ingesting and
   demote to follower.  The WAL fencing path already quarantines any
   append we raced in, so demotion is cleanup, not correctness;
4. **follower**: if the detector *confirms* the primary suspect, run the
   election protocol — catch up to the durable WAL tip (the shared
   directory still holds everything the dead primary fsynced), defer to
   any more-caught-up live follower, then attempt the fence CAS
   (:func:`repro.service.wal.try_claim_fence`).  Exactly one claimant
   wins and promotes; losers back off for an election grace and
   re-evaluate — if the winner's primary beacon appears they follow it,
   if not (the winner died mid-promotion, or ``cluster.split-fence``
   burned the token) the next CAS round recovers.

Election safety does not depend on the ranking heuristics: the CAS is
the single arbiter, and a candidate always catches up to the fsynced
tip *before* claiming, so every quorum-acked epoch (indeed every
fsynced epoch) survives onto the new primary.
"""

from __future__ import annotations

import hashlib
import logging
import threading
import time

from repro.resilience.faults import Fire, maybe_fire, register_fault_point
from repro.service.cluster.heartbeat import (
    Beacon,
    HeartbeatMonitor,
    write_beacon,
)
from repro.service.wal import (
    WalPosition,
    current_fence_token,
    safe_follower_id,
    try_claim_fence,
)

__all__ = ["CLUSTER_FAULT_POINTS", "ClusterNode"]

log = logging.getLogger(__name__)

register_fault_point(
    "cluster.heartbeat-drop",
    "service/cluster/supervisor.py",
    "a node's heartbeat beacon is dropped before publication (the peer "
    "looks late; suspicion must rise, hysteresis must absorb it)",
)
register_fault_point(
    "cluster.split-fence",
    "service/cluster/supervisor.py",
    "a rival fence claim lands just before an elector's CAS (the elector "
    "must lose cleanly and re-elect on the next token)",
)

CLUSTER_FAULT_POINTS = ("cluster.heartbeat-drop", "cluster.split-fence")


class ClusterNode:
    """Supervises one service process as a member of an N-node group.

    Exactly one of ``service`` (primary mode) / ``replica`` (follower
    mode) is given at construction; the node flips between the two roles
    as elections and demotions happen.  Context-manager use starts the
    underlying service/replica and the tick thread together (the shape
    ``serve_stdio`` expects from its ``replica`` argument).
    """

    def __init__(
        self,
        wal_dir,
        node_id: str,
        *,
        service=None,
        replica=None,
        cluster_size: int = 3,
        heartbeat_interval_s: float = 0.1,
        phi_threshold: float = 6.0,
        confirm_ticks: int = 2,
        jitter_frac: float = 0.2,
        election_grace_s: float | None = None,
        fault_hook=None,
        clock=time.monotonic,
    ):
        if (service is None) == (replica is None):
            raise ValueError(
                "ClusterNode needs exactly one of service= (primary) "
                "or replica= (follower)"
            )
        self.wal_dir = wal_dir
        self.node_id = safe_follower_id(node_id)
        self.cluster_size = int(cluster_size)
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.replica = replica
        self.service = service if service is not None else replica.service
        self._fault_hook = fault_hook
        self._clock = clock
        # losers and deferrers wait this long before re-contending, long
        # enough for a fresh winner's primary beacon to show up
        self.election_grace_s = (
            float(election_grace_s)
            if election_grace_s is not None
            else heartbeat_interval_s * phi_threshold
        )
        self.monitor = HeartbeatMonitor(
            wal_dir,
            self.node_id,
            interval_s=heartbeat_interval_s,
            phi_threshold=phi_threshold,
            confirm_ticks=confirm_ticks,
            jitter_frac=jitter_frac,
            clock=clock,
            registry=self.service.metrics,
        )
        self.seq = 0
        self.elections = 0
        self.claims_lost = 0
        self.deferrals = 0
        self.demotions = 0
        self.heartbeats_dropped = 0
        self.primary_node_id: str | None = (
            self.node_id if service is not None else None
        )
        self._defer_until = 0.0
        self._zombie_wal = None
        self._running = False
        self._thread: threading.Thread | None = None
        # jitter the tick cadence per node so N nodes spread their I/O
        digest = hashlib.sha256(self.node_id.encode()).digest()
        self._tick_jitter = 1.0 + 0.25 * (digest[0] / 255.0)
        self.service.cluster_node = self

    # -- role / fault plumbing ------------------------------------------

    @property
    def role(self) -> str:
        return self.service.role

    def _maybe_fire(self, point: str) -> Fire | None:
        fire = maybe_fire(point)
        if fire is not None:
            return fire
        if self._fault_hook is not None:
            return self._fault_hook(point)
        return None

    # -- the deterministic tick -----------------------------------------

    def tick(self) -> str:
        """One supervision round; returns the action taken (for tests)."""
        self._beat()
        beacons = self.monitor.observe()
        if self.service.role == "primary":
            return self._primary_tick()
        return self._follower_tick(beacons)

    def _beat(self) -> None:
        self.seq += 1
        fire = self._maybe_fire("cluster.heartbeat-drop")
        if fire is not None:
            self.heartbeats_dropped += 1
            fire.note(node_id=self.node_id, seq=self.seq)
            return
        write_beacon(self.wal_dir, Beacon(
            node_id=self.node_id,
            role=self.service.role,
            fence_token=self._own_token(),
            position=self._own_position(),
            epochs=self._own_epochs(),
            seq=self.seq,
            sent_unix=time.time(),
        ))

    def _own_token(self) -> int:
        if self.service.role == "primary" and self.service.wal is not None:
            return int(self.service.wal.fence_token or 0)
        return int(current_fence_token(self.wal_dir))

    def _own_position(self) -> WalPosition:
        if self.service.role == "primary" and self.service.wal is not None:
            try:
                return self.service.wal.position()
            except (OSError, ValueError):
                return WalPosition()
        if self.replica is not None:
            return self.replica.position()
        return WalPosition()

    def _own_epochs(self) -> dict[str, int]:
        with self.service._graphs_lock:
            return {
                name: live.epoch
                for name, live in self.service._graphs.items()
            }

    # -- primary side: zombie self-demotion -----------------------------

    def _primary_tick(self) -> str:
        disk = current_fence_token(self.wal_dir)
        own = self._own_token()
        if own and disk > own:
            self._demote(disk)
            return "demoted"
        return "primary"

    def _demote(self, disk_token: int) -> None:
        """We were fenced out while alive: stop writing, become a
        follower of whoever owns the newer token.

        Ordering matters: flip the role first (new ingests refuse with a
        redirect), then drop the WAL handle.  Any append that raced the
        flip carries our stale token and is quarantined by every reader
        — the fencing contract, not this method, is the safety boundary.
        """
        from repro.service.replica import ReplicaServer

        log.warning(
            "cluster: %s demoting — on-disk fence token %d supersedes "
            "ours (%d)", self.node_id, disk_token, self._own_token(),
        )
        self.service.role = "follower"
        self.service.primary_wal_dir = str(self.wal_dir)
        self._zombie_wal = self.service.wal
        self.service.wal = None
        self.replica = ReplicaServer(
            self.wal_dir,
            follower_id=self.node_id,
            service=self.service,
        )
        self.replica.start(tail_thread=True)
        self.primary_node_id = None
        self.demotions += 1

    # -- follower side: detection + election ----------------------------

    def _follower_tick(self, beacons: dict[str, Beacon]) -> str:
        primary = self._primary_of(beacons)
        if primary is not None:
            self.primary_node_id = primary.node_id
        target = self.primary_node_id
        if target is None or target == self.node_id:
            # never seen a primary: fall back to suspecting the void —
            # the monitor's never-seen ramp keeps a fresh cluster from
            # electing before a slow primary finishes starting
            target = None
        suspect = (
            self.monitor.confirmed_suspect(target)
            if target is not None
            else False
        )
        if not suspect:
            return "follower"
        if float(self._clock()) < self._defer_until:
            return "deferred"
        return self._attempt_election(beacons)

    def _primary_of(self, beacons: dict[str, Beacon]) -> Beacon | None:
        primaries = [
            b for node_id, b in beacons.items()
            if b.role == "primary" and node_id != self.node_id
        ]
        if not primaries:
            return None
        return max(primaries, key=lambda b: (b.fence_token, b.sent_unix))

    def _attempt_election(self, beacons: dict[str, Beacon]) -> str:
        if self.replica is None:
            return "follower"
        # 1. catch up to the durable tip: everything the dead primary
        #    fsynced is still in the shared directory, so the winner by
        #    construction carries every quorum-acked epoch
        for _ in range(256):
            if self.replica.poll_once() == 0:
                break
        position = self.replica.position()
        mine = (self._progress_key(), self.node_id)
        for node_id, beacon in beacons.items():
            if node_id == self.node_id or beacon.role != "follower":
                continue
            if self.monitor.confirmed_suspect(node_id):
                continue  # a dead peer must not veto the election
            theirs = (beacon.progress_key(), node_id)
            if theirs > mine:
                # a more-caught-up live follower should win; give it an
                # election grace before we contend anyway (it may be
                # dead without being confirmed yet)
                self.deferrals += 1
                self._defer_until = (
                    float(self._clock()) + self.election_grace_s
                )
                return "deferred"
        expected = current_fence_token(self.wal_dir)
        fire = self._maybe_fire("cluster.split-fence")
        if fire is not None:
            rival = try_claim_fence(self.wal_dir, position, expected)
            fire.note(
                node_id=self.node_id,
                rival_token=int(rival or 0),
            )
        token = try_claim_fence(self.wal_dir, position, expected)
        if token is None:
            self.claims_lost += 1
            self._defer_until = float(self._clock()) + self.election_grace_s
            log.info(
                "cluster: %s lost the fence CAS at token %d; backing off",
                self.node_id, expected + 1,
            )
            return "claim-lost"
        self.replica.promote(claimed_token=token)
        self.elections += 1
        self.primary_node_id = self.node_id
        log.warning(
            "cluster: %s won election with fence token %d at %s",
            self.node_id, token, position,
        )
        return "promoted"

    def _progress_key(self) -> tuple[int, int, int]:
        position = self.replica.position()
        return (
            sum(self._own_epochs().values()),
            position.segment,
            position.offset,
        )

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ClusterNode":
        if self._running:
            return self
        self._running = True
        self._thread = threading.Thread(
            target=self._tick_loop,
            name=f"cluster-{self.node_id}",
            daemon=True,
        )
        self._thread.start()
        return self

    def _tick_loop(self) -> None:
        while self._running:
            try:
                self.tick()
            except Exception:
                log.exception(
                    "cluster: %s tick failed; retrying", self.node_id
                )
            time.sleep(self.heartbeat_interval_s * self._tick_jitter)

    def stop(self) -> None:
        self._running = False
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
        if self._zombie_wal is not None:
            try:
                self._zombie_wal.close()
            except (OSError, ValueError):
                pass
            self._zombie_wal = None

    def promote(self) -> int:
        """Manual promotion override (the ``promote`` front-end op)."""
        if self.replica is None:
            return self._own_token()
        token = self.replica.promote()
        self.primary_node_id = self.node_id
        return token

    def __enter__(self) -> "ClusterNode":
        if self.replica is not None:
            self.replica.start()
        else:
            self.service.start(wal_dir=self.wal_dir)
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
        if self.replica is not None:
            self.replica.stop()
        else:
            self.service.stop()

    # -- observability ---------------------------------------------------

    def health(self) -> dict:
        beacons = read_beacons_safe(self.wal_dir)
        peers = {}
        for node_id, beacon in beacons.items():
            if node_id == self.node_id:
                continue
            peers[node_id] = {
                "role": beacon.role,
                "fence_token": beacon.fence_token,
                "suspicion": round(self.monitor.suspicion(node_id), 3),
                "suspect": self.monitor.confirmed_suspect(node_id),
            }
        return {
            "node_id": self.node_id,
            "cluster_size": self.cluster_size,
            "role": self.service.role,
            "primary_node_id": self.primary_node_id,
            "heartbeat_interval_s": self.heartbeat_interval_s,
            "elections": self.elections,
            "claims_lost": self.claims_lost,
            "deferrals": self.deferrals,
            "demotions": self.demotions,
            "heartbeats_dropped": self.heartbeats_dropped,
            "suspects": self.monitor.suspects(),
            "peers": peers,
        }


def read_beacons_safe(wal_dir) -> dict[str, Beacon]:
    from repro.service.cluster.heartbeat import read_beacons

    try:
        return read_beacons(wal_dir)
    except OSError:
        return {}
