"""Heartbeat beacons and the phi-accrual-style failure detector.

Every cluster node publishes a small **beacon** file under
``<wal>/heartbeats/`` — the same shared-directory transport the follower
cursors already use, so no new channel is introduced.  A beacon carries
liveness (a monotonically increasing ``seq``), the node's role, the
fencing token it believes in, and its replication position/epochs (so
electors can rank candidates without extra round trips).

Detection is deliberately *not* a fixed timeout.  A slow fsync or a GC
pause must not trigger a spurious failover, so the
:class:`HeartbeatMonitor`:

* learns each peer's arrival cadence with an EWMA of inter-beacon
  intervals (the phi-accrual idea: suspicion is elapsed time *normalised
  by the learned cadence*, not by a wall-clock constant);
* jitters each observer's trigger threshold deterministically per
  (observer, peer) pair, so N observers do not all declare death — and
  start an election stampede — in the same tick;
* applies hysteresis: suspicion must stay above the trigger threshold
  for ``confirm_ticks`` consecutive observations to *confirm*, and only
  drops back below ``clear_factor *`` threshold (or a fresh beacon)
  clears it.  Between the two thresholds the previous verdict holds.

The monitor takes an injectable ``clock`` so tests (and the fault
campaign) can replay flapping scenarios deterministically —
:class:`ManualClock` is the standard test double.
"""

from __future__ import annotations

import hashlib
import json
import logging
import pathlib
import time
from dataclasses import dataclass, field

from repro.resilience.checkpoint import atomic_write
from repro.service.wal import WalPosition, safe_follower_id

__all__ = [
    "Beacon",
    "HEARTBEATS_DIR",
    "HeartbeatMonitor",
    "ManualClock",
    "read_beacons",
    "write_beacon",
]

log = logging.getLogger(__name__)

HEARTBEATS_DIR = "heartbeats"


class ManualClock:
    """A hand-cranked monotonic clock for deterministic detector tests."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        self._now += float(dt)
        return self._now


@dataclass(frozen=True)
class Beacon:
    """One node's liveness + progress announcement."""

    node_id: str
    role: str
    fence_token: int
    position: WalPosition
    epochs: dict[str, int]
    seq: int
    sent_unix: float

    def progress_key(self) -> tuple[int, int, int]:
        """Total order on replication progress, for candidate ranking."""
        return (
            sum(int(e) for e in self.epochs.values()),
            self.position.segment,
            self.position.offset,
        )

    def as_dict(self) -> dict:
        return {
            "node_id": self.node_id,
            "role": self.role,
            "fence_token": int(self.fence_token),
            "position": self.position.as_dict(),
            "epochs": {g: int(e) for g, e in sorted(self.epochs.items())},
            "seq": int(self.seq),
            "sent_unix": float(self.sent_unix),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Beacon":
        return cls(
            node_id=str(doc.get("node_id", "")),
            role=str(doc.get("role", "")),
            fence_token=int(doc.get("fence_token", 0)),
            position=WalPosition.from_dict(doc.get("position", {})),
            epochs={
                str(g): int(e)
                for g, e in (doc.get("epochs") or {}).items()
            },
            seq=int(doc.get("seq", 0)),
            sent_unix=float(doc.get("sent_unix", 0.0)),
        )


def write_beacon(wal_dir: str | pathlib.Path, beacon: Beacon) -> None:
    """Publish a node's beacon (atomic rename; liveness needs no fsync —
    a lost beacon is indistinguishable from a late one and the detector
    already tolerates both)."""
    safe_follower_id(beacon.node_id)
    beat_dir = pathlib.Path(wal_dir) / HEARTBEATS_DIR
    beat_dir.mkdir(parents=True, exist_ok=True)
    atomic_write(
        beat_dir / f"{beacon.node_id}.json",
        json.dumps(beacon.as_dict(), sort_keys=True),
    )


def read_beacons(wal_dir: str | pathlib.Path) -> dict[str, Beacon]:
    """Every readable beacon in the WAL root (node id -> beacon)."""
    beat_dir = pathlib.Path(wal_dir) / HEARTBEATS_DIR
    if not beat_dir.is_dir():
        return {}
    out: dict[str, Beacon] = {}
    for path in sorted(beat_dir.glob("*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            log.warning("heartbeat beacon %s unreadable; skipped", path)
            continue
        beacon = Beacon.from_dict(doc)
        if beacon.node_id:
            out[beacon.node_id] = beacon
    return out


@dataclass
class _Arrival:
    """What one observer has learned about one peer's beacon cadence."""

    seq: int = -1
    changed_at: float = 0.0
    ewma_s: float = 0.0
    samples: int = 0


class HeartbeatMonitor:
    """Per-node failure detector over the beacon files.

    ``observe()`` is the only sampling entry point: it reads the beacon
    directory, updates cadence estimates and suspicion state, refreshes
    the labeled suspicion gauges, and returns the beacons it saw.
    """

    def __init__(
        self,
        wal_dir: str | pathlib.Path,
        node_id: str,
        *,
        interval_s: float = 0.1,
        phi_threshold: float = 6.0,
        confirm_ticks: int = 2,
        clear_factor: float = 0.5,
        jitter_frac: float = 0.2,
        clock=time.monotonic,
        registry=None,
    ):
        self.wal_dir = pathlib.Path(wal_dir)
        self.node_id = safe_follower_id(node_id)
        self.interval_s = float(interval_s)
        self.phi_threshold = float(phi_threshold)
        self.confirm_ticks = max(1, int(confirm_ticks))
        self.clear_factor = float(clear_factor)
        self.jitter_frac = float(jitter_frac)
        self._clock = clock
        self._started = float(clock())
        self._arrivals: dict[str, _Arrival] = {}
        self._streaks: dict[str, int] = {}
        self._confirmed: set[str] = set()
        self._gauge = None
        if registry is not None:
            self._gauge = registry.labeled_gauge(
                "mega_cluster_suspicion",
                "failure-detector suspicion per peer "
                "(elapsed / learned beacon cadence; phi-accrual style)",
                label="node",
            )

    # -- cadence / suspicion --------------------------------------------

    def threshold_for(self, node_id: str) -> float:
        """The trigger threshold this observer applies to ``node_id``.

        Deterministically jittered per (observer, peer) so concurrent
        observers confirm a death at slightly different times instead of
        stampeding the fence CAS together.
        """
        digest = hashlib.sha256(
            f"{self.node_id}\x00{node_id}".encode()
        ).digest()
        frac = digest[0] / 255.0
        return self.phi_threshold * (1.0 + self.jitter_frac * frac)

    def suspicion(self, node_id: str) -> float:
        """Elapsed time since the peer's last *new* beacon, normalised by
        its learned cadence (intervals-overdue; 0 while it keeps up)."""
        arr = self._arrivals.get(node_id)
        now = float(self._clock())
        if arr is None:
            # never seen: grow suspicion from monitor start, against the
            # nominal cadence, so a peer that never comes up still trips
            elapsed = now - self._started
            return elapsed / max(self.interval_s, 1e-9)
        mean = max(arr.ewma_s, 0.25 * self.interval_s)
        return max(0.0, now - arr.changed_at) / mean

    def confirmed_suspect(self, node_id: str) -> bool:
        return node_id in self._confirmed

    def suspects(self) -> list[str]:
        return sorted(self._confirmed)

    def observe(self) -> dict[str, Beacon]:
        """Sample the beacon directory once and update detector state."""
        beacons = read_beacons(self.wal_dir)
        now = float(self._clock())
        for node_id, beacon in beacons.items():
            if node_id == self.node_id:
                continue
            arr = self._arrivals.get(node_id)
            if arr is None:
                self._arrivals[node_id] = _Arrival(
                    seq=beacon.seq, changed_at=now,
                    ewma_s=self.interval_s, samples=1,
                )
                continue
            if beacon.seq != arr.seq:
                gap = max(1e-9, now - arr.changed_at)
                # one EWMA per peer: alpha 0.2 keeps ~the last dozen
                # arrivals relevant without chasing a single hiccup
                arr.ewma_s = (
                    gap if arr.samples == 0
                    else 0.8 * arr.ewma_s + 0.2 * gap
                )
                arr.seq = beacon.seq
                arr.changed_at = now
                arr.samples += 1
                self._streaks[node_id] = 0
                self._confirmed.discard(node_id)
        for node_id in set(self._arrivals) | set(beacons):
            if node_id == self.node_id:
                continue
            phi = self.suspicion(node_id)
            threshold = self.threshold_for(node_id)
            if phi >= threshold:
                streak = self._streaks.get(node_id, 0) + 1
                self._streaks[node_id] = streak
                if streak >= self.confirm_ticks:
                    if node_id not in self._confirmed:
                        log.warning(
                            "heartbeat: %s confirms %s suspect "
                            "(phi %.1f >= %.1f for %d ticks)",
                            self.node_id, node_id, phi, threshold, streak,
                        )
                    self._confirmed.add(node_id)
            elif phi < threshold * self.clear_factor:
                # hysteresis: only a clearly-live peer resets; suspicion
                # hovering between the two thresholds keeps its verdict
                self._streaks[node_id] = 0
                self._confirmed.discard(node_id)
            if self._gauge is not None:
                self._gauge.labels(node_id).set(round(phi, 3))
        return beacons
