"""LRU result cache with ingest-driven invalidation.

Keys include the graph's *epoch* (how many delta batches have been
ingested), so a result computed before an ingest can never satisfy a query
admitted after it.  :meth:`ResultCache.invalidate_graph` additionally drops
the now-stale entries eagerly so the LRU capacity is not wasted carrying
results no future query can hit.
"""

from __future__ import annotations

import threading

from repro.experiments.runner import LRUCache
from repro.service.request import QueryRequest, SnapshotSummary

__all__ = ["ResultCache"]


class ResultCache:
    """Thread-safe LRU of per-query snapshot summaries."""

    def __init__(self, maxsize: int = 512) -> None:
        self._lru = LRUCache(maxsize)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(request: QueryRequest, epoch: int) -> tuple:
        return request.compat_key(epoch) + (int(request.source),)

    def get(
        self, request: QueryRequest, epoch: int
    ) -> list[SnapshotSummary] | None:
        with self._lock:
            k = self.key(request, epoch)
            if k in self._lru:
                self.hits += 1
                return self._lru[k]
            self.misses += 1
            return None

    def put(
        self,
        request: QueryRequest,
        epoch: int,
        summaries: list[SnapshotSummary],
    ) -> None:
        with self._lock:
            self._lru[self.key(request, epoch)] = summaries

    def invalidate_graph(self, graph: str) -> int:
        """Eagerly drop every entry for ``graph`` (any epoch).

        Epoch-keyed entries could only go stale-but-resident; dropping
        them keeps the LRU full of hittable results.  Returns the number
        of entries removed.
        """
        with self._lock:
            stale = [k for k in self._lru.keys() if k[0] == graph]
            for k in stale:
                self._lru.pop(k)
            return len(stale)

    def rebase_graph(self, graph: str, new_epoch: int) -> tuple[int, int]:
        """Re-key entries across a window slide instead of dropping them.

        Under sliding-window serving every ingest advances the window by
        one snapshot, so the scenario at the previous epoch restricted to
        window ``(lo, hi)`` is bit-identical to window ``(lo-1, hi-1)``
        at ``new_epoch`` (summaries store window-relative snapshot
        indices, which do not move).  Entries from the previous epoch
        whose shifted window still exists (``lo >= 1``) are re-keyed;
        everything else for ``graph`` — full-window results, windows
        pinned at snapshot 0, older epochs — is dropped.  Returns
        ``(rebased, dropped)``.
        """
        with self._lock:
            rebased = dropped = 0
            for k in [k for k in self._lru.keys() if k[0] == graph]:
                # key layout: compat_key(epoch) + (source,) — see key()
                g, algo, window, mode, epoch, source = k
                movable = (
                    epoch == new_epoch - 1
                    and window is not None
                    and window[0] >= 1
                )
                summaries = self._lru.pop(k)
                if movable:
                    shifted = (window[0] - 1, window[1] - 1)
                    new_key = (g, algo, shifted, mode, new_epoch, source)
                    self._lru[new_key] = summaries
                    rebased += 1
                else:
                    dropped += 1
            return rebased, dropped

    def clear(self) -> None:
        with self._lock:
            self._lru.clear()

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._lru),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
            }
