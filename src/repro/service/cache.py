"""LRU result cache with ingest-driven invalidation.

Keys include the graph's *epoch* (how many delta batches have been
ingested), so a result computed before an ingest can never satisfy a query
admitted after it.  :meth:`ResultCache.invalidate_graph` additionally drops
the now-stale entries eagerly so the LRU capacity is not wasted carrying
results no future query can hit.
"""

from __future__ import annotations

import threading

from repro.experiments.runner import LRUCache
from repro.service.request import QueryRequest, SnapshotSummary

__all__ = ["ResultCache"]


class ResultCache:
    """Thread-safe LRU of per-query snapshot summaries."""

    def __init__(self, maxsize: int = 512) -> None:
        self._lru = LRUCache(maxsize)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(request: QueryRequest, epoch: int) -> tuple:
        return request.compat_key(epoch) + (int(request.source),)

    def get(
        self, request: QueryRequest, epoch: int
    ) -> list[SnapshotSummary] | None:
        with self._lock:
            k = self.key(request, epoch)
            if k in self._lru:
                self.hits += 1
                return self._lru[k]
            self.misses += 1
            return None

    def put(
        self,
        request: QueryRequest,
        epoch: int,
        summaries: list[SnapshotSummary],
    ) -> None:
        with self._lock:
            self._lru[self.key(request, epoch)] = summaries

    def invalidate_graph(self, graph: str) -> int:
        """Eagerly drop every entry for ``graph`` (any epoch).

        Epoch-keyed entries could only go stale-but-resident; dropping
        them keeps the LRU full of hittable results.  Returns the number
        of entries removed.
        """
        with self._lock:
            stale = [k for k in self._lru.keys() if k[0] == graph]
            for k in stale:
                self._lru.pop(k)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._lru.clear()

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._lru),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
            }
