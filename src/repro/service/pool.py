"""Process-pool execution of coalesced BOE plans.

One :class:`PlanPayload` is everything a worker needs to reproduce the
computation in its own address space: the deterministic base-scenario
coordinates (graph, scale, snapshots), the ingest log prefix defining the
epoch, the algorithm, the coalesced source list, and the window.  Workers
keep a process-local cache of live scenarios and advance them
incrementally as epochs move, so steady-state serving pays only for the
plan itself.

Resilience wiring (PR 1):

* every plan runs under a :class:`~repro.resilience.Budget` — a diverging
  or hung computation breaches loudly instead of stalling the worker;
* transient failures retry *inside* the worker via
  :func:`~repro.resilience.retry_with_backoff`; deterministic ones
  propagate so the coordinator can degrade (split the plan and retry the
  queries individually);
* two registered fault points make the whole path provable from the load
  harness: ``service.worker-fault`` (transient — the worker itself
  recovers) and ``service.plan-poison`` (fatal — the coordinator must
  degrade around it).

Per-worker memory stays bounded: the live-scenario cache is a small LRU,
and the shared :func:`repro.experiments.runner.scenario_cache` /
``clear_caches`` machinery is process-local (each worker owns its copy;
see that module for fork/spawn semantics).  :meth:`WorkerPool.clear_caches`
broadcasts a best-effort clear; :meth:`WorkerPool.restart` is the
guaranteed reclaim (fresh processes start empty).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import numpy as np

from repro.obs.profile import profiled
from repro.perf.backend import resolve_backend
from repro.resilience import (
    Budget,
    BudgetExceeded,
    FatalError,
    FaultPlan,
    TransientError,
    inject,
    register_fault_point,
    retry_with_backoff,
)
from repro.service.ingest import DeltaBatch, apply_delta
from repro.service.request import SnapshotSummary
from repro.service.shm import ScenarioManifest, attach_scenario

__all__ = ["PlanPayload", "PlanResult", "WorkerPool"]

register_fault_point(
    "service.worker-fault",
    "service/pool.py",
    "a worker's plan execution fails transiently (in-worker retry recovers)",
)
register_fault_point(
    "service.plan-poison",
    "service/pool.py",
    "a coalesced plan fails deterministically (coordinator must split it)",
)

#: plans whose budgets are not set explicitly get this wall-clock ceiling
DEFAULT_BUDGET_S = 60.0


@dataclass
class PlanPayload:
    """One coalesced multi-query BOE plan, ready to ship to a worker."""

    plan_id: int
    graph: str
    scale: str
    n_snapshots: int
    algo: str
    sources: tuple[int, ...]
    window: tuple[int, int] | None = None
    mode: str = "eval"
    epoch: int = 0
    deltas: tuple[DeltaBatch, ...] = ()
    budget_s: float = DEFAULT_BUDGET_S
    max_rounds: int = 200_000
    #: armed fault points for this plan (resilience drills / load harness)
    fault_points: tuple[str, ...] = ()
    fault_seed: int = 0
    kind: str = "plan"  # "plan" | "ping" | "clear"
    #: requested kernel backend (ServiceConfig.kernel_backend); ""
    #: defers to the worker's MEGA_KERNEL_BACKEND / auto resolution.
    #: Carried on every payload (not just the warm-up ping) so workers
    #: forked by a mid-serve pool restart still resolve the same tier
    kernel_backend: str = ""
    #: shared-memory scenario manifest (zero-copy attach); None = replay
    shm: ScenarioManifest | None = None
    #: delta-chain owner (the service's id): two services hosting the
    #: same (graph, scale, n_snapshots) in one process — e.g. a primary
    #: and a read replica — have divergent ingest histories, so their
    #: live-scenario caches must never be shared
    chain: int = 0
    #: sample engine round timings every N rounds while executing this
    #: plan (0 = profiling off; see repro.obs.profile)
    profile_every: int = 0
    #: scatter sub-plan fields (kind == "scatter"): the shard's owned
    #: vertex range — ``vertex_hi > 0`` also row-restricts the replay
    #: path so the worker materializes only owned out-edges — plus the
    #: global state count, the incoming frontier in the ``DeltaBatch``
    #: wire format (add_src=vertex, add_dst=state, add_wt=value), and
    #: the front end's known value block for the owned columns
    vertex_lo: int = 0
    vertex_hi: int = 0
    n_states: int = 0
    frontier: DeltaBatch | None = None
    state_block: np.ndarray | None = None
    #: sliding-window serving (ServiceConfig.window_slide_every > 0):
    #: full-window eval plans are answered from a per-worker
    #: WindowServer advanced incrementally across epochs — stable
    #: vertices are reused, only the new latest snapshot is repaired
    slide_serving: bool = False


@dataclass
class PlanResult:
    """What a worker hands back: per-source digests plus provenance."""

    plan_id: int
    epoch: int
    #: source vertex -> per-snapshot summaries
    summaries: dict[int, list[SnapshotSummary]] = field(default_factory=dict)
    worker_pid: int = 0
    #: kernel tier the worker actually resolved (numba/cext/numpy);
    #: surfaces in health and the mega_kernel_backend metric so a
    #: mixed-pool misconfiguration is visible instead of silent
    kernel_backend: str = ""
    elapsed_s: float = 0.0
    attempts: int = 1
    recovered_faults: tuple[str, ...] = ()
    #: accelerator update-phase cycles when mode == "simulate"
    update_cycles: int | None = None
    #: CLOCK_MONOTONIC stamps taken inside the worker (system-wide on
    #: Linux, so directly comparable with coordinator marks); 0.0 for
    #: control ops and results from pre-observability workers
    worker_start_mono: float = 0.0
    worker_end_mono: float = 0.0
    #: RoundProfiler.snapshot() when the payload requested profiling
    round_profile: dict | None = None
    #: scatter sub-plan outputs, in the same DeltaBatch wire format as
    #: ``PlanPayload.frontier``: owned cells that improved, and boundary
    #: candidates for vertices other shards own
    updates: DeltaBatch | None = None
    boundary: DeltaBatch | None = None
    local_rounds: int = 0
    relaxed_edges: int = 0
    #: sliding-window serving provenance: incremental window advances
    #: this plan performed, and their stable-vertex accounting (the
    #: coordinator folds these into the service counters)
    slide_advances: int = 0
    stable_vertices: int = 0
    slide_vertices: int = 0


# ---------------------------------------------------------------------------
# worker side (runs in the pool processes)
# ---------------------------------------------------------------------------

#: (graph, scale, n_snapshots) -> (epoch, scenario); process-local
_LIVE: dict = {}
_LIVE_LIMIT = 8

#: segment name -> (SharedMemory, scenario); process-local zero-copy
#: attaches to the coordinator's scenario plane
_ATTACHED: dict = {}
_ATTACHED_LIMIT = 4

#: (graph, scale, n_snapshots, chain, algo, source) -> (epoch,
#: WindowServer); process-local sliding-window serving state.  Servers
#: are built ONLY from the replay path's owned arrays — never from a
#: shm attach, whose mapping an _ATTACHED eviction (or a segment
#: retirement) closes while the server still holds views into it.
_WINDOWS: dict = {}
_WINDOWS_LIMIT = 32


def _detach_all() -> None:
    """Close every shared-memory attach held by this process."""
    while _ATTACHED:
        __, (shm, __) = _ATTACHED.popitem()
        try:
            shm.close()
        except OSError:  # pragma: no cover - buffer already torn down
            pass


def _attached_scenario(manifest):
    """The scenario published under ``manifest``, attached zero-copy.

    Attaches are cached per segment (a bounded LRU — eviction closes the
    mapping).  Returns ``None`` when the segment cannot be attached
    (unlinked by a coordinator restart, swept as an orphan, ...): the
    caller falls back to the replay path, which is always correct.
    """
    cached = _ATTACHED.get(manifest.segment)
    if cached is not None:
        return cached[1]
    try:
        shm, scenario = attach_scenario(manifest)
    except (FileNotFoundError, OSError, ValueError):
        return None
    if len(_ATTACHED) >= _ATTACHED_LIMIT:
        old_shm, __ = _ATTACHED.pop(next(iter(_ATTACHED)))
        try:
            old_shm.close()
        except OSError:  # pragma: no cover - buffer already torn down
            pass
    _ATTACHED[manifest.segment] = (shm, scenario)
    return scenario


def _live_scenario(payload: PlanPayload):
    """The scenario at ``payload.epoch``, advanced incrementally."""
    from repro.experiments.runner import scenario_cache

    key = (payload.graph, payload.scale, payload.n_snapshots, payload.chain)
    cached = _LIVE.get(key)
    if cached is not None and cached[0] == payload.epoch:
        return cached[1]
    if cached is not None and cached[0] < payload.epoch:
        epoch, scenario = cached
        for delta in payload.deltas[epoch: payload.epoch]:
            scenario = apply_delta(scenario, delta)
    else:
        # fresh worker, or a payload admitted before the cache advanced:
        # replay the ingest log from the deterministic base.  A shard's
        # payload restricts the base to its owned rows first — its deltas
        # are the per-shard sub-chain (sources all owned), so restriction
        # commutes with the replay and the cache holds the small slice.
        scenario = scenario_cache(
            payload.graph, payload.scale, n_snapshots=payload.n_snapshots
        )
        if payload.vertex_hi > 0:
            from repro.service.sharding.partial import restrict_rows

            scenario = restrict_rows(
                scenario, payload.vertex_lo, payload.vertex_hi
            )
        for delta in payload.deltas[: payload.epoch]:
            scenario = apply_delta(scenario, delta)
    if len(_LIVE) >= _LIVE_LIMIT and key not in _LIVE:
        _LIVE.pop(next(iter(_LIVE)))
    _LIVE[key] = (payload.epoch, scenario)
    return scenario


def _decode_triples(batch: DeltaBatch | None):
    """``(vertex, state, value)`` arrays from the DeltaBatch wire form."""
    if batch is None:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=np.float64)
    return batch.add_src, batch.add_dst, batch.add_wt


def _encode_triples(vertices, states, values, **meta) -> DeltaBatch:
    """Pack ``(vertex, state, value)`` triples into a DeltaBatch.

    Reusing the ingest wire format for the frontier exchange keeps the
    scatter path on the same pickle-cheap plain-array envelope the WAL
    and replication shipping already use (``add_src``=vertex,
    ``add_dst``=state, ``add_wt``=value; deletions unused).
    """
    empty = np.empty(0, dtype=np.int64)
    return DeltaBatch(
        add_src=vertices, add_dst=states, add_wt=values,
        del_src=empty, del_dst=empty, meta=dict(meta),
    )


def _summarize(algorithm, values: np.ndarray, snapshot: int) -> SnapshotSummary:
    finite = np.isfinite(values)
    return SnapshotSummary(
        snapshot=snapshot,
        reached=int(algorithm.reached(values).sum()),
        checksum=float(values[finite].sum()),
    )


def _worker_clear() -> None:
    """Drop every process-local cache (bounded-memory escape hatch).

    Includes closing shared-memory attaches: a ``clear`` sentinel must
    release the worker's mapping so a retired segment's memory can
    actually be reclaimed by the kernel.
    """
    from repro.experiments.runner import clear_caches

    _LIVE.clear()
    _WINDOWS.clear()
    _detach_all()
    clear_caches()


def _window_server(payload: PlanPayload, algorithm, source: int):
    """The cached WindowServer for this plan key and source, advanced to
    ``payload.epoch``; returns ``(server, advances, stable, total)``.

    A cache hit behind the plan's epoch replays only the missing deltas
    through :meth:`WindowServer.advance` — surviving snapshots and
    stable vertices are reused, only each new latest snapshot is
    repaired.  A miss (or a straggler plan older than the cached epoch,
    which must not regress the cache) builds a fresh server from the
    replay scenario's owned arrays.
    """
    from repro.core.window_server import WindowServer
    from repro.evolving.snapshots import EvolvingScenario

    key = (
        payload.graph, payload.scale, payload.n_snapshots, payload.chain,
        payload.algo, int(source),
    )
    cached = _WINDOWS.get(key)
    if cached is not None and cached[0] == payload.epoch:
        return cached[1], 0, 0, 0
    if cached is not None and cached[0] < payload.epoch:
        epoch, server = cached
        n = server.scenario.n_vertices
        advances = stable = total = 0
        for delta in payload.deltas[epoch: payload.epoch]:
            server.advance(delta.additions(n), delta.deletions())
            advances += 1
            if server.last_stable is not None:
                stable += int(server.last_stable.sum())
            total += n
        _WINDOWS[key] = (payload.epoch, server)
        return server, advances, stable, total
    base = _live_scenario(payload)
    scenario = EvolvingScenario(
        base.unified,
        source=int(source),
        name=base.name,
        metadata=dict(base.metadata),
    )
    server = WindowServer(scenario, algorithm)
    if cached is None:
        if len(_WINDOWS) >= _WINDOWS_LIMIT:
            _WINDOWS.pop(next(iter(_WINDOWS)))
        _WINDOWS[key] = (payload.epoch, server)
    return server, 0, 0, 0


def _execute_sliding(payload: PlanPayload) -> PlanResult:
    """Answer a full-window eval plan from per-source WindowServers.

    Values are bit-identical to the scratch path (every Table 1
    algorithm converges to the unique min-over-paths fixpoint, so the
    incremental repair and a fresh build agree exactly — the parity
    tests and ``serve-bench --slide-every`` hold this bitwise), but
    post-slide plans touch only the unstable vertex set instead of
    recomputing the window.
    """
    from repro.algorithms import get_algorithm

    algorithm = get_algorithm(payload.algo)
    summaries = {}
    advances = stable = total = 0
    for source in payload.sources:
        server, a, s, t = _window_server(payload, algorithm, int(source))
        advances += a
        stable += s
        total += t
        summaries[int(source)] = [
            _summarize(algorithm, server.values(k), k)
            for k in range(server.n_snapshots)
        ]
    return PlanResult(
        plan_id=payload.plan_id,
        epoch=payload.epoch,
        summaries=summaries,
        worker_pid=os.getpid(),
        slide_advances=advances,
        stable_vertices=stable,
        slide_vertices=total,
    )


def _execute(payload: PlanPayload) -> PlanResult:
    from repro.algorithms import get_algorithm
    from repro.core.multi_query import evaluate_multi_query, simulate_multi_query
    from repro.evolving.window import window_scenario
    from repro.resilience.faults import maybe_fire

    fire = maybe_fire("service.worker-fault")
    if fire is not None:
        fire.note(plan=payload.plan_id, pid=os.getpid())
        raise TransientError(
            f"injected transient worker fault (plan {payload.plan_id})"
        )
    fire = maybe_fire("service.plan-poison")
    if fire is not None:
        fire.note(plan=payload.plan_id, pid=os.getpid())
        raise FatalError(f"injected poisoned plan (plan {payload.plan_id})")

    if (
        payload.kind == "plan"
        and payload.slide_serving
        and payload.mode == "eval"
        and payload.window is None
        and payload.vertex_hi == 0
    ):
        return _execute_sliding(payload)

    scenario = None
    if payload.shm is not None and payload.shm.epoch == payload.epoch:
        scenario = _attached_scenario(payload.shm)
    if scenario is None:
        scenario = _live_scenario(payload)
    if payload.window is not None:
        scenario = window_scenario(scenario, *payload.window)
    algorithm = get_algorithm(payload.algo)
    if payload.kind == "scatter":
        from repro.service.sharding.partial import scatter_relax

        sv, ss, sval = _decode_triples(payload.frontier)
        out = scatter_relax(
            scenario, algorithm,
            payload.vertex_lo, payload.vertex_hi, payload.n_states,
            sv, ss, sval,
            max_rounds=payload.max_rounds,
            state_block=payload.state_block,
        )
        return PlanResult(
            plan_id=payload.plan_id,
            epoch=payload.epoch,
            worker_pid=os.getpid(),
            updates=_encode_triples(
                out.upd_vertices, out.upd_states, out.upd_values
            ),
            boundary=_encode_triples(
                out.bnd_vertices, out.bnd_states, out.bnd_values
            ),
            local_rounds=out.rounds,
            relaxed_edges=out.relaxed_edges,
        )
    budget = Budget(
        max_rounds=payload.max_rounds, wall_clock_s=payload.budget_s
    )
    sources = list(payload.sources)
    update_cycles = None
    if payload.mode == "simulate":
        report, mq = simulate_multi_query(
            scenario, algorithm, sources, budget=budget
        )
        update_cycles = int(report.update_cycles)
    else:
        mq = evaluate_multi_query(scenario, algorithm, sources, budget=budget)
    summaries = {
        source: [
            _summarize(algorithm, mq.values(q, k), k)
            for k in range(scenario.n_snapshots)
        ]
        for q, source in enumerate(sources)
    }
    return PlanResult(
        plan_id=payload.plan_id,
        epoch=payload.epoch,
        summaries=summaries,
        worker_pid=os.getpid(),
        update_cycles=update_cycles,
    )


def _worker_run(payload: PlanPayload) -> PlanResult:
    """Pool entry point: control ops, fault arming, in-worker retry."""
    # resolve the kernel tier first so a misconfiguration (e.g. compiled
    # requested but unavailable in this interpreter) fails the warm-up
    # ping loudly instead of surfacing mid-plan
    backend = resolve_backend(payload.kernel_backend or None)
    if payload.kind == "ping":
        time.sleep(0.02)  # hold the worker so warm-up reaches every process
        return PlanResult(plan_id=payload.plan_id, epoch=payload.epoch,
                          worker_pid=os.getpid(),
                          kernel_backend=backend.name)
    if payload.kind == "clear":
        _worker_clear()
        return PlanResult(plan_id=payload.plan_id, epoch=payload.epoch,
                          worker_pid=os.getpid(),
                          kernel_backend=backend.name)

    t0 = time.monotonic()
    attempts = {"n": 0}

    def attempt() -> PlanResult:
        attempts["n"] += 1
        return _execute(payload)

    def run() -> PlanResult:
        try:
            return retry_with_backoff(attempt, retries=1, base_delay=0.01)
        except BudgetExceeded as exc:
            # re-raise in a kwarg-free shape that survives pickling back
            # to the coordinator (and is correctly non-retryable there)
            raise FatalError(
                f"plan {payload.plan_id} budget exceeded: {exc}"
            ) from None

    def run_profiled() -> PlanResult:
        if payload.profile_every > 0:
            with profiled(payload.profile_every) as prof:
                res = run()
            res.round_profile = prof.snapshot()
            return res
        return run()

    if payload.fault_points:
        plan = FaultPlan(list(payload.fault_points), seed=payload.fault_seed)
        with inject(plan):
            result = run_profiled()
        result.recovered_faults = tuple(r.point for r in plan.fired)
    else:
        result = run_profiled()
    result.attempts = attempts["n"]
    result.kernel_backend = backend.name
    result.worker_start_mono = t0
    result.worker_end_mono = time.monotonic()
    result.elapsed_s = result.worker_end_mono - t0
    return result


# ---------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------


class WorkerPool:
    """A restartable ``ProcessPoolExecutor`` with warm, cache-aware workers.

    Submissions go through :func:`~repro.resilience.retry_with_backoff`
    with a pool restart between attempts, so a broken pool (a worker died
    hard enough to poison the executor) costs the in-flight plans at most
    one resubmission instead of wedging the service.
    """

    def __init__(
        self, workers: int = 2, warm: bool = True, kernel_backend: str = ""
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = int(workers)
        #: requested kernel tier, carried on every payload ("" = worker
        #: env / auto)
        self.kernel_backend = kernel_backend
        self._lock = threading.Lock()
        self._executor = self._new_executor()
        self.restarts = 0
        #: pids observed during the last warm-up (feeds the health op)
        self.worker_pids: set[int] = set()
        #: pid -> resolved kernel tier from the last warm-up; health and
        #: the mega_kernel_backend gauge read this to expose mixed pools
        self.worker_backends: dict[int, str] = {}
        if warm:
            self.warm_up()

    def _new_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers)

    def warm_up(self) -> None:
        """Spawn every worker now (before coordinator threads exist) so no
        fork happens later mid-serve."""
        pings = [
            self._executor.submit(
                _worker_run,
                PlanPayload(-1, "", "", 0, "", (), kind="ping",
                            kernel_backend=self.kernel_backend),
            )
            for __ in range(self.workers)
        ]
        results = [p.result(timeout=60) for p in pings]
        self.worker_pids = {r.worker_pid for r in results}
        self.worker_backends = {
            r.worker_pid: r.kernel_backend for r in results
        }

    def submit(self, payload: PlanPayload) -> Future:
        def do_submit() -> Future:
            with self._lock:
                return self._executor.submit(_worker_run, payload)

        def submit_or_restart() -> Future:
            try:
                return do_submit()
            except (BrokenProcessPool, RuntimeError) as exc:
                self._restart_locked()
                raise TransientError(f"worker pool broken: {exc}") from exc

        return retry_with_backoff(submit_or_restart, retries=2, base_delay=0.05)

    def _restart_locked(self) -> None:
        with self._lock:
            old = self._executor
            self._executor = self._new_executor()
            self.restarts += 1
            self.worker_pids = set()  # repopulated by the next warm_up
        old.shutdown(wait=False, cancel_futures=True)

    def restart(self) -> None:
        """Replace every worker process (guaranteed cache reclaim)."""
        self._restart_locked()
        self.warm_up()

    def clear_caches(self) -> None:
        """Best-effort broadcast of ``clear`` to the workers.

        One control op per worker; an op lands on whichever worker is
        free, so a busy pool may clear some workers twice and others not
        at all — :meth:`restart` is the guaranteed path.
        """
        ops = [
            self.submit(PlanPayload(-2, "", "", 0, "", (), kind="clear"))
            for __ in range(self.workers)
        ]
        for op in ops:
            op.result(timeout=60)

    def shutdown(self) -> None:
        with self._lock:
            self._executor.shutdown(wait=True, cancel_futures=True)
