"""Kill-and-recover drill: SIGKILL the service mid-stream, replay the WAL.

The durability contract is only worth having if it survives the real
failure mode, so the drill runs the service as a *separate process*
(`mega-repro serve` on pipes), ingests seeded deltas until a chosen
epoch is acknowledged, and SIGKILLs it — no atexit handlers, no flush,
exactly what a crashed coordinator looks like.  It then restarts the
service on the same ``--wal-dir`` and asserts:

* **zero acknowledged-delta loss** — the recovered epoch equals the last
  epoch the dead process acknowledged;
* **result parity** — for every registry algorithm, query digests from
  the recovered service equal an uninterrupted in-process replay of the
  same seeded ingest chain (seeded synthesis is deterministic given the
  epoch state, so the reference is exact);
* **zero orphaned shared-memory segments** — the killed coordinator
  cannot unlink its scenario-plane segments, so the restarted service
  must sweep them (and clean up its own on shutdown): after the drill,
  ``/dev/shm`` holds no ``megashm-*`` segment owned by a dead process.

``mega-repro serve-bench --crash-at-epoch N`` runs this and exits
non-zero on any loss or mismatch; CI smokes it at tiny scale.

**Failover drill** (``serve-bench --failover-at-epoch N``,
:func:`run_failover_drill`): the same SIGKILL, but with a live read
replica tailing the primary's WAL.  Instead of restarting the victim,
the drill *promotes* the follower — replay to the WAL tip, write a new
fencing token, accept ingest — then simulates the nastiest race: the
dead primary's ghost appending one more record with its stale token.
Asserted: zero acknowledged-epoch loss across the failover, parity on
every registry algorithm against an uninterrupted replay (including
epochs ingested *after* promotion), the zombie append detected and
quarantined (never applied), and zero orphaned shm segments.

**Chaos kill drill** (``serve-bench --chaos-kill N``,
:func:`run_chaos_kill_drill`): the fully unattended version of the
failover drill.  An N-node replication cluster — the primary as a
``serve --cluster N`` subprocess, the followers as in-process
:class:`~repro.service.cluster.ClusterNode` supervisors — takes
quorum-acked ingest from a redirect-following load generator, and the
primary is SIGKILLed mid-stream with **no promotion driver anywhere**:
the followers' heartbeat detectors must confirm the death, the
most-caught-up follower must win the fence CAS and promote itself, the
load writer must re-resolve onto the elected primary, and the surviving
follower must re-target it.  Asserted: zero quorum-acked epoch loss
across the election, post-election ingest progress, survivor
convergence, and parity on every registry algorithm against an
uninterrupted replay of the full seeded chain.

Subprocess plumbing: the child's stdout goes to a temp *file*, not a
pipe — a pipe that fills while the parent is blocked elsewhere deadlocks
teardown — and every response read polls that file under an explicit
timeout, so a wedged child fails the drill instead of hanging it.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field

from repro.algorithms import ALGORITHMS, get_algorithm
from repro.service.shm import list_orphan_segments

__all__ = [
    "ChaosReport",
    "CrashDrillError",
    "DrillReport",
    "FailoverReport",
    "ShardKillReport",
    "run_chaos_kill_drill",
    "run_crash_drill",
    "run_failover_drill",
    "run_shard_kill_drill",
]

#: per-exchange ceiling; far above any tiny/small-scale op
OP_TIMEOUT_S = 180.0


class CrashDrillError(RuntimeError):
    """The drill could not run (dead subprocess, protocol breakdown)."""


@dataclass
class DrillReport:
    """Outcome of one kill-and-recover drill."""

    graph: str
    crash_at_epoch: int
    acked_epoch: int
    recovered_epoch: int
    #: algorithm name -> digests matched the uninterrupted run
    parity: dict[str, bool] = field(default_factory=dict)
    wal_recovery: dict = field(default_factory=dict)
    #: shm segments the SIGKILL stranded (informational; the restart sweeps)
    orphans_after_crash: int = 0
    #: shm segments still orphaned when the drill finished (must be empty)
    orphan_segments: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def lost_deltas(self) -> int:
        return max(0, self.acked_epoch - self.recovered_epoch)

    @property
    def ok(self) -> bool:
        return (
            self.recovered_epoch == self.acked_epoch
            and bool(self.parity)
            and all(self.parity.values())
            and not self.orphan_segments
        )

    def format_table(self) -> str:
        lines = [
            f"== crash drill: SIGKILL {self.graph} at epoch "
            f"{self.crash_at_epoch}, recover from WAL ==",
            f"acknowledged epoch {self.acked_epoch}  "
            f"recovered epoch {self.recovered_epoch}  "
            f"lost acknowledged deltas {self.lost_deltas}",
        ]
        for algo, match in sorted(self.parity.items()):
            lines.append(
                f"  parity {algo:<8} "
                f"{'ok' if match else 'MISMATCH'}"
            )
        if self.wal_recovery:
            lines.append(f"wal recovery: {self.wal_recovery}")
        lines.append(
            f"shm segments: {self.orphans_after_crash} stranded by the "
            f"kill, {len(self.orphan_segments)} orphaned at drill end"
        )
        if self.orphan_segments:
            lines.append(f"  ORPHANS: {', '.join(self.orphan_segments)}")
        lines.append(
            f"verdict: {'PASS' if self.ok else 'FAIL'} "
            f"({self.elapsed_s:.1f}s)"
        )
        return "\n".join(lines)


class _ServeProcess:
    """One `mega-repro serve` child: JSON lines in on a pipe, out to a file.

    Responses stream to a temp file instead of a pipe: a pipe whose
    buffer fills while the parent is busy (or after the child dies with
    output pending) wedges ``wait()``/``readline()`` forever, which used
    to hang drill teardown.  A file never back-pressures the child, and
    the reader polls it under an explicit deadline.
    """

    def __init__(self, cli_args: list[str]) -> None:
        fd, self._out_path = tempfile.mkstemp(
            prefix="mega-drill-", suffix=".jsonl"
        )
        self._writer = os.fdopen(fd, "w")
        self._reader = open(self._out_path, "r")
        # the chaos drill's load writer and its supervisor share one
        # child: requests must not interleave on the stdin pipe
        self._lock = threading.Lock()
        # own session/process group: a SIGKILL drill must take down the
        # child's forked pool workers too, not orphan them onto init
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", *cli_args],
            stdin=subprocess.PIPE,
            stdout=self._writer,
            stderr=subprocess.DEVNULL,
            text=True,
            start_new_session=True,
        )

    def _read_line(self, timeout: float = OP_TIMEOUT_S) -> str:
        """Next complete response line, polling the output file."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                mark = self._reader.tell()
                line = self._reader.readline()
            except ValueError:
                # a concurrent sigkill() closed our file mid-read
                raise CrashDrillError("serve process killed mid-read")
            if line.endswith("\n"):
                return line
            # partial line (child mid-write) or nothing yet: rewind
            self._reader.seek(mark)
            if self.proc.poll() is not None:
                return ""  # dead and drained
            if time.monotonic() >= deadline:
                raise CrashDrillError(
                    f"no response from serve process within {timeout:.0f}s"
                )
            time.sleep(0.01)

    def request(self, op: dict, timeout: float = OP_TIMEOUT_S) -> dict:
        with self._lock:
            if self.proc.poll() is not None:
                raise CrashDrillError(
                    f"serve process exited early (rc={self.proc.returncode})"
                )
            try:
                self.proc.stdin.write(json.dumps(op) + "\n")
                self.proc.stdin.flush()
            except (OSError, ValueError):
                raise CrashDrillError("serve process pipe closed")
            line = self._read_line(timeout)
            if not line:
                raise CrashDrillError(
                    "serve process closed stdout mid-session "
                    f"(rc={self.proc.poll()})"
                )
            return json.loads(line)

    def _close_files(self) -> None:
        for fh in (self._writer, self._reader):
            try:
                fh.close()
            except OSError:  # pragma: no cover - already closed
                pass
        try:
            os.unlink(self._out_path)
        except FileNotFoundError:  # pragma: no cover - raced cleanup
            pass

    def _killpg(self) -> None:
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except ProcessLookupError:  # pragma: no cover - group already gone
            pass

    def sigkill(self) -> None:
        self._killpg()
        self.proc.wait(timeout=30)
        try:
            self.proc.stdin.close()
        except OSError:  # pragma: no cover - pipe already broken
            pass
        self._close_files()

    def shutdown(self) -> None:
        try:
            self.request({"op": "shutdown"})
        finally:
            try:
                self.proc.stdin.close()
            except OSError:
                pass
            try:
                self.proc.wait(timeout=OP_TIMEOUT_S)
            except subprocess.TimeoutExpired:
                # a wedged child must fail loudly, not hang the drill
                self._killpg()
                self.proc.wait(timeout=30)
            self._close_files()


def _reference_summaries(
    graph: str, scale: str, n_snapshots: int, epochs: int,
    algos: list[str], source: int,
) -> dict[str, list[dict]]:
    """Uninterrupted replay: the digests a crash-free run would serve."""
    from repro.core.multi_query import evaluate_multi_query
    from repro.experiments.runner import scenario_cache
    from repro.service.ingest import apply_delta, synthesize_delta
    from repro.service.pool import _summarize

    scenario = scenario_cache(graph, scale, n_snapshots=n_snapshots)
    for k in range(1, epochs + 1):
        scenario = apply_delta(
            scenario, synthesize_delta(scenario, seed=k)
        )
    out: dict[str, list[dict]] = {}
    for algo_name in algos:
        algorithm = get_algorithm(algo_name)
        mq = evaluate_multi_query(scenario, algorithm, [source])
        out[algo_name] = [
            _summarize(algorithm, mq.values(0, k), k).as_dict()
            for k in range(scenario.n_snapshots)
        ]
    return out


def _digests_match(got: list[dict], want: list[dict]) -> bool:
    if len(got) != len(want):
        return False
    for g, w in zip(got, want):
        if g["snapshot"] != w["snapshot"] or g["reached"] != w["reached"]:
            return False
        if abs(g["checksum"] - w["checksum"]) > 1e-6 * max(
            1.0, abs(w["checksum"])
        ):
            return False
    return True


def run_crash_drill(
    wal_dir: str,
    crash_at_epoch: int = 2,
    graph: str = "PK",
    scale: str = "tiny",
    n_snapshots: int = 4,
    workers: int = 1,
    algos: list[str] | None = None,
    source: int = 1,
) -> DrillReport:
    """SIGKILL a serving process after ``crash_at_epoch`` acknowledged
    ingests, restart it on the same WAL, and check loss + parity."""
    if crash_at_epoch < 1:
        raise ValueError("--crash-at-epoch must be >= 1")
    algos = algos if algos else sorted(a.lower() for a in ALGORITHMS)
    t0 = time.monotonic()
    cli_args = [
        "--scale", scale,
        "--snapshots", str(n_snapshots),
        "--workers", str(workers),
        "--graphs", graph,
        "--wal-dir", wal_dir,
    ]

    victim = _ServeProcess(cli_args)
    acked = 0
    try:
        # serve a real query first so the kill lands on a warmed service
        # (worker caches populated, plan path exercised), not a blank one
        victim.request(
            {"op": "query", "graph": graph, "algo": algos[0],
             "source": source}
        )
        for k in range(1, crash_at_epoch + 1):
            resp = victim.request({"op": "ingest", "graph": graph, "seed": k})
            if not resp.get("ok"):
                raise CrashDrillError(f"ingest {k} refused: {resp}")
            acked = int(resp["epoch"])
    finally:
        # SIGKILL immediately after the last ack: anything acknowledged
        # must survive, and nothing unacknowledged is in flight
        victim.sigkill()
    orphans_after_crash = len(list_orphan_segments())

    survivor = _ServeProcess(cli_args)
    try:
        health = survivor.request({"op": "health"})
        if not health.get("ok"):
            raise CrashDrillError(f"health op failed: {health}")
        recovered = int(health.get("epochs", {}).get(graph, 0))
        reference = _reference_summaries(
            graph, scale, n_snapshots, recovered, algos, source
        )
        parity: dict[str, bool] = {}
        for algo_name in algos:
            resp = survivor.request(
                {"op": "query", "graph": graph, "algo": algo_name,
                 "source": source}
            )
            parity[algo_name] = bool(
                resp.get("ok")
                and int(resp.get("epoch", -1)) == recovered
                and _digests_match(
                    resp.get("snapshots", []), reference[algo_name]
                )
            )
        wal_recovery = health.get("wal", {}).get("recovery", {})
    finally:
        survivor.shutdown()

    return DrillReport(
        graph=graph,
        crash_at_epoch=crash_at_epoch,
        acked_epoch=acked,
        recovered_epoch=recovered,
        parity=parity,
        wal_recovery=wal_recovery,
        orphans_after_crash=orphans_after_crash,
        orphan_segments=list_orphan_segments(),
        elapsed_s=time.monotonic() - t0,
    )


# ---------------------------------------------------------------------------
# failover drill: kill the primary, promote the follower
# ---------------------------------------------------------------------------


@dataclass
class FailoverReport:
    """Outcome of one kill-the-primary / promote-the-follower drill."""

    graph: str
    failover_at_epoch: int
    #: last epoch the primary acknowledged before the SIGKILL
    acked_epoch: int
    #: follower's epoch the moment it was promoted (must equal acked)
    promoted_epoch: int
    #: epochs ingested on the new primary after promotion
    post_promote_ingests: int
    #: epoch served at drill end (acked + post_promote_ingests)
    final_epoch: int
    old_fence_token: int = 0
    new_fence_token: int = 0
    #: the simulated zombie append was skipped by the tailing read AND
    #: quarantined by the next full recovery — never applied
    zombie_fenced: bool = False
    #: epoch after the zombie append (must still be final_epoch)
    epoch_after_zombie: int = 0
    #: algorithm name -> digests matched an uninterrupted replay
    parity: dict[str, bool] = field(default_factory=dict)
    replication: dict = field(default_factory=dict)
    orphans_after_kill: int = 0
    orphan_segments: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def lost_deltas(self) -> int:
        return max(0, self.acked_epoch - self.promoted_epoch)

    @property
    def ok(self) -> bool:
        return (
            self.promoted_epoch == self.acked_epoch
            and self.final_epoch
            == self.acked_epoch + self.post_promote_ingests
            and self.epoch_after_zombie == self.final_epoch
            and self.zombie_fenced
            and self.new_fence_token > self.old_fence_token
            and bool(self.parity)
            and all(self.parity.values())
            and not self.orphan_segments
        )

    def to_json(self) -> str:
        from repro.service.loadgen import BENCH_SCHEMA_VERSION

        return json.dumps(
            {
                "bench": "service",
                "schema_version": BENCH_SCHEMA_VERSION,
                "drill": "failover",
                "graph": self.graph,
                "failover_at_epoch": self.failover_at_epoch,
                "results": {
                    "ok": self.ok,
                    "acked_epoch": self.acked_epoch,
                    "promoted_epoch": self.promoted_epoch,
                    "lost_deltas": self.lost_deltas,
                    "post_promote_ingests": self.post_promote_ingests,
                    "final_epoch": self.final_epoch,
                    "epoch_after_zombie": self.epoch_after_zombie,
                    "zombie_fenced": self.zombie_fenced,
                    "old_fence_token": self.old_fence_token,
                    "new_fence_token": self.new_fence_token,
                    "parity": dict(sorted(self.parity.items())),
                    "replication": self.replication,
                    "orphans_after_kill": self.orphans_after_kill,
                    "orphan_segments": self.orphan_segments,
                    "elapsed_s": round(self.elapsed_s, 3),
                },
            },
            indent=2,
            sort_keys=True,
        )

    def format_table(self) -> str:
        lines = [
            f"== failover drill: SIGKILL primary of {self.graph} at epoch "
            f"{self.failover_at_epoch}, promote the follower ==",
            f"acknowledged epoch {self.acked_epoch}  "
            f"promoted at epoch {self.promoted_epoch}  "
            f"lost acknowledged deltas {self.lost_deltas}",
            f"fencing token {self.old_fence_token} -> "
            f"{self.new_fence_token}  zombie append "
            f"{'fenced' if self.zombie_fenced else 'NOT FENCED'}  "
            f"epoch after zombie {self.epoch_after_zombie}",
            f"post-promotion ingests {self.post_promote_ingests}  "
            f"final epoch {self.final_epoch}",
        ]
        for algo, match in sorted(self.parity.items()):
            lines.append(
                f"  parity {algo:<8} {'ok' if match else 'MISMATCH'}"
            )
        lines.append(
            f"shm segments: {self.orphans_after_kill} stranded by the "
            f"kill, {len(self.orphan_segments)} orphaned at drill end"
        )
        if self.orphan_segments:
            lines.append(f"  ORPHANS: {', '.join(self.orphan_segments)}")
        lines.append(
            f"verdict: {'PASS' if self.ok else 'FAIL'} "
            f"({self.elapsed_s:.1f}s)"
        )
        return "\n".join(lines)


def run_failover_drill(
    wal_dir: str,
    failover_at_epoch: int = 3,
    graph: str = "PK",
    scale: str = "tiny",
    n_snapshots: int = 4,
    workers: int = 1,
    algos: list[str] | None = None,
    source: int = 1,
    post_promote_ingests: int = 2,
    catchup_timeout_s: float = 60.0,
) -> FailoverReport:
    """Kill the serving primary mid-ingest and promote a live follower.

    The primary runs as a separate ``mega-repro serve`` process on
    ``wal_dir``; the follower is an in-process
    :class:`~repro.service.replica.ReplicaServer` tailing the same
    directory.  After ``failover_at_epoch`` acknowledged ingests the
    primary is SIGKILLed, the follower is promoted, a zombie append with
    the dead primary's fencing token is injected, and the new primary
    ingests ``post_promote_ingests`` more epochs.  Parity is asserted
    against an uninterrupted from-scratch replay of the full seeded
    chain on every requested algorithm.
    """
    from repro.service.core import ServiceConfig
    from repro.service.replica import ReplicaServer
    from repro.service.request import QueryRequest
    from repro.service.wal import (
        WriteAheadLog,
        current_fence_token,
        read_from,
        recover_wal,
    )

    if failover_at_epoch < 1:
        raise ValueError("--failover-at-epoch must be >= 1")
    algos = algos if algos else sorted(a.lower() for a in ALGORITHMS)
    t0 = time.monotonic()
    cli_args = [
        "--scale", scale,
        "--snapshots", str(n_snapshots),
        "--workers", str(workers),
        "--graphs", graph,
        "--wal-dir", wal_dir,
    ]

    primary = _ServeProcess(cli_args)
    replica = None
    acked = 0
    try:
        # a real query first so the kill lands on a warmed primary
        primary.request(
            {"op": "query", "graph": graph, "algo": algos[0],
             "source": source}
        )
        old_token = current_fence_token(wal_dir)
        replica = ReplicaServer(
            wal_dir,
            ServiceConfig(
                scale=scale, n_snapshots=n_snapshots, workers=workers
            ),
            follower_id="drill-follower",
        ).start()
        for k in range(1, failover_at_epoch + 1):
            resp = primary.request(
                {"op": "ingest", "graph": graph, "seed": k}
            )
            if not resp.get("ok"):
                raise CrashDrillError(f"ingest {k} refused: {resp}")
            acked = int(resp["epoch"])
        # the follower must observe every acknowledged epoch before the
        # kill — replication lag drains to zero under the timeout guard
        deadline = time.monotonic() + catchup_timeout_s
        while replica.service.epoch(graph) < acked:
            if time.monotonic() >= deadline:
                raise CrashDrillError(
                    f"follower stuck at epoch "
                    f"{replica.service.epoch(graph)} < {acked} after "
                    f"{catchup_timeout_s:.0f}s"
                )
            time.sleep(0.01)
        # lag must have been *observable* while replicating
        health = primary.request({"op": "health"})
        replication = {
            "followers_seen_by_primary": list(
                health.get("followers", {})
            ),
            "follower_health": replica.health(),
        }
    except BaseException:
        if replica is not None:
            replica.stop(drain=False)
        raise
    finally:
        # SIGKILL right after the last ack: everything acknowledged must
        # survive the failover, nothing unacknowledged is in flight
        primary.sigkill()
    orphans_after_kill = len(list_orphan_segments())

    try:
        new_token = replica.promote()
        promoted_epoch = replica.service.epoch(graph)

        # the nastiest race: the dead primary's ghost appends one more
        # record with its stale token — it must be skipped by every
        # read and quarantined by the next recovery, never applied
        zombie = WriteAheadLog(wal_dir, fence_token=old_token)
        zombie.append(
            {
                "op": "ingest",
                "graph": graph,
                "epoch": promoted_epoch + 1,
                "delta": {"adds": [[0, 1, 1.0]], "dels": []},
            }
        )
        zombie.close()
        zombie_read_fenced = read_from(wal_dir).fenced >= 1

        final_epoch = promoted_epoch
        for k in range(1, post_promote_ingests + 1):
            final_epoch = replica.service.ingest(graph, seed=acked + k)
        epoch_after_zombie = replica.service.epoch(graph)

        reference = _reference_summaries(
            graph, scale, n_snapshots, final_epoch, algos, source
        )
        parity: dict[str, bool] = {}
        for algo_name in algos:
            handle = replica.service.submit(
                QueryRequest(graph=graph, algo=algo_name, source=source)
            )
            resp = handle.wait(timeout=OP_TIMEOUT_S)
            parity[algo_name] = bool(
                resp is not None
                and resp.ok
                and resp.epoch == final_epoch
                and _digests_match(
                    [s.as_dict() for s in resp.summaries],
                    reference[algo_name],
                )
            )
        replication["promoted_health"] = replica.health()
    finally:
        replica.stop()

    # the quarantine half of the fencing contract: a full recovery of
    # the directory detects the zombie record and quarantines it, and
    # replaying the WAL from scratch reproduces exactly the final epoch
    recovery = recover_wal(wal_dir)
    zombie_quarantined = recovery.fenced >= 1
    replication["final_recovery"] = recovery.summary()

    return FailoverReport(
        graph=graph,
        failover_at_epoch=failover_at_epoch,
        acked_epoch=acked,
        promoted_epoch=promoted_epoch,
        post_promote_ingests=post_promote_ingests,
        final_epoch=final_epoch,
        old_fence_token=old_token,
        new_fence_token=new_token,
        zombie_fenced=zombie_read_fenced and zombie_quarantined,
        epoch_after_zombie=epoch_after_zombie,
        parity=parity,
        replication=replication,
        orphans_after_kill=orphans_after_kill,
        orphan_segments=list_orphan_segments(),
        elapsed_s=time.monotonic() - t0,
    )


# ---------------------------------------------------------------------------
# shard kill drill: kill one shard's workers, then the fleet, recover per-WAL
# ---------------------------------------------------------------------------


@dataclass
class ShardKillReport:
    """Outcome of one shard-fleet kill-and-recover drill."""

    graph: str
    n_shards: int
    victim_shard: int
    crash_at_epoch: int
    acked_epoch: int
    #: victim-shard worker processes SIGKILLed mid-serving (phase 1)
    workers_killed: int
    #: a query served through the worker kill (retry + pool restart)
    served_through_kill: bool
    #: victim shard's pool restarts observed after the worker kill
    victim_pool_restarts: int
    #: front-end epoch after the whole-fleet SIGKILL + restart (phase 2)
    recovered_epoch: int = 0
    #: shard id -> epoch that shard recovered from its own WAL
    shard_epochs: dict[int, int] = field(default_factory=dict)
    #: algorithm name -> digests matched the uninterrupted replay
    parity: dict[str, bool] = field(default_factory=dict)
    orphans_after_crash: int = 0
    orphan_segments: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def lost_deltas(self) -> int:
        return max(0, self.acked_epoch - self.recovered_epoch)

    @property
    def ok(self) -> bool:
        return (
            self.recovered_epoch == self.acked_epoch
            and all(
                e == self.acked_epoch for e in self.shard_epochs.values()
            )
            and self.served_through_kill
            and self.victim_pool_restarts >= 1
            and bool(self.parity)
            and all(self.parity.values())
            and not self.orphan_segments
        )

    def format_table(self) -> str:
        lines = [
            f"== shard kill drill: {self.n_shards} shards of {self.graph}, "
            f"SIGKILL shard {self.victim_shard}'s workers at epoch "
            f"{self.crash_at_epoch}, then the fleet; recover per-shard "
            f"WALs ==",
            f"acknowledged epoch {self.acked_epoch}  "
            f"recovered epoch {self.recovered_epoch}  "
            f"lost acknowledged deltas {self.lost_deltas}",
            f"victim workers killed {self.workers_killed}  "
            f"served through kill "
            f"{'yes' if self.served_through_kill else 'NO'}  "
            f"pool restarts {self.victim_pool_restarts}",
            "per-shard recovered epochs: "
            + "  ".join(
                f"shard {i}={e}" for i, e in sorted(self.shard_epochs.items())
            ),
        ]
        for algo, match in sorted(self.parity.items()):
            lines.append(
                f"  parity {algo:<8} {'ok' if match else 'MISMATCH'}"
            )
        lines.append(
            f"shm segments: {self.orphans_after_crash} stranded by the "
            f"kill, {len(self.orphan_segments)} orphaned at drill end"
        )
        if self.orphan_segments:
            lines.append(f"  ORPHANS: {', '.join(self.orphan_segments)}")
        lines.append(
            f"verdict: {'PASS' if self.ok else 'FAIL'} "
            f"({self.elapsed_s:.1f}s)"
        )
        return "\n".join(lines)


def _query_with_retries(
    proc: _ServeProcess, op: dict, attempts: int = 4, pause_s: float = 0.25
) -> dict:
    """Cooperative-client retry loop for a drill query.

    A worker kill races the pool's broken-executor detection: the first
    plan after the kill can fail terminally before the restart lands, so
    the drill retries the query the way the load generator's client
    would, instead of treating one raced attempt as the verdict.
    """
    resp: dict = {}
    for _ in range(attempts):
        resp = proc.request(op)
        if resp.get("ok"):
            return resp
        time.sleep(pause_s)
    return resp


def run_shard_kill_drill(
    wal_root: str,
    n_shards: int = 2,
    victim_shard: int = 0,
    crash_at_epoch: int = 2,
    graph: str = "PK",
    scale: str = "tiny",
    n_snapshots: int = 4,
    workers: int = 1,
    algos: list[str] | None = None,
    source: int = 1,
) -> ShardKillReport:
    """Two-phase kill drill against a sharded ``serve --shards N`` child.

    Phase 1 SIGKILLs every worker process of one shard while the fleet
    is serving: the shard's pool must restart and the front end's plan
    retry must serve the in-flight query anyway.  Phase 2 SIGKILLs the
    whole serve child's session (taking down every shard's workers at
    once, mid-stream), restarts it on the same ``--wal-dir`` root, and
    asserts every shard recovered exactly the acknowledged epoch from
    **its own** WAL directory — the all-fsync ack barrier means no shard
    may come back short — plus query parity on every registry algorithm
    against an uninterrupted replay.
    """
    if crash_at_epoch < 1:
        raise ValueError("--shard-kill-at-epoch must be >= 1")
    if n_shards < 2:
        raise ValueError("the shard kill drill needs --shards >= 2")
    if not 0 <= victim_shard < n_shards:
        raise ValueError(f"victim shard must be in [0, {n_shards})")
    algos = algos if algos else sorted(a.lower() for a in ALGORITHMS)
    t0 = time.monotonic()
    cli_args = [
        "--scale", scale,
        "--snapshots", str(n_snapshots),
        "--workers", str(workers),
        "--graphs", graph,
        "--wal-dir", wal_root,
        "--shards", str(n_shards),
    ]

    victim_proc = _ServeProcess(cli_args)
    acked = 0
    workers_killed = 0
    served_through_kill = False
    victim_pool_restarts = 0
    try:
        # warm the fleet first: the kill must land on populated worker
        # caches and an exercised scatter path, not a blank service
        victim_proc.request(
            {"op": "query", "graph": graph, "algo": algos[0],
             "source": source}
        )
        for k in range(1, crash_at_epoch + 1):
            resp = victim_proc.request(
                {"op": "ingest", "graph": graph, "seed": k}
            )
            if not resp.get("ok"):
                raise CrashDrillError(f"ingest {k} refused: {resp}")
            acked = int(resp["epoch"])

        health = victim_proc.request({"op": "health"})
        entries = {
            e["shard"]: e
            for e in health.get("sharding", {}).get("shards", [])
        }
        if victim_shard not in entries:
            raise CrashDrillError(
                f"health reports no shard {victim_shard}: {sorted(entries)}"
            )
        for pid in entries[victim_shard]["worker_pids"]:
            try:
                os.kill(pid, signal.SIGKILL)
                workers_killed += 1
            except ProcessLookupError:  # pragma: no cover - raced exit
                pass
        resp = _query_with_retries(
            victim_proc,
            {"op": "query", "graph": graph, "algo": algos[0],
             "source": source},
        )
        served_through_kill = bool(resp.get("ok"))
        health = victim_proc.request({"op": "health"})
        for e in health.get("sharding", {}).get("shards", []):
            if e["shard"] == victim_shard:
                victim_pool_restarts = int(e["pool_restarts"])
    finally:
        # phase 2: SIGKILL the whole session right after the last ack —
        # every shard dies mid-stream with its WAL as the only survivor
        victim_proc.sigkill()
    orphans_after_crash = len(list_orphan_segments())

    survivor = _ServeProcess(cli_args)
    try:
        health = survivor.request({"op": "health"})
        if not health.get("ok"):
            raise CrashDrillError(f"health op failed: {health}")
        recovered = int(health.get("epochs", {}).get(graph, 0))
        shard_epochs = {
            int(e["shard"]): int(e["epochs"].get(graph, 0))
            for e in health.get("sharding", {}).get("shards", [])
        }
        reference = _reference_summaries(
            graph, scale, n_snapshots, recovered, algos, source
        )
        parity: dict[str, bool] = {}
        for algo_name in algos:
            resp = survivor.request(
                {"op": "query", "graph": graph, "algo": algo_name,
                 "source": source}
            )
            parity[algo_name] = bool(
                resp.get("ok")
                and int(resp.get("epoch", -1)) == recovered
                and _digests_match(
                    resp.get("snapshots", []), reference[algo_name]
                )
            )
    finally:
        survivor.shutdown()

    return ShardKillReport(
        graph=graph,
        n_shards=n_shards,
        victim_shard=victim_shard,
        crash_at_epoch=crash_at_epoch,
        acked_epoch=acked,
        workers_killed=workers_killed,
        served_through_kill=served_through_kill,
        victim_pool_restarts=victim_pool_restarts,
        recovered_epoch=recovered,
        shard_epochs=shard_epochs,
        parity=parity,
        orphans_after_crash=orphans_after_crash,
        orphan_segments=list_orphan_segments(),
        elapsed_s=time.monotonic() - t0,
    )


# ---------------------------------------------------------------------------
# chaos kill drill: SIGKILL the cluster primary, the cluster heals itself
# ---------------------------------------------------------------------------


class _StdioPrimary:
    """Resolver target wrapping the serve subprocess for the load writer.

    Quacks like a primary for :func:`~repro.service.loadgen.run_load`'s
    redirect-following writer: ``ingest`` raises when the child refuses
    or is dead (the writer treats an unexplained death as
    *maybe-applied* and dedups against the successor), and ``epoch``
    answers the survived-write probe from the health op.
    """

    def __init__(self, proc: _ServeProcess) -> None:
        self._proc = proc

    @property
    def alive(self) -> bool:
        return self._proc.proc.poll() is None

    def ingest(
        self, graph: str, seed: int | None = None,
        n_add: int = 8, n_del: int = 8,
    ) -> int:
        op = {"op": "ingest", "graph": graph, "n_add": n_add, "n_del": n_del}
        if seed is not None:
            op["seed"] = int(seed)
        resp = self._proc.request(op)
        if not resp.get("ok"):
            raise CrashDrillError(f"subprocess primary refused: {resp}")
        return int(resp["epoch"])

    def epoch(self, graph: str) -> int:
        resp = self._proc.request({"op": "health"})
        return int(resp.get("epochs", {}).get(graph, 0))


@dataclass
class ChaosReport:
    """Outcome of one unattended cluster chaos-kill drill."""

    graph: str
    cluster: int
    kill_at_epoch: int
    #: last phase-1 epoch whose quorum ack was *proven* (not degraded)
    quorum_acked_epoch: int = 0
    #: phase-1 acks that timed out into local-durability degradation
    degraded_acks: int = 0
    #: most caught-up follower's applied epoch at the instant of the
    #: kill — the durability floor every quorum:1-acked epoch sits under
    quorum_floor: int = 0
    elected_node: str = ""
    #: seconds from SIGKILL to a self-elected primary (no driver)
    election_s: float = 0.0
    #: elected primary's epoch right after promotion
    elected_epoch: int = 0
    old_fence_token: int = 0
    new_fence_token: int = 0
    final_epoch: int = 0
    #: epochs the cluster ingested after the kill (writer kept writing)
    post_kill_ingests: int = 0
    #: writer target changes across the election (from the bench report)
    failovers: int = 0
    redirects: int = 0
    #: the load run errored or its writer gave up mid-election
    load_degraded: bool = True
    survivor_node: str = ""
    survivor_epoch: int = 0
    #: which node the survivor believes is primary after re-targeting
    survivor_primary_view: str = ""
    parity: dict[str, bool] = field(default_factory=dict)
    cluster_health: dict = field(default_factory=dict)
    orphans_after_kill: int = 0
    orphan_segments: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def lost_quorum_acked(self) -> int:
        return max(0, self.quorum_floor - self.elected_epoch)

    @property
    def ok(self) -> bool:
        survivor_ok = self.cluster < 3 or (
            self.survivor_epoch == self.final_epoch
            and self.survivor_primary_view == self.elected_node
        )
        return (
            bool(self.elected_node)
            and self.lost_quorum_acked == 0
            and self.degraded_acks == 0
            and self.new_fence_token > self.old_fence_token
            and self.failovers >= 1
            and self.post_kill_ingests >= 1
            and not self.load_degraded
            and survivor_ok
            and bool(self.parity)
            and all(self.parity.values())
            and not self.orphan_segments
        )

    def to_json(self) -> str:
        from repro.service.loadgen import BENCH_SCHEMA_VERSION

        return json.dumps(
            {
                "bench": "service",
                "schema_version": BENCH_SCHEMA_VERSION,
                "drill": "chaos-kill",
                "graph": self.graph,
                "cluster": self.cluster,
                "kill_at_epoch": self.kill_at_epoch,
                "results": {
                    "ok": self.ok,
                    "quorum_acked_epoch": self.quorum_acked_epoch,
                    "degraded_acks": self.degraded_acks,
                    "quorum_floor": self.quorum_floor,
                    "lost_quorum_acked": self.lost_quorum_acked,
                    "elected_node": self.elected_node,
                    "election_s": round(self.election_s, 3),
                    "elected_epoch": self.elected_epoch,
                    "old_fence_token": self.old_fence_token,
                    "new_fence_token": self.new_fence_token,
                    "final_epoch": self.final_epoch,
                    "post_kill_ingests": self.post_kill_ingests,
                    "failovers": self.failovers,
                    "redirects": self.redirects,
                    "load_degraded": self.load_degraded,
                    "survivor_node": self.survivor_node,
                    "survivor_epoch": self.survivor_epoch,
                    "survivor_primary_view": self.survivor_primary_view,
                    "parity": dict(sorted(self.parity.items())),
                    "cluster_health": self.cluster_health,
                    "orphans_after_kill": self.orphans_after_kill,
                    "orphan_segments": self.orphan_segments,
                    "elapsed_s": round(self.elapsed_s, 3),
                },
            },
            indent=2,
            sort_keys=True,
        )

    def format_table(self) -> str:
        lines = [
            f"== chaos kill drill: {self.cluster}-node cluster of "
            f"{self.graph}, SIGKILL the primary at epoch "
            f"{self.kill_at_epoch}, unattended election ==",
            f"quorum-acked epoch {self.quorum_acked_epoch}  "
            f"degraded acks {self.degraded_acks}  "
            f"quorum floor at kill {self.quorum_floor}",
            f"elected {self.elected_node or 'NOBODY'} in "
            f"{self.election_s:.2f}s at epoch {self.elected_epoch}  "
            f"lost quorum-acked epochs {self.lost_quorum_acked}",
            f"fencing token {self.old_fence_token} -> "
            f"{self.new_fence_token}  post-kill ingests "
            f"{self.post_kill_ingests}  final epoch {self.final_epoch}",
            f"writer: failovers {self.failovers}  redirects "
            f"{self.redirects}  "
            f"{'DEGRADED' if self.load_degraded else 'clean'}",
            f"survivor {self.survivor_node or '-'}: epoch "
            f"{self.survivor_epoch}, sees primary "
            f"{self.survivor_primary_view or '-'}",
        ]
        for algo, match in sorted(self.parity.items()):
            lines.append(
                f"  parity {algo:<8} {'ok' if match else 'MISMATCH'}"
            )
        lines.append(
            f"shm segments: {self.orphans_after_kill} stranded by the "
            f"kill, {len(self.orphan_segments)} orphaned at drill end"
        )
        if self.orphan_segments:
            lines.append(f"  ORPHANS: {', '.join(self.orphan_segments)}")
        lines.append(
            f"verdict: {'PASS' if self.ok else 'FAIL'} "
            f"({self.elapsed_s:.1f}s)"
        )
        return "\n".join(lines)


def run_chaos_kill_drill(
    wal_dir: str,
    cluster: int = 3,
    kill_at_epoch: int = 3,
    graph: str = "PK",
    scale: str = "tiny",
    n_snapshots: int = 4,
    workers: int = 1,
    algos: list[str] | None = None,
    source: int = 1,
    heartbeat_interval_s: float = 0.1,
    load_duration_s: float = 15.0,
    election_timeout_s: float = 60.0,
    catchup_timeout_s: float = 60.0,
) -> ChaosReport:
    """SIGKILL the cluster primary under live quorum-acked load and let
    the cluster heal itself — **nothing in this drill calls promote()**.

    The primary is a ``mega-repro serve --cluster N`` subprocess on
    ``wal_dir`` answering ingests at ``--ack-mode quorum:1``; the other
    ``N - 1`` nodes are in-process followers, each a
    :class:`~repro.service.replica.ReplicaServer` under a ticking
    :class:`~repro.service.cluster.ClusterNode`.  Phase 1 ingests
    ``kill_at_epoch`` seeded epochs and requires every ack to be a
    proven quorum ack.  Phase 2 starts an open-loop load whose writer
    follows redirects through :func:`~repro.service.loadgen.run_load`'s
    ``resolve_primary`` hook, waits until post-phase-1 epochs are
    visibly replicating, samples the quorum durability floor, and
    SIGKILLs the child mid-stream.  Phase 3 just *waits*: heartbeat
    suspicion must confirm the death, exactly one follower must win the
    fence CAS and promote, the writer must land its in-flight ingest on
    the new primary without forking the seeded chain, and the surviving
    follower must re-target.  Parity runs every requested algorithm
    against an uninterrupted replay of seeds ``1..final_epoch``.
    """
    from repro.service.cluster import ClusterNode
    from repro.service.core import ServiceConfig
    from repro.service.loadgen import LoadSpec, run_load
    from repro.service.replica import ReplicaServer
    from repro.service.request import QueryRequest
    from repro.service.wal import current_fence_token, recover_wal

    if cluster < 2:
        raise ValueError("--chaos-kill needs a cluster of >= 2 nodes")
    if kill_at_epoch < 1:
        raise ValueError("--chaos-kill must be >= 1")
    algos = algos if algos else sorted(a.lower() for a in ALGORITHMS)
    t0 = time.monotonic()
    cli_args = [
        "--scale", scale,
        "--snapshots", str(n_snapshots),
        "--workers", str(workers),
        "--graphs", graph,
        "--wal-dir", wal_dir,
        "--cluster", str(cluster),
        "--node-id", "node-0",
        "--ack-mode", "quorum:1",
        "--quorum-timeout", "30",
        "--heartbeat-interval", str(heartbeat_interval_s),
    ]

    primary = _ServeProcess(cli_args)
    nodes: list[ClusterNode] = []
    replicas: list[ReplicaServer] = []
    try:
        # a real query first so the kill lands on a warmed primary
        primary.request(
            {"op": "query", "graph": graph, "algo": algos[0],
             "source": source}
        )
        old_token = current_fence_token(wal_dir)
        for i in range(1, cluster):
            replica = ReplicaServer(
                wal_dir,
                ServiceConfig(
                    scale=scale, n_snapshots=n_snapshots, workers=workers,
                    ack_mode="quorum:1", quorum_timeout_s=30.0,
                ),
                follower_id=f"node-{i}",
            ).start()
            replicas.append(replica)
            node = ClusterNode(
                wal_dir, f"node-{i}",
                replica=replica,
                cluster_size=cluster,
                heartbeat_interval_s=heartbeat_interval_s,
            ).start()
            nodes.append(node)

        # phase 1: controlled ingests — every ack must be a *proven*
        # quorum ack (a degrade here means replication is not live and
        # the whole premise of the kill is void)
        quorum_acked = 0
        degraded_acks = 0
        for k in range(1, kill_at_epoch + 1):
            resp = primary.request(
                {"op": "ingest", "graph": graph, "seed": k}
            )
            if not resp.get("ok"):
                raise CrashDrillError(f"ingest {k} refused: {resp}")
            ack = resp.get("ack", {})
            if ack.get("mode") != "quorum":
                raise CrashDrillError(
                    f"expected a quorum ack for epoch {k}, got {ack}"
                )
            if ack.get("degraded"):
                degraded_acks += 1
            else:
                quorum_acked = int(resp["epoch"])
        acked = kill_at_epoch

        deadline = time.monotonic() + catchup_timeout_s
        while any(r.service.epoch(graph) < acked for r in replicas):
            if time.monotonic() >= deadline:
                raise CrashDrillError(
                    "followers stuck behind the phase-1 epochs: "
                    + str([r.service.epoch(graph) for r in replicas])
                )
            time.sleep(0.01)

        # phase 2: open-loop load; the writer's resolver prefers an
        # elected in-process primary and falls back to the live child
        stdio_target = _StdioPrimary(primary)

        def _resolve():
            for node in nodes:
                if node.role == "primary":
                    return node.service
            return stdio_target if stdio_target.alive else None

        spec = LoadSpec(
            duration_s=load_duration_s,
            rate_qps=5.0,
            # the writer's seeds continue the phase-1 chain (seed+1, ...)
            seed=kill_at_epoch,
            graphs=(graph,),
            algos=(algos[0],),
            ingest_every_s=0.2,
            max_retries=3,
        )
        load_box: dict = {}

        def _load() -> None:
            try:
                load_box["report"] = run_load(
                    replicas[0].service, spec, resolve_primary=_resolve
                )
            except BaseException as exc:  # noqa: BLE001 - reported below
                load_box["error"] = exc

        load_thread = threading.Thread(
            target=_load, name="chaos-load", daemon=True
        )
        load_thread.start()

        # wait until the writer's post-phase-1 ingests are visibly
        # replicating, so the kill lands mid-stream, not in a lull
        deadline = time.monotonic() + catchup_timeout_s
        while max(r.service.epoch(graph) for r in replicas) <= acked:
            if "error" in load_box:
                raise CrashDrillError(
                    f"load failed before the kill: {load_box['error']!r}"
                )
            if time.monotonic() >= deadline:
                raise CrashDrillError(
                    "the writer's ingests never replicated before the kill"
                )
            time.sleep(0.01)

        # the durability floor: every quorum:1-acked epoch is <= the
        # most caught-up follower's applied epoch at the kill instant
        quorum_floor = max(r.service.epoch(graph) for r in replicas)
        primary.sigkill()
        kill_t = time.monotonic()
        orphans_after_kill = len(list_orphan_segments())

        # phase 3: unattended election — this loop only *watches*
        elected = None
        deadline = kill_t + election_timeout_s
        while elected is None:
            for node in nodes:
                if node.role == "primary":
                    elected = node
                    break
            if elected is None:
                if time.monotonic() >= deadline:
                    raise CrashDrillError(
                        f"no follower elected itself within "
                        f"{election_timeout_s:.0f}s of the kill"
                    )
                time.sleep(0.01)
        election_s = time.monotonic() - kill_t
        elected_epoch = elected.service.epoch(graph)
        new_token = current_fence_token(wal_dir)

        load_thread.join(
            timeout=load_duration_s + spec.drain_timeout_s + 120.0
        )
        if load_thread.is_alive():
            raise CrashDrillError("load generator wedged after the election")
        load_degraded = True
        failovers = redirects = 0
        if "report" in load_box:
            bench = load_box["report"]
            load_degraded = bench.degraded
            failovers = int(bench.results.get("failovers", 0))
            redirects = int(bench.results.get("redirects", 0))

        final_epoch = elected.service.epoch(graph)

        # the surviving follower re-targets the elected primary and
        # converges on its epoch
        survivors = [n for n in nodes if n is not elected]
        survivor_node = survivors[0].node_id if survivors else ""
        survivor_epoch = final_epoch
        survivor_view = elected.node_id if not survivors else ""
        if survivors:
            s = survivors[0]
            deadline = time.monotonic() + catchup_timeout_s
            while time.monotonic() < deadline:
                survivor_epoch = s.service.epoch(graph)
                survivor_view = s.primary_node_id or ""
                if (
                    survivor_epoch >= final_epoch
                    and survivor_view == elected.node_id
                ):
                    break
                time.sleep(0.05)

        # parity: the writer's failover dedup keeps the seeded chain
        # contiguous, so an uninterrupted replay of seeds
        # 1..final_epoch is the exact reference for every algorithm
        reference = _reference_summaries(
            graph, scale, n_snapshots, final_epoch, algos, source
        )
        parity: dict[str, bool] = {}
        for algo_name in algos:
            handle = elected.service.submit(
                QueryRequest(graph=graph, algo=algo_name, source=source)
            )
            resp = handle.wait(timeout=OP_TIMEOUT_S)
            parity[algo_name] = bool(
                resp is not None
                and resp.ok
                and resp.epoch == final_epoch
                and _digests_match(
                    [s.as_dict() for s in resp.summaries],
                    reference[algo_name],
                )
            )
        cluster_health = elected.health()
    finally:
        primary.sigkill()
        for node in nodes:
            node.stop()
        for replica in replicas:
            try:
                replica.stop()
            except Exception:  # noqa: BLE001 - teardown must finish
                log_note = True  # noqa: F841 - best-effort teardown
    cluster_health["final_recovery"] = recover_wal(wal_dir).summary()

    return ChaosReport(
        graph=graph,
        cluster=cluster,
        kill_at_epoch=kill_at_epoch,
        quorum_acked_epoch=quorum_acked,
        degraded_acks=degraded_acks,
        quorum_floor=quorum_floor,
        elected_node=elected.node_id,
        election_s=election_s,
        elected_epoch=elected_epoch,
        old_fence_token=old_token,
        new_fence_token=new_token,
        final_epoch=final_epoch,
        post_kill_ingests=max(0, final_epoch - quorum_floor),
        failovers=failovers,
        redirects=redirects,
        load_degraded=load_degraded,
        survivor_node=survivor_node,
        survivor_epoch=survivor_epoch,
        survivor_primary_view=survivor_view,
        parity=parity,
        cluster_health=cluster_health,
        orphans_after_kill=orphans_after_kill,
        orphan_segments=list_orphan_segments(),
        elapsed_s=time.monotonic() - t0,
    )
