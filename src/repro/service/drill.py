"""Kill-and-recover drill: SIGKILL the service mid-stream, replay the WAL.

The durability contract is only worth having if it survives the real
failure mode, so the drill runs the service as a *separate process*
(`mega-repro serve` on pipes), ingests seeded deltas until a chosen
epoch is acknowledged, and SIGKILLs it — no atexit handlers, no flush,
exactly what a crashed coordinator looks like.  It then restarts the
service on the same ``--wal-dir`` and asserts:

* **zero acknowledged-delta loss** — the recovered epoch equals the last
  epoch the dead process acknowledged;
* **result parity** — for every registry algorithm, query digests from
  the recovered service equal an uninterrupted in-process replay of the
  same seeded ingest chain (seeded synthesis is deterministic given the
  epoch state, so the reference is exact);
* **zero orphaned shared-memory segments** — the killed coordinator
  cannot unlink its scenario-plane segments, so the restarted service
  must sweep them (and clean up its own on shutdown): after the drill,
  ``/dev/shm`` holds no ``megashm-*`` segment owned by a dead process.

``mega-repro serve-bench --crash-at-epoch N`` runs this and exits
non-zero on any loss or mismatch; CI smokes it at tiny scale.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field

from repro.algorithms import ALGORITHMS, get_algorithm
from repro.service.shm import list_orphan_segments

__all__ = ["CrashDrillError", "DrillReport", "run_crash_drill"]

#: per-exchange ceiling; far above any tiny/small-scale op
OP_TIMEOUT_S = 180.0


class CrashDrillError(RuntimeError):
    """The drill could not run (dead subprocess, protocol breakdown)."""


@dataclass
class DrillReport:
    """Outcome of one kill-and-recover drill."""

    graph: str
    crash_at_epoch: int
    acked_epoch: int
    recovered_epoch: int
    #: algorithm name -> digests matched the uninterrupted run
    parity: dict[str, bool] = field(default_factory=dict)
    wal_recovery: dict = field(default_factory=dict)
    #: shm segments the SIGKILL stranded (informational; the restart sweeps)
    orphans_after_crash: int = 0
    #: shm segments still orphaned when the drill finished (must be empty)
    orphan_segments: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def lost_deltas(self) -> int:
        return max(0, self.acked_epoch - self.recovered_epoch)

    @property
    def ok(self) -> bool:
        return (
            self.recovered_epoch == self.acked_epoch
            and bool(self.parity)
            and all(self.parity.values())
            and not self.orphan_segments
        )

    def format_table(self) -> str:
        lines = [
            f"== crash drill: SIGKILL {self.graph} at epoch "
            f"{self.crash_at_epoch}, recover from WAL ==",
            f"acknowledged epoch {self.acked_epoch}  "
            f"recovered epoch {self.recovered_epoch}  "
            f"lost acknowledged deltas {self.lost_deltas}",
        ]
        for algo, match in sorted(self.parity.items()):
            lines.append(
                f"  parity {algo:<8} "
                f"{'ok' if match else 'MISMATCH'}"
            )
        if self.wal_recovery:
            lines.append(f"wal recovery: {self.wal_recovery}")
        lines.append(
            f"shm segments: {self.orphans_after_crash} stranded by the "
            f"kill, {len(self.orphan_segments)} orphaned at drill end"
        )
        if self.orphan_segments:
            lines.append(f"  ORPHANS: {', '.join(self.orphan_segments)}")
        lines.append(
            f"verdict: {'PASS' if self.ok else 'FAIL'} "
            f"({self.elapsed_s:.1f}s)"
        )
        return "\n".join(lines)


class _ServeProcess:
    """One `mega-repro serve` child on line-delimited JSON pipes."""

    def __init__(self, cli_args: list[str]) -> None:
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", *cli_args],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )

    def request(self, op: dict) -> dict:
        if self.proc.poll() is not None:
            raise CrashDrillError(
                f"serve process exited early (rc={self.proc.returncode})"
            )
        self.proc.stdin.write(json.dumps(op) + "\n")
        self.proc.stdin.flush()
        line = self.proc.stdout.readline()
        if not line:
            raise CrashDrillError(
                "serve process closed stdout mid-session "
                f"(rc={self.proc.poll()})"
            )
        return json.loads(line)

    def sigkill(self) -> None:
        os.kill(self.proc.pid, signal.SIGKILL)
        self.proc.wait(timeout=30)
        # release the pipes of the corpse
        self.proc.stdin.close()
        self.proc.stdout.close()

    def shutdown(self) -> None:
        try:
            self.request({"op": "shutdown"})
        finally:
            try:
                self.proc.stdin.close()
            except OSError:
                pass
            self.proc.wait(timeout=OP_TIMEOUT_S)
            self.proc.stdout.close()


def _reference_summaries(
    graph: str, scale: str, n_snapshots: int, epochs: int,
    algos: list[str], source: int,
) -> dict[str, list[dict]]:
    """Uninterrupted replay: the digests a crash-free run would serve."""
    from repro.core.multi_query import evaluate_multi_query
    from repro.experiments.runner import scenario_cache
    from repro.service.ingest import apply_delta, synthesize_delta
    from repro.service.pool import _summarize

    scenario = scenario_cache(graph, scale, n_snapshots=n_snapshots)
    for k in range(1, epochs + 1):
        scenario = apply_delta(
            scenario, synthesize_delta(scenario, seed=k)
        )
    out: dict[str, list[dict]] = {}
    for algo_name in algos:
        algorithm = get_algorithm(algo_name)
        mq = evaluate_multi_query(scenario, algorithm, [source])
        out[algo_name] = [
            _summarize(algorithm, mq.values(0, k), k).as_dict()
            for k in range(scenario.n_snapshots)
        ]
    return out


def _digests_match(got: list[dict], want: list[dict]) -> bool:
    if len(got) != len(want):
        return False
    for g, w in zip(got, want):
        if g["snapshot"] != w["snapshot"] or g["reached"] != w["reached"]:
            return False
        if abs(g["checksum"] - w["checksum"]) > 1e-6 * max(
            1.0, abs(w["checksum"])
        ):
            return False
    return True


def run_crash_drill(
    wal_dir: str,
    crash_at_epoch: int = 2,
    graph: str = "PK",
    scale: str = "tiny",
    n_snapshots: int = 4,
    workers: int = 1,
    algos: list[str] | None = None,
    source: int = 1,
) -> DrillReport:
    """SIGKILL a serving process after ``crash_at_epoch`` acknowledged
    ingests, restart it on the same WAL, and check loss + parity."""
    if crash_at_epoch < 1:
        raise ValueError("--crash-at-epoch must be >= 1")
    algos = algos if algos else sorted(a.lower() for a in ALGORITHMS)
    t0 = time.monotonic()
    cli_args = [
        "--scale", scale,
        "--snapshots", str(n_snapshots),
        "--workers", str(workers),
        "--graphs", graph,
        "--wal-dir", wal_dir,
    ]

    victim = _ServeProcess(cli_args)
    acked = 0
    try:
        # serve a real query first so the kill lands on a warmed service
        # (worker caches populated, plan path exercised), not a blank one
        victim.request(
            {"op": "query", "graph": graph, "algo": algos[0],
             "source": source}
        )
        for k in range(1, crash_at_epoch + 1):
            resp = victim.request({"op": "ingest", "graph": graph, "seed": k})
            if not resp.get("ok"):
                raise CrashDrillError(f"ingest {k} refused: {resp}")
            acked = int(resp["epoch"])
    finally:
        # SIGKILL immediately after the last ack: anything acknowledged
        # must survive, and nothing unacknowledged is in flight
        victim.sigkill()
    orphans_after_crash = len(list_orphan_segments())

    survivor = _ServeProcess(cli_args)
    try:
        health = survivor.request({"op": "health"})
        if not health.get("ok"):
            raise CrashDrillError(f"health op failed: {health}")
        recovered = int(health.get("epochs", {}).get(graph, 0))
        reference = _reference_summaries(
            graph, scale, n_snapshots, recovered, algos, source
        )
        parity: dict[str, bool] = {}
        for algo_name in algos:
            resp = survivor.request(
                {"op": "query", "graph": graph, "algo": algo_name,
                 "source": source}
            )
            parity[algo_name] = bool(
                resp.get("ok")
                and int(resp.get("epoch", -1)) == recovered
                and _digests_match(
                    resp.get("snapshots", []), reference[algo_name]
                )
            )
        wal_recovery = health.get("wal", {}).get("recovery", {})
    finally:
        survivor.shutdown()

    return DrillReport(
        graph=graph,
        crash_at_epoch=crash_at_epoch,
        acked_epoch=acked,
        recovered_epoch=recovered,
        parity=parity,
        wal_recovery=wal_recovery,
        orphans_after_crash=orphans_after_crash,
        orphan_segments=list_orphan_segments(),
        elapsed_s=time.monotonic() - t0,
    )
