"""Kill-and-recover drill: SIGKILL the service mid-stream, replay the WAL.

The durability contract is only worth having if it survives the real
failure mode, so the drill runs the service as a *separate process*
(`mega-repro serve` on pipes), ingests seeded deltas until a chosen
epoch is acknowledged, and SIGKILLs it — no atexit handlers, no flush,
exactly what a crashed coordinator looks like.  It then restarts the
service on the same ``--wal-dir`` and asserts:

* **zero acknowledged-delta loss** — the recovered epoch equals the last
  epoch the dead process acknowledged;
* **result parity** — for every registry algorithm, query digests from
  the recovered service equal an uninterrupted in-process replay of the
  same seeded ingest chain (seeded synthesis is deterministic given the
  epoch state, so the reference is exact);
* **zero orphaned shared-memory segments** — the killed coordinator
  cannot unlink its scenario-plane segments, so the restarted service
  must sweep them (and clean up its own on shutdown): after the drill,
  ``/dev/shm`` holds no ``megashm-*`` segment owned by a dead process.

``mega-repro serve-bench --crash-at-epoch N`` runs this and exits
non-zero on any loss or mismatch; CI smokes it at tiny scale.

**Failover drill** (``serve-bench --failover-at-epoch N``,
:func:`run_failover_drill`): the same SIGKILL, but with a live read
replica tailing the primary's WAL.  Instead of restarting the victim,
the drill *promotes* the follower — replay to the WAL tip, write a new
fencing token, accept ingest — then simulates the nastiest race: the
dead primary's ghost appending one more record with its stale token.
Asserted: zero acknowledged-epoch loss across the failover, parity on
every registry algorithm against an uninterrupted replay (including
epochs ingested *after* promotion), the zombie append detected and
quarantined (never applied), and zero orphaned shm segments.

Subprocess plumbing: the child's stdout goes to a temp *file*, not a
pipe — a pipe that fills while the parent is blocked elsewhere deadlocks
teardown — and every response read polls that file under an explicit
timeout, so a wedged child fails the drill instead of hanging it.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field

from repro.algorithms import ALGORITHMS, get_algorithm
from repro.service.shm import list_orphan_segments

__all__ = [
    "CrashDrillError",
    "DrillReport",
    "FailoverReport",
    "ShardKillReport",
    "run_crash_drill",
    "run_failover_drill",
    "run_shard_kill_drill",
]

#: per-exchange ceiling; far above any tiny/small-scale op
OP_TIMEOUT_S = 180.0


class CrashDrillError(RuntimeError):
    """The drill could not run (dead subprocess, protocol breakdown)."""


@dataclass
class DrillReport:
    """Outcome of one kill-and-recover drill."""

    graph: str
    crash_at_epoch: int
    acked_epoch: int
    recovered_epoch: int
    #: algorithm name -> digests matched the uninterrupted run
    parity: dict[str, bool] = field(default_factory=dict)
    wal_recovery: dict = field(default_factory=dict)
    #: shm segments the SIGKILL stranded (informational; the restart sweeps)
    orphans_after_crash: int = 0
    #: shm segments still orphaned when the drill finished (must be empty)
    orphan_segments: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def lost_deltas(self) -> int:
        return max(0, self.acked_epoch - self.recovered_epoch)

    @property
    def ok(self) -> bool:
        return (
            self.recovered_epoch == self.acked_epoch
            and bool(self.parity)
            and all(self.parity.values())
            and not self.orphan_segments
        )

    def format_table(self) -> str:
        lines = [
            f"== crash drill: SIGKILL {self.graph} at epoch "
            f"{self.crash_at_epoch}, recover from WAL ==",
            f"acknowledged epoch {self.acked_epoch}  "
            f"recovered epoch {self.recovered_epoch}  "
            f"lost acknowledged deltas {self.lost_deltas}",
        ]
        for algo, match in sorted(self.parity.items()):
            lines.append(
                f"  parity {algo:<8} "
                f"{'ok' if match else 'MISMATCH'}"
            )
        if self.wal_recovery:
            lines.append(f"wal recovery: {self.wal_recovery}")
        lines.append(
            f"shm segments: {self.orphans_after_crash} stranded by the "
            f"kill, {len(self.orphan_segments)} orphaned at drill end"
        )
        if self.orphan_segments:
            lines.append(f"  ORPHANS: {', '.join(self.orphan_segments)}")
        lines.append(
            f"verdict: {'PASS' if self.ok else 'FAIL'} "
            f"({self.elapsed_s:.1f}s)"
        )
        return "\n".join(lines)


class _ServeProcess:
    """One `mega-repro serve` child: JSON lines in on a pipe, out to a file.

    Responses stream to a temp file instead of a pipe: a pipe whose
    buffer fills while the parent is busy (or after the child dies with
    output pending) wedges ``wait()``/``readline()`` forever, which used
    to hang drill teardown.  A file never back-pressures the child, and
    the reader polls it under an explicit deadline.
    """

    def __init__(self, cli_args: list[str]) -> None:
        fd, self._out_path = tempfile.mkstemp(
            prefix="mega-drill-", suffix=".jsonl"
        )
        self._writer = os.fdopen(fd, "w")
        self._reader = open(self._out_path, "r")
        # own session/process group: a SIGKILL drill must take down the
        # child's forked pool workers too, not orphan them onto init
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", *cli_args],
            stdin=subprocess.PIPE,
            stdout=self._writer,
            stderr=subprocess.DEVNULL,
            text=True,
            start_new_session=True,
        )

    def _read_line(self, timeout: float = OP_TIMEOUT_S) -> str:
        """Next complete response line, polling the output file."""
        deadline = time.monotonic() + timeout
        while True:
            mark = self._reader.tell()
            line = self._reader.readline()
            if line.endswith("\n"):
                return line
            # partial line (child mid-write) or nothing yet: rewind
            self._reader.seek(mark)
            if self.proc.poll() is not None:
                return ""  # dead and drained
            if time.monotonic() >= deadline:
                raise CrashDrillError(
                    f"no response from serve process within {timeout:.0f}s"
                )
            time.sleep(0.01)

    def request(self, op: dict, timeout: float = OP_TIMEOUT_S) -> dict:
        if self.proc.poll() is not None:
            raise CrashDrillError(
                f"serve process exited early (rc={self.proc.returncode})"
            )
        self.proc.stdin.write(json.dumps(op) + "\n")
        self.proc.stdin.flush()
        line = self._read_line(timeout)
        if not line:
            raise CrashDrillError(
                "serve process closed stdout mid-session "
                f"(rc={self.proc.poll()})"
            )
        return json.loads(line)

    def _close_files(self) -> None:
        for fh in (self._writer, self._reader):
            try:
                fh.close()
            except OSError:  # pragma: no cover - already closed
                pass
        try:
            os.unlink(self._out_path)
        except FileNotFoundError:  # pragma: no cover - raced cleanup
            pass

    def _killpg(self) -> None:
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except ProcessLookupError:  # pragma: no cover - group already gone
            pass

    def sigkill(self) -> None:
        self._killpg()
        self.proc.wait(timeout=30)
        try:
            self.proc.stdin.close()
        except OSError:  # pragma: no cover - pipe already broken
            pass
        self._close_files()

    def shutdown(self) -> None:
        try:
            self.request({"op": "shutdown"})
        finally:
            try:
                self.proc.stdin.close()
            except OSError:
                pass
            try:
                self.proc.wait(timeout=OP_TIMEOUT_S)
            except subprocess.TimeoutExpired:
                # a wedged child must fail loudly, not hang the drill
                self._killpg()
                self.proc.wait(timeout=30)
            self._close_files()


def _reference_summaries(
    graph: str, scale: str, n_snapshots: int, epochs: int,
    algos: list[str], source: int,
) -> dict[str, list[dict]]:
    """Uninterrupted replay: the digests a crash-free run would serve."""
    from repro.core.multi_query import evaluate_multi_query
    from repro.experiments.runner import scenario_cache
    from repro.service.ingest import apply_delta, synthesize_delta
    from repro.service.pool import _summarize

    scenario = scenario_cache(graph, scale, n_snapshots=n_snapshots)
    for k in range(1, epochs + 1):
        scenario = apply_delta(
            scenario, synthesize_delta(scenario, seed=k)
        )
    out: dict[str, list[dict]] = {}
    for algo_name in algos:
        algorithm = get_algorithm(algo_name)
        mq = evaluate_multi_query(scenario, algorithm, [source])
        out[algo_name] = [
            _summarize(algorithm, mq.values(0, k), k).as_dict()
            for k in range(scenario.n_snapshots)
        ]
    return out


def _digests_match(got: list[dict], want: list[dict]) -> bool:
    if len(got) != len(want):
        return False
    for g, w in zip(got, want):
        if g["snapshot"] != w["snapshot"] or g["reached"] != w["reached"]:
            return False
        if abs(g["checksum"] - w["checksum"]) > 1e-6 * max(
            1.0, abs(w["checksum"])
        ):
            return False
    return True


def run_crash_drill(
    wal_dir: str,
    crash_at_epoch: int = 2,
    graph: str = "PK",
    scale: str = "tiny",
    n_snapshots: int = 4,
    workers: int = 1,
    algos: list[str] | None = None,
    source: int = 1,
) -> DrillReport:
    """SIGKILL a serving process after ``crash_at_epoch`` acknowledged
    ingests, restart it on the same WAL, and check loss + parity."""
    if crash_at_epoch < 1:
        raise ValueError("--crash-at-epoch must be >= 1")
    algos = algos if algos else sorted(a.lower() for a in ALGORITHMS)
    t0 = time.monotonic()
    cli_args = [
        "--scale", scale,
        "--snapshots", str(n_snapshots),
        "--workers", str(workers),
        "--graphs", graph,
        "--wal-dir", wal_dir,
    ]

    victim = _ServeProcess(cli_args)
    acked = 0
    try:
        # serve a real query first so the kill lands on a warmed service
        # (worker caches populated, plan path exercised), not a blank one
        victim.request(
            {"op": "query", "graph": graph, "algo": algos[0],
             "source": source}
        )
        for k in range(1, crash_at_epoch + 1):
            resp = victim.request({"op": "ingest", "graph": graph, "seed": k})
            if not resp.get("ok"):
                raise CrashDrillError(f"ingest {k} refused: {resp}")
            acked = int(resp["epoch"])
    finally:
        # SIGKILL immediately after the last ack: anything acknowledged
        # must survive, and nothing unacknowledged is in flight
        victim.sigkill()
    orphans_after_crash = len(list_orphan_segments())

    survivor = _ServeProcess(cli_args)
    try:
        health = survivor.request({"op": "health"})
        if not health.get("ok"):
            raise CrashDrillError(f"health op failed: {health}")
        recovered = int(health.get("epochs", {}).get(graph, 0))
        reference = _reference_summaries(
            graph, scale, n_snapshots, recovered, algos, source
        )
        parity: dict[str, bool] = {}
        for algo_name in algos:
            resp = survivor.request(
                {"op": "query", "graph": graph, "algo": algo_name,
                 "source": source}
            )
            parity[algo_name] = bool(
                resp.get("ok")
                and int(resp.get("epoch", -1)) == recovered
                and _digests_match(
                    resp.get("snapshots", []), reference[algo_name]
                )
            )
        wal_recovery = health.get("wal", {}).get("recovery", {})
    finally:
        survivor.shutdown()

    return DrillReport(
        graph=graph,
        crash_at_epoch=crash_at_epoch,
        acked_epoch=acked,
        recovered_epoch=recovered,
        parity=parity,
        wal_recovery=wal_recovery,
        orphans_after_crash=orphans_after_crash,
        orphan_segments=list_orphan_segments(),
        elapsed_s=time.monotonic() - t0,
    )


# ---------------------------------------------------------------------------
# failover drill: kill the primary, promote the follower
# ---------------------------------------------------------------------------


@dataclass
class FailoverReport:
    """Outcome of one kill-the-primary / promote-the-follower drill."""

    graph: str
    failover_at_epoch: int
    #: last epoch the primary acknowledged before the SIGKILL
    acked_epoch: int
    #: follower's epoch the moment it was promoted (must equal acked)
    promoted_epoch: int
    #: epochs ingested on the new primary after promotion
    post_promote_ingests: int
    #: epoch served at drill end (acked + post_promote_ingests)
    final_epoch: int
    old_fence_token: int = 0
    new_fence_token: int = 0
    #: the simulated zombie append was skipped by the tailing read AND
    #: quarantined by the next full recovery — never applied
    zombie_fenced: bool = False
    #: epoch after the zombie append (must still be final_epoch)
    epoch_after_zombie: int = 0
    #: algorithm name -> digests matched an uninterrupted replay
    parity: dict[str, bool] = field(default_factory=dict)
    replication: dict = field(default_factory=dict)
    orphans_after_kill: int = 0
    orphan_segments: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def lost_deltas(self) -> int:
        return max(0, self.acked_epoch - self.promoted_epoch)

    @property
    def ok(self) -> bool:
        return (
            self.promoted_epoch == self.acked_epoch
            and self.final_epoch
            == self.acked_epoch + self.post_promote_ingests
            and self.epoch_after_zombie == self.final_epoch
            and self.zombie_fenced
            and self.new_fence_token > self.old_fence_token
            and bool(self.parity)
            and all(self.parity.values())
            and not self.orphan_segments
        )

    def to_json(self) -> str:
        from repro.service.loadgen import BENCH_SCHEMA_VERSION

        return json.dumps(
            {
                "bench": "service",
                "schema_version": BENCH_SCHEMA_VERSION,
                "drill": "failover",
                "graph": self.graph,
                "failover_at_epoch": self.failover_at_epoch,
                "results": {
                    "ok": self.ok,
                    "acked_epoch": self.acked_epoch,
                    "promoted_epoch": self.promoted_epoch,
                    "lost_deltas": self.lost_deltas,
                    "post_promote_ingests": self.post_promote_ingests,
                    "final_epoch": self.final_epoch,
                    "epoch_after_zombie": self.epoch_after_zombie,
                    "zombie_fenced": self.zombie_fenced,
                    "old_fence_token": self.old_fence_token,
                    "new_fence_token": self.new_fence_token,
                    "parity": dict(sorted(self.parity.items())),
                    "replication": self.replication,
                    "orphans_after_kill": self.orphans_after_kill,
                    "orphan_segments": self.orphan_segments,
                    "elapsed_s": round(self.elapsed_s, 3),
                },
            },
            indent=2,
            sort_keys=True,
        )

    def format_table(self) -> str:
        lines = [
            f"== failover drill: SIGKILL primary of {self.graph} at epoch "
            f"{self.failover_at_epoch}, promote the follower ==",
            f"acknowledged epoch {self.acked_epoch}  "
            f"promoted at epoch {self.promoted_epoch}  "
            f"lost acknowledged deltas {self.lost_deltas}",
            f"fencing token {self.old_fence_token} -> "
            f"{self.new_fence_token}  zombie append "
            f"{'fenced' if self.zombie_fenced else 'NOT FENCED'}  "
            f"epoch after zombie {self.epoch_after_zombie}",
            f"post-promotion ingests {self.post_promote_ingests}  "
            f"final epoch {self.final_epoch}",
        ]
        for algo, match in sorted(self.parity.items()):
            lines.append(
                f"  parity {algo:<8} {'ok' if match else 'MISMATCH'}"
            )
        lines.append(
            f"shm segments: {self.orphans_after_kill} stranded by the "
            f"kill, {len(self.orphan_segments)} orphaned at drill end"
        )
        if self.orphan_segments:
            lines.append(f"  ORPHANS: {', '.join(self.orphan_segments)}")
        lines.append(
            f"verdict: {'PASS' if self.ok else 'FAIL'} "
            f"({self.elapsed_s:.1f}s)"
        )
        return "\n".join(lines)


def run_failover_drill(
    wal_dir: str,
    failover_at_epoch: int = 3,
    graph: str = "PK",
    scale: str = "tiny",
    n_snapshots: int = 4,
    workers: int = 1,
    algos: list[str] | None = None,
    source: int = 1,
    post_promote_ingests: int = 2,
    catchup_timeout_s: float = 60.0,
) -> FailoverReport:
    """Kill the serving primary mid-ingest and promote a live follower.

    The primary runs as a separate ``mega-repro serve`` process on
    ``wal_dir``; the follower is an in-process
    :class:`~repro.service.replica.ReplicaServer` tailing the same
    directory.  After ``failover_at_epoch`` acknowledged ingests the
    primary is SIGKILLed, the follower is promoted, a zombie append with
    the dead primary's fencing token is injected, and the new primary
    ingests ``post_promote_ingests`` more epochs.  Parity is asserted
    against an uninterrupted from-scratch replay of the full seeded
    chain on every requested algorithm.
    """
    from repro.service.core import ServiceConfig
    from repro.service.replica import ReplicaServer
    from repro.service.request import QueryRequest
    from repro.service.wal import (
        WriteAheadLog,
        current_fence_token,
        read_from,
        recover_wal,
    )

    if failover_at_epoch < 1:
        raise ValueError("--failover-at-epoch must be >= 1")
    algos = algos if algos else sorted(a.lower() for a in ALGORITHMS)
    t0 = time.monotonic()
    cli_args = [
        "--scale", scale,
        "--snapshots", str(n_snapshots),
        "--workers", str(workers),
        "--graphs", graph,
        "--wal-dir", wal_dir,
    ]

    primary = _ServeProcess(cli_args)
    replica = None
    acked = 0
    try:
        # a real query first so the kill lands on a warmed primary
        primary.request(
            {"op": "query", "graph": graph, "algo": algos[0],
             "source": source}
        )
        old_token = current_fence_token(wal_dir)
        replica = ReplicaServer(
            wal_dir,
            ServiceConfig(
                scale=scale, n_snapshots=n_snapshots, workers=workers
            ),
            follower_id="drill-follower",
        ).start()
        for k in range(1, failover_at_epoch + 1):
            resp = primary.request(
                {"op": "ingest", "graph": graph, "seed": k}
            )
            if not resp.get("ok"):
                raise CrashDrillError(f"ingest {k} refused: {resp}")
            acked = int(resp["epoch"])
        # the follower must observe every acknowledged epoch before the
        # kill — replication lag drains to zero under the timeout guard
        deadline = time.monotonic() + catchup_timeout_s
        while replica.service.epoch(graph) < acked:
            if time.monotonic() >= deadline:
                raise CrashDrillError(
                    f"follower stuck at epoch "
                    f"{replica.service.epoch(graph)} < {acked} after "
                    f"{catchup_timeout_s:.0f}s"
                )
            time.sleep(0.01)
        # lag must have been *observable* while replicating
        health = primary.request({"op": "health"})
        replication = {
            "followers_seen_by_primary": list(
                health.get("followers", {})
            ),
            "follower_health": replica.health(),
        }
    except BaseException:
        if replica is not None:
            replica.stop(drain=False)
        raise
    finally:
        # SIGKILL right after the last ack: everything acknowledged must
        # survive the failover, nothing unacknowledged is in flight
        primary.sigkill()
    orphans_after_kill = len(list_orphan_segments())

    try:
        new_token = replica.promote()
        promoted_epoch = replica.service.epoch(graph)

        # the nastiest race: the dead primary's ghost appends one more
        # record with its stale token — it must be skipped by every
        # read and quarantined by the next recovery, never applied
        zombie = WriteAheadLog(wal_dir, fence_token=old_token)
        zombie.append(
            {
                "op": "ingest",
                "graph": graph,
                "epoch": promoted_epoch + 1,
                "delta": {"adds": [[0, 1, 1.0]], "dels": []},
            }
        )
        zombie.close()
        zombie_read_fenced = read_from(wal_dir).fenced >= 1

        final_epoch = promoted_epoch
        for k in range(1, post_promote_ingests + 1):
            final_epoch = replica.service.ingest(graph, seed=acked + k)
        epoch_after_zombie = replica.service.epoch(graph)

        reference = _reference_summaries(
            graph, scale, n_snapshots, final_epoch, algos, source
        )
        parity: dict[str, bool] = {}
        for algo_name in algos:
            handle = replica.service.submit(
                QueryRequest(graph=graph, algo=algo_name, source=source)
            )
            resp = handle.wait(timeout=OP_TIMEOUT_S)
            parity[algo_name] = bool(
                resp is not None
                and resp.ok
                and resp.epoch == final_epoch
                and _digests_match(
                    [s.as_dict() for s in resp.summaries],
                    reference[algo_name],
                )
            )
        replication["promoted_health"] = replica.health()
    finally:
        replica.stop()

    # the quarantine half of the fencing contract: a full recovery of
    # the directory detects the zombie record and quarantines it, and
    # replaying the WAL from scratch reproduces exactly the final epoch
    recovery = recover_wal(wal_dir)
    zombie_quarantined = recovery.fenced >= 1
    replication["final_recovery"] = recovery.summary()

    return FailoverReport(
        graph=graph,
        failover_at_epoch=failover_at_epoch,
        acked_epoch=acked,
        promoted_epoch=promoted_epoch,
        post_promote_ingests=post_promote_ingests,
        final_epoch=final_epoch,
        old_fence_token=old_token,
        new_fence_token=new_token,
        zombie_fenced=zombie_read_fenced and zombie_quarantined,
        epoch_after_zombie=epoch_after_zombie,
        parity=parity,
        replication=replication,
        orphans_after_kill=orphans_after_kill,
        orphan_segments=list_orphan_segments(),
        elapsed_s=time.monotonic() - t0,
    )


# ---------------------------------------------------------------------------
# shard kill drill: kill one shard's workers, then the fleet, recover per-WAL
# ---------------------------------------------------------------------------


@dataclass
class ShardKillReport:
    """Outcome of one shard-fleet kill-and-recover drill."""

    graph: str
    n_shards: int
    victim_shard: int
    crash_at_epoch: int
    acked_epoch: int
    #: victim-shard worker processes SIGKILLed mid-serving (phase 1)
    workers_killed: int
    #: a query served through the worker kill (retry + pool restart)
    served_through_kill: bool
    #: victim shard's pool restarts observed after the worker kill
    victim_pool_restarts: int
    #: front-end epoch after the whole-fleet SIGKILL + restart (phase 2)
    recovered_epoch: int = 0
    #: shard id -> epoch that shard recovered from its own WAL
    shard_epochs: dict[int, int] = field(default_factory=dict)
    #: algorithm name -> digests matched the uninterrupted replay
    parity: dict[str, bool] = field(default_factory=dict)
    orphans_after_crash: int = 0
    orphan_segments: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def lost_deltas(self) -> int:
        return max(0, self.acked_epoch - self.recovered_epoch)

    @property
    def ok(self) -> bool:
        return (
            self.recovered_epoch == self.acked_epoch
            and all(
                e == self.acked_epoch for e in self.shard_epochs.values()
            )
            and self.served_through_kill
            and self.victim_pool_restarts >= 1
            and bool(self.parity)
            and all(self.parity.values())
            and not self.orphan_segments
        )

    def format_table(self) -> str:
        lines = [
            f"== shard kill drill: {self.n_shards} shards of {self.graph}, "
            f"SIGKILL shard {self.victim_shard}'s workers at epoch "
            f"{self.crash_at_epoch}, then the fleet; recover per-shard "
            f"WALs ==",
            f"acknowledged epoch {self.acked_epoch}  "
            f"recovered epoch {self.recovered_epoch}  "
            f"lost acknowledged deltas {self.lost_deltas}",
            f"victim workers killed {self.workers_killed}  "
            f"served through kill "
            f"{'yes' if self.served_through_kill else 'NO'}  "
            f"pool restarts {self.victim_pool_restarts}",
            "per-shard recovered epochs: "
            + "  ".join(
                f"shard {i}={e}" for i, e in sorted(self.shard_epochs.items())
            ),
        ]
        for algo, match in sorted(self.parity.items()):
            lines.append(
                f"  parity {algo:<8} {'ok' if match else 'MISMATCH'}"
            )
        lines.append(
            f"shm segments: {self.orphans_after_crash} stranded by the "
            f"kill, {len(self.orphan_segments)} orphaned at drill end"
        )
        if self.orphan_segments:
            lines.append(f"  ORPHANS: {', '.join(self.orphan_segments)}")
        lines.append(
            f"verdict: {'PASS' if self.ok else 'FAIL'} "
            f"({self.elapsed_s:.1f}s)"
        )
        return "\n".join(lines)


def _query_with_retries(
    proc: _ServeProcess, op: dict, attempts: int = 4, pause_s: float = 0.25
) -> dict:
    """Cooperative-client retry loop for a drill query.

    A worker kill races the pool's broken-executor detection: the first
    plan after the kill can fail terminally before the restart lands, so
    the drill retries the query the way the load generator's client
    would, instead of treating one raced attempt as the verdict.
    """
    resp: dict = {}
    for _ in range(attempts):
        resp = proc.request(op)
        if resp.get("ok"):
            return resp
        time.sleep(pause_s)
    return resp


def run_shard_kill_drill(
    wal_root: str,
    n_shards: int = 2,
    victim_shard: int = 0,
    crash_at_epoch: int = 2,
    graph: str = "PK",
    scale: str = "tiny",
    n_snapshots: int = 4,
    workers: int = 1,
    algos: list[str] | None = None,
    source: int = 1,
) -> ShardKillReport:
    """Two-phase kill drill against a sharded ``serve --shards N`` child.

    Phase 1 SIGKILLs every worker process of one shard while the fleet
    is serving: the shard's pool must restart and the front end's plan
    retry must serve the in-flight query anyway.  Phase 2 SIGKILLs the
    whole serve child's session (taking down every shard's workers at
    once, mid-stream), restarts it on the same ``--wal-dir`` root, and
    asserts every shard recovered exactly the acknowledged epoch from
    **its own** WAL directory — the all-fsync ack barrier means no shard
    may come back short — plus query parity on every registry algorithm
    against an uninterrupted replay.
    """
    if crash_at_epoch < 1:
        raise ValueError("--shard-kill-at-epoch must be >= 1")
    if n_shards < 2:
        raise ValueError("the shard kill drill needs --shards >= 2")
    if not 0 <= victim_shard < n_shards:
        raise ValueError(f"victim shard must be in [0, {n_shards})")
    algos = algos if algos else sorted(a.lower() for a in ALGORITHMS)
    t0 = time.monotonic()
    cli_args = [
        "--scale", scale,
        "--snapshots", str(n_snapshots),
        "--workers", str(workers),
        "--graphs", graph,
        "--wal-dir", wal_root,
        "--shards", str(n_shards),
    ]

    victim_proc = _ServeProcess(cli_args)
    acked = 0
    workers_killed = 0
    served_through_kill = False
    victim_pool_restarts = 0
    try:
        # warm the fleet first: the kill must land on populated worker
        # caches and an exercised scatter path, not a blank service
        victim_proc.request(
            {"op": "query", "graph": graph, "algo": algos[0],
             "source": source}
        )
        for k in range(1, crash_at_epoch + 1):
            resp = victim_proc.request(
                {"op": "ingest", "graph": graph, "seed": k}
            )
            if not resp.get("ok"):
                raise CrashDrillError(f"ingest {k} refused: {resp}")
            acked = int(resp["epoch"])

        health = victim_proc.request({"op": "health"})
        entries = {
            e["shard"]: e
            for e in health.get("sharding", {}).get("shards", [])
        }
        if victim_shard not in entries:
            raise CrashDrillError(
                f"health reports no shard {victim_shard}: {sorted(entries)}"
            )
        for pid in entries[victim_shard]["worker_pids"]:
            try:
                os.kill(pid, signal.SIGKILL)
                workers_killed += 1
            except ProcessLookupError:  # pragma: no cover - raced exit
                pass
        resp = _query_with_retries(
            victim_proc,
            {"op": "query", "graph": graph, "algo": algos[0],
             "source": source},
        )
        served_through_kill = bool(resp.get("ok"))
        health = victim_proc.request({"op": "health"})
        for e in health.get("sharding", {}).get("shards", []):
            if e["shard"] == victim_shard:
                victim_pool_restarts = int(e["pool_restarts"])
    finally:
        # phase 2: SIGKILL the whole session right after the last ack —
        # every shard dies mid-stream with its WAL as the only survivor
        victim_proc.sigkill()
    orphans_after_crash = len(list_orphan_segments())

    survivor = _ServeProcess(cli_args)
    try:
        health = survivor.request({"op": "health"})
        if not health.get("ok"):
            raise CrashDrillError(f"health op failed: {health}")
        recovered = int(health.get("epochs", {}).get(graph, 0))
        shard_epochs = {
            int(e["shard"]): int(e["epochs"].get(graph, 0))
            for e in health.get("sharding", {}).get("shards", [])
        }
        reference = _reference_summaries(
            graph, scale, n_snapshots, recovered, algos, source
        )
        parity: dict[str, bool] = {}
        for algo_name in algos:
            resp = survivor.request(
                {"op": "query", "graph": graph, "algo": algo_name,
                 "source": source}
            )
            parity[algo_name] = bool(
                resp.get("ok")
                and int(resp.get("epoch", -1)) == recovered
                and _digests_match(
                    resp.get("snapshots", []), reference[algo_name]
                )
            )
    finally:
        survivor.shutdown()

    return ShardKillReport(
        graph=graph,
        n_shards=n_shards,
        victim_shard=victim_shard,
        crash_at_epoch=crash_at_epoch,
        acked_epoch=acked,
        workers_killed=workers_killed,
        served_through_kill=served_through_kill,
        victim_pool_restarts=victim_pool_restarts,
        recovered_epoch=recovered,
        shard_epochs=shard_epochs,
        parity=parity,
        orphans_after_crash=orphans_after_crash,
        orphan_segments=list_orphan_segments(),
        elapsed_s=time.monotonic() - t0,
    )
