"""The query service: admission → coalescing → worker pool → responses.

Dataflow (docs/SERVICE.md has the full picture)::

    submit() ──► AdmissionQueue ──► batcher thread ──► WorkerPool
       │cache hit                      │coalesce()        │ProcessPool
       ▼                               ▼                  ▼
    cached response            PlanPayload per plan   PlanResult
                                                         │done callback
                         responses + ResultCache  ◄──────┘

Degradation policy: a failed multi-query plan is split and each of its
queries retried as a singleton plan (without any armed fault, and only
once); a failed singleton yields an ``error`` response.  Either way the
pool, the other in-flight plans, and later traffic are unaffected.

``ingest()`` appends a delta batch to a graph's log, bumps its epoch, and
invalidates that graph's cache entries; queries already in flight complete
against the epoch they were admitted under (their responses say which).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.service.batcher import AdmissionQueue, PendingQuery, coalesce
from repro.service.cache import ResultCache
from repro.service.ingest import DeltaBatch, synthesize_delta
from repro.service.pool import PlanPayload, PlanResult, WorkerPool
from repro.service.request import QueryRequest, QueryResponse, validate_request

__all__ = ["ServiceConfig", "ServiceStats", "QueryService"]


@dataclass
class ServiceConfig:
    """Knobs for one service instance (CLI flags map 1:1)."""

    scale: str = "tiny"
    n_snapshots: int = 8
    workers: int = 2
    batching: bool = True
    max_batch: int = 8
    coalesce_ms: float = 4.0
    max_pending: int = 4096
    cache_size: int = 512
    budget_s: float = 60.0
    mode: str = "eval"
    #: arm these fault points on plan ordinal ``inject_fault_plan``
    inject_fault: tuple[str, ...] = ()
    inject_fault_plan: int = 0
    fault_seed: int = 0


@dataclass
class ServiceStats:
    """Monotonic counters; ``snapshot()`` renders the derived rates."""

    submitted: int = 0
    completed: int = 0
    cached: int = 0
    errored: int = 0
    rejected: int = 0
    plans: int = 0
    plan_queries: int = 0
    retries: int = 0
    faults_recovered: int = 0
    ingests: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def snapshot(self, cache_stats: dict) -> dict:
        with self.lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "cached": self.cached,
                "errored": self.errored,
                "rejected": self.rejected,
                "plans": self.plans,
                "plan_queries": self.plan_queries,
                "batching_factor": (
                    self.plan_queries / self.plans if self.plans else 0.0
                ),
                "retries": self.retries,
                "faults_recovered": self.faults_recovered,
                "ingests": self.ingests,
                "cache": cache_stats,
            }


class _LiveGraph:
    """Coordinator-side state of one evolving graph: its ingest log."""

    def __init__(self) -> None:
        self.deltas: list[DeltaBatch] = []

    @property
    def epoch(self) -> int:
        return len(self.deltas)


class QueryService:
    """Concurrent evolving-graph query service over a process pool."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.stats = ServiceStats()
        self.cache = ResultCache(self.config.cache_size)
        self.queue = AdmissionQueue(self.config.max_pending)
        # warm the pool before the batcher thread exists so every worker
        # is forked from a single-threaded coordinator
        self.pool = WorkerPool(self.config.workers)
        self._graphs: dict[str, _LiveGraph] = {}
        self._graphs_lock = threading.Lock()
        self._inflight: set[int] = set()
        self._inflight_lock = threading.Lock()
        self._plan_ids = iter(range(1, 1 << 62))
        self._running = False
        self._thread: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "QueryService":
        if self._running:
            return self
        self._running = True
        self._thread = threading.Thread(
            target=self._batch_loop, name="mega-batcher", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        if drain:
            self.drain(timeout)
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.pool.shutdown()

    def drain(self, timeout: float = 60.0) -> bool:
        """Block until the queue and all in-flight plans are empty."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._inflight_lock:
                busy = bool(self._inflight)
            if not busy and len(self.queue) == 0:
                return True
            time.sleep(0.01)
        return False

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- client surface ----------------------------------------------------

    def epoch(self, graph: str) -> int:
        with self._graphs_lock:
            return self._graphs.setdefault(graph, _LiveGraph()).epoch

    def submit(self, request: QueryRequest) -> PendingQuery:
        """Admit one query; returns a handle to ``wait()`` on.

        Terminal immediately on validation error, cache hit, or admission
        overflow — only genuinely new work enters the queue.
        """
        epoch = self.epoch(request.graph)
        pending = PendingQuery(request, epoch)
        with self.stats.lock:
            self.stats.submitted += 1
        try:
            validate_request(
                request, self.config.n_snapshots, self.config.scale
            )
        except ValueError as exc:
            with self.stats.lock:
                self.stats.errored += 1
            pending.resolve(
                QueryResponse(request.id, "error", epoch=epoch, error=str(exc))
            )
            return pending

        summaries = self.cache.get(request, epoch)
        if summaries is not None:
            with self.stats.lock:
                self.stats.cached += 1
                self.stats.completed += 1
            pending.resolve(
                QueryResponse(
                    request.id, "cached", epoch=epoch, summaries=summaries
                )
            )
            return pending

        if not self.queue.offer(pending):
            with self.stats.lock:
                self.stats.rejected += 1
            pending.resolve(
                QueryResponse(
                    request.id,
                    "rejected",
                    epoch=epoch,
                    error="admission queue full (load shed)",
                )
            )
        return pending

    def ingest(
        self,
        graph: str,
        delta: DeltaBatch | None = None,
        seed: int | None = None,
        n_add: int = 8,
        n_del: int = 8,
    ) -> int:
        """Append ``Δ+/Δ-``, advance the graph's window, drop stale cache.

        Either pass an explicit :class:`DeltaBatch` or a ``seed`` to
        synthesize one from the graph's current epoch state.  Returns the
        new epoch.
        """
        with self._graphs_lock:
            live = self._graphs.setdefault(graph, _LiveGraph())
            if delta is None:
                if seed is None:
                    raise ValueError("ingest needs a DeltaBatch or a seed")
                # synthesize against the current live scenario so the
                # delta respects the CommonGraph rule at this epoch
                from repro.service.pool import _live_scenario

                scenario = _live_scenario(
                    PlanPayload(
                        plan_id=0,
                        graph=graph,
                        scale=self.config.scale,
                        n_snapshots=self.config.n_snapshots,
                        algo="",
                        sources=(),
                        epoch=live.epoch,
                        deltas=tuple(live.deltas),
                    )
                )
                delta = synthesize_delta(
                    scenario, seed=seed, n_add=n_add, n_del=n_del
                )
            live.deltas.append(delta)
            epoch = live.epoch
        self.cache.invalidate_graph(graph)
        with self.stats.lock:
            self.stats.ingests += 1
        return epoch

    def clear_caches(self) -> None:
        """Coordinator cache + best-effort worker-side clear."""
        self.cache.clear()
        self.pool.clear_caches()

    def service_stats(self) -> dict:
        return self.stats.snapshot(self.cache.stats())

    # -- batcher thread ----------------------------------------------------

    def _batch_loop(self) -> None:
        coalesce_s = max(self.config.coalesce_ms, 0.0) / 1e3
        while self._running:
            time.sleep(coalesce_s if coalesce_s > 0 else 0.0005)
            pending = self.queue.drain()
            if not pending:
                continue
            if self.config.batching:
                for plan in coalesce(pending, self.config.max_batch):
                    self._submit_plan(plan)
            else:
                # baseline: strictly one query per plan, no sharing at all
                for p in pending:
                    self._submit_plan([p])

    def _submit_plan(
        self, queries: list[PendingQuery], degraded: bool = False
    ) -> None:
        plan_id = next(self._plan_ids)
        first = queries[0].request
        epoch = queries[0].epoch
        with self._graphs_lock:
            deltas = tuple(
                self._graphs.setdefault(first.graph, _LiveGraph()).deltas[:epoch]
            )
        fault_points: tuple[str, ...] = ()
        if not degraded and self.config.inject_fault:
            with self.stats.lock:
                arm = self.stats.plans == self.config.inject_fault_plan
            if arm:
                fault_points = tuple(self.config.inject_fault)
        sources = tuple(dict.fromkeys(q.request.source for q in queries))
        payload = PlanPayload(
            plan_id=plan_id,
            graph=first.graph,
            scale=self.config.scale,
            n_snapshots=self.config.n_snapshots,
            algo=first.algo,
            sources=sources,
            window=first.window,
            mode=first.mode,
            epoch=epoch,
            deltas=deltas,
            budget_s=self.config.budget_s,
            fault_points=fault_points,
            fault_seed=self.config.fault_seed,
        )
        with self.stats.lock:
            self.stats.plans += 1
            self.stats.plan_queries += len(queries)
        with self._inflight_lock:
            self._inflight.add(plan_id)
        try:
            future = self.pool.submit(payload)
        except Exception as exc:  # pool unrecoverable: fail these queries
            self._plan_failed(plan_id, queries, exc)
            return
        future.add_done_callback(
            lambda fut, q=queries, pid=plan_id: self._on_plan_done(pid, q, fut)
        )

    # -- completion path (runs on executor callback threads) ---------------

    def _on_plan_done(self, plan_id: int, queries, future) -> None:
        try:
            result: PlanResult = future.result()
        except Exception as exc:  # noqa: BLE001 - plan-level isolation
            self._plan_failed(plan_id, queries, exc)
            return
        with self.stats.lock:
            self.stats.faults_recovered += len(result.recovered_faults)
            self.stats.completed += len(queries)
        for q in queries:
            summaries = result.summaries.get(q.request.source, [])
            self.cache.put(q.request, q.epoch, summaries)
            q.resolve(
                QueryResponse(
                    q.request.id,
                    "ok",
                    epoch=q.epoch,
                    plan_id=plan_id,
                    summaries=summaries,
                )
            )
        with self._inflight_lock:
            self._inflight.discard(plan_id)

    def _plan_failed(self, plan_id: int, queries, exc: BaseException) -> None:
        retryable = [q for q in queries if not q.retried]
        terminal = [q for q in queries if q.retried]
        for q in retryable:
            q.retried = True
        if retryable:
            with self.stats.lock:
                self.stats.retries += len(retryable)
            # degrade: one singleton plan per query, no armed faults
            for q in retryable:
                self._submit_plan([q], degraded=True)
        for q in terminal:
            with self.stats.lock:
                self.stats.errored += 1
            q.resolve(
                QueryResponse(
                    q.request.id,
                    "error",
                    epoch=q.epoch,
                    plan_id=plan_id,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
        with self._inflight_lock:
            self._inflight.discard(plan_id)
