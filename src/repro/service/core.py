"""The query service: admission → coalescing → worker pool → responses.

Dataflow (docs/SERVICE.md has the full picture)::

    submit() ──► AdmissionQueue ──► batcher thread ──► WorkerPool
       │cache hit                      │shed expired      │ProcessPool
       ▼                               │coalesce()        ▼
    cached response            PlanPayload per plan   PlanResult
                                                         │done callback
                         responses + ResultCache  ◄──────┘

Degradation policy: a failed multi-query plan is split and each of its
queries retried as a singleton plan (without any armed fault, and only
once); a failed singleton yields an ``error`` response.  Either way the
pool, the other in-flight plans, and later traffic are unaffected.

``ingest()`` appends a delta batch to a graph's log, bumps its epoch, and
invalidates that graph's cache entries; queries already in flight complete
against the epoch they were admitted under (their responses say which).

Durability: with a ``wal_dir`` configured, every delta is appended to a
:class:`~repro.service.wal.WriteAheadLog` **before** the ingest is
acknowledged, and :meth:`QueryService.start` replays the log (snapshot +
segments) to rebuild per-graph delta logs and epochs after a crash —
truncated tails and quarantined records are logged warnings, never
exceptions.  Periodic compaction snapshots the live delta logs through the
checkpoint layer's atomic writes so replay cost stays bounded.

Overload protection: queries carry optional deadlines; the batcher sheds
expired ones *before* plan construction with a ``retry_after`` hint sized
from the current queue depth and recent plan latency, so clients back off
instead of piling onto a saturated service.

Observability (docs/OBSERVABILITY.md): every query carries a
:class:`~repro.obs.trace.QueryTrace` span timeline (admit → queue-drain →
coalesce → plan-submit → worker → resolve) that its response reports as a
stage breakdown; every counter lives in a
:class:`~repro.obs.metrics.MetricsRegistry` rendered by the ``metrics``
op.  Two invariants the instrumentation enforces:

* a query is *always* accounted somewhere: the admission queue, the
  batcher's accepted-but-unplanned count, or an in-flight plan —
  :meth:`QueryService.drain` waits on all three, so ``stop(drain=True)``
  can never shut the pool down under acknowledged queries;
* a plan result that lacks one of its queries' sources resolves that
  query as an *error* and is never cached (counted in
  ``missing_source``), so the cache cannot serve a fabricated empty
  answer.
"""

from __future__ import annotations

import itertools
import logging
import re
import threading
import time
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import merge_profiles
from repro.perf.backend import requested_tier
from repro.resilience.faults import FaultPlan, Fire, maybe_fire, register_fault_point
from repro.service.batcher import (
    AdmissionQueue,
    PendingQuery,
    coalesce,
    split_expired,
)
from repro.service.cache import ResultCache
from repro.service.ingest import DeltaBatch, synthesize_delta
from repro.service.pool import PlanPayload, PlanResult, WorkerPool
from repro.service.request import QueryRequest, QueryResponse, validate_request
from repro.service.shm import (
    ScenarioManifest,
    ScenarioPlane,
    sweep_orphan_segments,
)
from repro.service.wal import (
    OP_INGEST,
    OP_SLIDE,
    WalRecovery,
    WriteAheadLog,
    advance_fence,
    current_fence_token,
    read_follower_cursors,
    read_from,
    recover_wal,
)

__all__ = [
    "COORDINATOR_FAULT_POINTS",
    "NotPrimaryError",
    "ReplicationGapError",
    "ServiceConfig",
    "ServiceStats",
    "SimulatedCrash",
    "QueryService",
    "parse_ack_mode",
]

log = logging.getLogger(__name__)

register_fault_point(
    "service.crash-on-ingest",
    "service/core.py",
    "the coordinator dies between the WAL append and the in-memory apply "
    "(worst-case crash point; recovery must replay the committed record)",
)

#: fault points that fire in the coordinator (ingest/WAL path) rather than
#: inside pool workers — ``ServiceConfig.inject_fault`` arms these locally
#: and never ships them with a plan payload
COORDINATOR_FAULT_POINTS = (
    "service.wal-torn-write",
    "service.wal-corrupt-record",
    "service.crash-on-ingest",
)

#: process-wide service ids: each QueryService owns a distinct delta
#: chain, keyed into the live-scenario cache via ``PlanPayload.chain``
_SERVICE_IDS = itertools.count(1)

#: quorum-ack cursor polling: start tight so fast followers ack with
#: minimal latency, double per miss, cap so long waits don't spin
_QUORUM_POLL_MIN_S = 0.001
_QUORUM_POLL_MAX_S = 0.05


class SimulatedCrash(RuntimeError):
    """Injected coordinator death mid-ingest (``service.crash-on-ingest``)."""


class NotPrimaryError(RuntimeError):
    """An ingest reached a follower: only the primary accepts writes.

    The front end maps this to a ``not_primary`` redirect response so
    clients re-aim their writes at the primary (docs/SERVICE.md,
    Replication).
    """

    def __init__(self, role: str, primary_wal_dir: str | None = None) -> None:
        self.role = role
        self.primary_wal_dir = primary_wal_dir
        hint = f" (primary WAL: {primary_wal_dir})" if primary_wal_dir else ""
        super().__init__(
            f"ingest refused: this node is a {role}, not the primary{hint}"
        )


class ReplicationGapError(RuntimeError):
    """A replicated epoch does not extend the follower's log contiguously.

    The tailer treats this as "the stream moved under me" (missed a
    compaction, skipped a damaged record) and re-syncs wholesale from the
    primary's snapshot — a follower must serve a *prefix* of the
    primary's epoch order, never an interpolation across a hole.
    """


_ACK_MODE_RE = re.compile(r"quorum(?::(\d+)|\((\d+)\))")


def parse_ack_mode(raw: str) -> tuple[str, int]:
    """Parse ``ServiceConfig.ack_mode`` into ``(mode, k)``.

    ``"local"`` -> ``("local", 0)``; ``"quorum:2"`` / ``"quorum(2)"`` ->
    ``("quorum", 2)``.  Raises ``ValueError`` for anything else — a typo
    in a durability knob must fail loudly at construction, not silently
    weaken acks.
    """
    s = str(raw).strip().lower()
    if s == "local":
        return ("local", 0)
    m = _ACK_MODE_RE.fullmatch(s)
    if m is not None:
        k = int(m.group(1) or m.group(2))
        if k >= 1:
            return ("quorum", k)
    raise ValueError(
        f"invalid ack_mode {raw!r}: expected 'local', 'quorum:k', or "
        "'quorum(k)' with k >= 1"
    )


@dataclass
class ServiceConfig:
    """Knobs for one service instance (CLI flags map 1:1)."""

    scale: str = "tiny"
    n_snapshots: int = 8
    workers: int = 2
    batching: bool = True
    max_batch: int = 8
    coalesce_ms: float = 4.0
    max_pending: int = 4096
    cache_size: int = 512
    budget_s: float = 60.0
    mode: str = "eval"
    #: publish live scenarios into shared memory so workers attach
    #: zero-copy instead of replaying the ingest log (CLI ``--no-shm``
    #: restores the copy path)
    use_shm: bool = True
    #: durable ingest: WAL directory (None = in-memory only, PR-2 behavior)
    wal_dir: str | None = None
    #: "always" | "batch" | "never" — fsync per append / periodically / OS
    wal_fsync: str = "always"
    wal_segment_bytes: int = 4 * 1024 * 1024
    #: snapshot + drop segments every N ingests (0 = never compact)
    wal_compact_every: int = 0
    #: sample the engine's per-round kernel timings every N rounds inside
    #: workers (0 = off); aggregates surface in the bench report
    profile_rounds: int = 0
    #: arm these fault points on plan ordinal ``inject_fault_plan``
    inject_fault: tuple[str, ...] = ()
    inject_fault_plan: int = 0
    fault_seed: int = 0
    #: which shard this service is, when it runs as one member of a
    #: :class:`repro.service.sharding.ShardManager` fleet (-1 = not
    #: sharded); surfaces in health and shard-labeled metrics
    shard_id: int = -1
    #: ingest acknowledgement policy: ``"local"`` acks after the local
    #: WAL fsync (PR-6 behavior); ``"quorum:k"`` (or ``"quorum(k)"``)
    #: additionally holds the ack until k followers report the epoch
    #: durable in their acked-position cursors
    ack_mode: str = "local"
    #: how long a quorum ack may wait before degrading (the response is
    #: marked ``degraded`` — never silent loss, never an unbounded stall)
    quorum_timeout_s: float = 5.0
    #: this node's id when supervised as a cluster member
    #: (``serve --cluster N --node-id ...``); beacon/cursor file name
    node_id: str = ""
    #: expected cluster size, 0 = not cluster-supervised (informational:
    #: surfaces in health; membership itself is whoever beacons)
    cluster: int = 0
    #: kernel backend the pool workers must resolve
    #: (auto|numpy|compiled|numba|cext; "" defers to each worker's
    #: MEGA_KERNEL_BACKEND / auto).  Workers report the tier they
    #: actually resolved — health and mega_kernel_backend expose it
    kernel_backend: str = ""
    #: fold a window-slide checkpoint every N ingests (0 = off).  Every
    #: ingest already slides the serving window by one snapshot; the
    #: checkpoint cadence additionally writes a WAL slide record, rewrites
    #: compaction state across the slide, eagerly republishes the shm
    #: generation (retiring the previous one), and — whenever sliding is
    #: on — workers serve full-window eval queries incrementally from
    #: cached WindowServers with stable-vertex reuse, and the result
    #: cache re-keys window entries across the slide instead of dropping
    #: them (docs/SERVICE.md, Sliding-window serving)
    window_slide_every: int = 0


#: counter name -> help text; the registry names are
#: ``mega_service_<name>_total``
_COUNTER_HELP = {
    "submitted": "queries accepted by submit()",
    "completed": "queries resolved ok (including cache hits)",
    "cached": "queries answered from the result cache",
    "errored": "queries resolved as errors",
    "rejected": "queries shed at admission (queue full)",
    "shed": "queries shed on deadline expiry before execution",
    "plans": "coalesced BOE plans submitted to the pool",
    "plan_queries": "queries riding those plans",
    "scatter_plans": "scatter sub-plans shipped to this shard's pool",
    "retries": "queries resubmitted as degraded singletons",
    "faults_recovered": "injected faults recovered inside workers",
    "ingests": "delta batches ingested",
    "drain_timeouts": "stop(drain=True) calls that timed out",
    "wal_records": "records appended to the write-ahead log",
    "wal_compactions": "WAL compactions performed",
    "replicated": "delta batches applied from the primary's WAL (follower)",
    "not_primary": "ingests refused with a not_primary redirect",
    "quorum_acks": "ingests acknowledged with the follower quorum met",
    "degraded_acks": (
        "quorum-mode ingests acknowledged degraded (quorum_timeout_s "
        "elapsed before k followers reported the epoch durable)"
    ),
    "missing_source": (
        "plan results lacking a query's source (resolved as errors, "
        "never cached)"
    ),
    "slides": "window-slide checkpoints folded into the serving base",
    "cache_rebased": (
        "result-cache entries re-keyed across a slide instead of dropped"
    ),
    "slide_advances": (
        "incremental window advances performed by workers "
        "(sliding-window serving)"
    ),
    "stable_vertices": (
        "vertices provably unchanged across worker window advances "
        "(reused, not recomputed)"
    ),
    "slide_vertices": (
        "vertices examined across worker window advances (the "
        "stable-vertex-rate denominator)"
    ),
}


class ServiceStats:
    """Service counters, backed by the metrics registry.

    The pre-observability implementation was a dataclass of plain ints
    behind one shared lock; each counter is now a
    :class:`~repro.obs.metrics.Counter` (its own lock, Prometheus name
    ``mega_service_<field>_total``), so the ``stats``/``metrics`` ops and
    the bench report read the same source of truth.  ``snapshot()``
    keeps the historical flat-dict shape.
    """

    FIELDS = tuple(_COUNTER_HELP)

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self.registry.counter(f"mega_service_{name}_total", help)
            for name, help in _COUNTER_HELP.items()
        }

    def inc(self, name: str, n: int = 1) -> None:
        self._counters[name].inc(n)

    def get(self, name: str) -> int:
        return int(self._counters[name].get())

    def snapshot(self, cache_stats: dict) -> dict:
        out = {name: self.get(name) for name in self.FIELDS}
        out["batching_factor"] = (
            out["plan_queries"] / out["plans"] if out["plans"] else 0.0
        )
        out["cache"] = cache_stats
        return out


class _LiveGraph:
    """Coordinator-side state of one evolving graph: its ingest log."""

    def __init__(self) -> None:
        self.deltas: list[DeltaBatch] = []
        #: window-slide checkpoints folded so far (window_slide_every
        #: cadence; persisted via WAL slide records + snapshot)
        self.slides = 0

    @property
    def epoch(self) -> int:
        return len(self.deltas)


class QueryService:
    """Concurrent evolving-graph query service over a process pool."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        #: delta-chain id stamped into every PlanPayload: two services in
        #: one process (a primary and its read replica, back-to-back
        #: tests) must never share a live-scenario cache entry
        self.service_id = next(_SERVICE_IDS)
        self.metrics = MetricsRegistry()
        self.stats = ServiceStats(self.metrics)
        self.cache = ResultCache(self.config.cache_size)
        self.queue = AdmissionQueue(self.config.max_pending)
        # warm the pool before the batcher thread exists so every worker
        # is forked from a single-threaded coordinator
        self.pool = WorkerPool(
            self.config.workers, kernel_backend=self.config.kernel_backend
        )
        self._backend_gauge = self.metrics.labeled_gauge(
            "mega_kernel_backend",
            "active kernel backend per pool worker (value is always 1)",
            label=("worker", "backend"),
        )
        self._backend_series: set[tuple[str, str]] = set()
        self._sync_backend_gauge()
        #: shared-memory scenario plane (None with --no-shm)
        self.plane: ScenarioPlane | None = (
            ScenarioPlane() if self.config.use_shm else None
        )
        self._graphs: dict[str, _LiveGraph] = {}
        self._graphs_lock = threading.Lock()
        self._inflight: set[int] = set()
        #: queries the batcher has accepted (offered or drained) but not
        #: yet bound to an in-flight plan; guarded by ``_inflight_lock``.
        #: Every live query is counted in exactly one of: the admission
        #: queue + this counter (pre-plan) or ``_inflight`` (planned) —
        #: the invariant ``drain()`` waits on.
        self._unplanned = 0
        self._inflight_lock = threading.Lock()
        self._plan_ids = iter(range(1, 1 << 62))
        self._running = False
        self._thread: threading.Thread | None = None
        self._started_at = time.monotonic()
        #: EWMA of executed-plan wall time, feeds the retry_after hint;
        #: a registry gauge so concurrent done-callbacks fold their
        #: samples under the instrument lock (read-modify-write on a
        #: bare float lost updates and corrupted the hint under load)
        self._plan_ewma = self.metrics.gauge(
            "mega_plan_ewma_seconds",
            "EWMA of executed-plan wall time (drives retry_after)",
            initial=0.05,
        )
        self._latency = self.metrics.histogram(
            "mega_query_latency_seconds",
            "end-to-end query latency (admit to resolve)",
        )
        self._slide_seconds = self.metrics.histogram(
            "mega_slide_checkpoint_seconds",
            "wall time of a slide checkpoint's eager shm republish",
        )
        self._profile_lock = threading.Lock()
        self._round_profile: dict = {}
        self.wal: WriteAheadLog | None = None
        self.last_recovery: WalRecovery | None = None
        #: "primary" accepts ingest; "follower" (set by
        #: :class:`repro.service.replica.ReplicaServer`) serves reads only
        #: and refuses ingest with a ``not_primary`` redirect
        self.role = "primary"
        #: the follower's view of the primary's WAL directory (None on a
        #: primary); doubles as the redirect hint in NotPrimaryError
        self.primary_wal_dir: str | None = None
        #: back-reference the owning ReplicaServer installs so health and
        #: metrics can report replication lag from the follower side
        self.replica = None
        #: back-reference the cluster supervisor installs
        #: (:class:`repro.service.cluster.ClusterNode`) so health can
        #: report this node's cluster view
        self.cluster_node = None
        #: (mode, k) — parsed eagerly so a typo in the durability knob
        #: fails at construction
        self._ack = parse_ack_mode(self.config.ack_mode)
        self._follower_lag_gauge = self.metrics.labeled_gauge(
            "mega_replication_follower_lag_epochs",
            "per-follower replication lag in epochs (primary side)",
            label="follower",
        )
        coord = [
            p for p in self.config.inject_fault
            if p in COORDINATOR_FAULT_POINTS
        ]
        self._coord_plan = (
            FaultPlan(coord, seed=self.config.fault_seed) if coord else None
        )
        self._register_gauges()

    def _sync_backend_gauge(self) -> None:
        """Mirror the pool's pid -> kernel tier map into the
        ``mega_kernel_backend`` family, dropping series of departed
        workers so a restarted pool doesn't export ghost members."""
        live = {
            (str(pid), name or "unknown")
            for pid, name in self.pool.worker_backends.items()
        }
        for key in self._backend_series - live:
            self._backend_gauge.discard(*key)
        for key in live:
            self._backend_gauge.labels(*key).set(1.0)
        self._backend_series = live

    def _note_worker_backend(self, result: PlanResult) -> None:
        """Fold a plan result's resolved tier into the pool map (covers
        workers forked by a mid-serve restart, which never re-ping)."""
        if not result.kernel_backend:
            return
        known = self.pool.worker_backends.get(result.worker_pid)
        if known != result.kernel_backend:
            self.pool.worker_backends[result.worker_pid] = (
                result.kernel_backend
            )
            self._sync_backend_gauge()

    def _register_gauges(self) -> None:
        """Callback gauges over live state, sampled at render time."""
        reg = self.metrics
        reg.gauge_fn(
            "mega_queue_depth", lambda: len(self.queue),
            "queries waiting in the admission queue",
        )
        reg.gauge_fn(
            "mega_inflight_plans", lambda: len(self._inflight),
            "plans submitted to the pool and not yet completed",
        )
        reg.gauge_fn(
            "mega_unplanned_queries", lambda: self._unplanned,
            "queries accepted but not yet bound to a plan",
        )
        reg.gauge_fn(
            "mega_uptime_seconds",
            lambda: time.monotonic() - self._started_at,
            "seconds since the service started",
        )
        reg.gauge_fn(
            "mega_pool_restarts", lambda: self.pool.restarts,
            "worker pool restarts (broken executor recoveries)",
        )
        reg.gauge_fn(
            "mega_pool_workers", lambda: self.pool.workers,
            "configured worker processes",
        )
        for key, help in (
            ("entries", "result cache entries"),
            ("hits", "result cache hits"),
            ("misses", "result cache misses"),
            ("hit_rate", "result cache hit rate"),
        ):
            reg.gauge_fn(
                f"mega_result_cache_{key}",
                lambda k=key: self.cache.stats()[k],
                help,
            )
        reg.gauge_fn(
            "mega_wal_enabled", lambda: int(self.wal is not None),
            "1 when a write-ahead log is configured",
        )
        for key, help in (
            ("records", "records appended to the WAL"),
            ("lag_records", "appended-but-unsynced WAL records"),
            ("compactions", "WAL compactions"),
            ("segments", "live WAL segment files"),
        ):
            reg.gauge_fn(
                f"mega_wal_{key}",
                lambda k=key: (
                    self.wal.stats()[k] if self.wal is not None else 0
                ),
                help,
            )
        reg.gauge_fn(
            "mega_replication_followers",
            lambda: len(self.follower_lags()),
            "followers with a registered replication cursor",
        )
        reg.gauge_fn(
            "mega_replication_max_lag_epochs",
            lambda: max(self.follower_lags().values(), default=0),
            "largest per-follower replication lag in epochs (primary side)",
        )
        reg.gauge_fn(
            "mega_replication_lag_epochs",
            lambda: (
                self.replica.lag_epochs() if self.replica is not None else 0
            ),
            "epochs this follower trails the primary's observed tip",
        )
        reg.gauge_fn(
            "mega_fencing_token",
            self._fencing_token,
            "this writer's fencing token (0 = unfenced/read-only); a "
            "follower reports the primary token it observes",
        )
        reg.gauge_fn(
            "mega_shm_enabled", lambda: int(self.plane is not None),
            "1 when the shared-memory scenario plane is on",
        )
        for key, help in (
            ("segments", "live shared-memory scenario segments"),
            ("bytes", "bytes published on the scenario plane"),
            ("published", "scenario generations published"),
            ("retired", "scenario generations retired"),
            (
                "retired_pending",
                "retired scenario generations still mapped by in-flight "
                "plans (must drain to 0 after a slide)",
            ),
        ):
            reg.gauge_fn(
                f"mega_shm_{key}",
                lambda k=key: (
                    self.plane.stats()[k] if self.plane is not None else 0
                ),
                help,
            )
        reg.gauge_fn(
            "mega_slide_stable_vertex_rate",
            self.stable_vertex_rate,
            "fraction of vertices reused (not recomputed) across worker "
            "window advances",
        )

    def _maybe_fire(self, point: str) -> Fire | None:
        """Coordinator fault hook: a globally injected plan wins, else the
        config-armed one (``inject_fault`` with a coordinator point)."""
        fire = maybe_fire(point)
        if fire is None and self._coord_plan is not None:
            fire = self._coord_plan.maybe_fire(point)
        return fire

    # -- lifecycle ----------------------------------------------------------

    def start(self, wal_dir: str | None = None) -> "QueryService":
        """Start serving; with a WAL directory, recover state from it first.

        ``wal_dir`` overrides ``config.wal_dir``.  Recovery replays the
        compaction snapshot plus every surviving segment record to rebuild
        per-graph delta logs and epochs; damaged data (torn tail, CRC
        failure, epoch gap behind a quarantined record) is logged and
        skipped, never raised.
        """
        if self._running:
            return self
        if self.plane is not None:
            # reclaim segments a SIGKILLed predecessor left in /dev/shm
            # before publishing any of our own
            sweep_orphan_segments()
        wal_dir = wal_dir if wal_dir is not None else self.config.wal_dir
        if wal_dir and self.wal is None and self.role == "primary":
            recovery = recover_wal(wal_dir)
            self._install_recovery(recovery)
            # fence the directory at its recovered tip before writing:
            # our records carry the new token, and any process still
            # holding the *old* token that appends at or past this point
            # is a zombie whose records every reader quarantines
            token = advance_fence(wal_dir, read_from(wal_dir).position)
            self.wal = WriteAheadLog(
                wal_dir,
                fsync=self.config.wal_fsync,
                segment_bytes=self.config.wal_segment_bytes,
                fault_hook=self._maybe_fire,
                fence_token=token,
            )
        self._running = True
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._batch_loop, name="mega-batcher", daemon=True
        )
        self._thread.start()
        return self

    def _install_recovery(self, recovery: WalRecovery) -> None:
        """Rebuild ``self._graphs`` from a WAL recovery scan."""
        self.last_recovery = recovery
        logs: dict[str, list[DeltaBatch]] = {}
        snapshot = recovery.snapshot or {}
        slides: dict[str, int] = {
            g: int(s) for g, s in (snapshot.get("slides") or {}).items()
        }
        for graph, wires in snapshot.get("logs", {}).items():
            logs[graph] = [DeltaBatch.from_wire(w) for w in wires]
        for record in recovery.records:
            op = record.get("op")
            if op == OP_SLIDE:
                # slide checkpoints carry no deltas — the log replays
                # through the same slide path — but the counters must
                # survive so health/bench report the true slide count
                graph = record.get("graph", "")
                slides[graph] = max(
                    slides.get(graph, 0), int(record.get("slides", 0))
                )
                continue
            if op != OP_INGEST:
                log.warning(
                    "wal recovery: skipping unknown record op %r",
                    record.get("op"),
                )
                continue
            graph = record.get("graph", "")
            delta_log = logs.setdefault(graph, [])
            epoch = int(record.get("epoch", -1))
            if epoch == len(delta_log) + 1:
                delta_log.append(DeltaBatch.from_wire(record["delta"]))
            elif epoch <= len(delta_log):
                # already covered by the compaction snapshot
                continue
            else:
                # a quarantined/lost record upstream broke the chain:
                # freeze this graph at its last contiguous epoch rather
                # than apply deltas out of order
                log.warning(
                    "wal recovery: %s epoch %d follows a gap (have %d); "
                    "record skipped, graph frozen at epoch %d",
                    graph, epoch, len(delta_log), len(delta_log),
                )
        with self._graphs_lock:
            for graph, delta_log in logs.items():
                live = self._graphs.setdefault(graph, _LiveGraph())
                live.deltas = delta_log
            for graph, count in slides.items():
                live = self._graphs.setdefault(graph, _LiveGraph())
                live.slides = max(live.slides, count)
        if logs:
            log.info(
                "wal recovery: restored %s",
                {g: len(d) for g, d in logs.items()},
            )

    def stop(self, drain: bool = True, timeout: float = 60.0) -> bool:
        """Stop the service; returns whether it drained cleanly.

        A timed-out drain is logged, counted in ``ServiceStats``
        (``drain_timeouts``), and reflected in the return value — work
        still in flight is abandoned, not silently forgotten.
        """
        drained = True
        if drain:
            drained = self.drain(timeout)
            if not drained:
                self.stats.inc("drain_timeouts")
                log.warning(
                    "drain timed out after %.1fs "
                    "(queue=%d unplanned=%d inflight=%d); stopping anyway",
                    timeout, len(self.queue), self._unplanned,
                    len(self._inflight),
                )
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.pool.shutdown()
        if self.plane is not None:
            self.plane.close_all()
        if self.wal is not None:
            self.wal.close()
        return drained

    def drain(self, timeout: float = 60.0) -> bool:
        """Block until no query is queued, held by the batcher, or in
        flight.

        The accepted-but-unplanned count covers the window where the
        batcher has drained the admission queue but not yet submitted
        plans; without it, ``stop(drain=True)`` could observe an empty
        queue and empty in-flight set and shut the pool down under
        queries it had acknowledged.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._inflight_lock:
                busy = bool(self._inflight) or self._unplanned > 0
            if not busy and len(self.queue) == 0:
                return True
            time.sleep(0.01)
        return False

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- client surface ----------------------------------------------------

    def epoch(self, graph: str) -> int:
        with self._graphs_lock:
            return self._graphs.setdefault(graph, _LiveGraph()).epoch

    def graph_epochs(self) -> dict[str, int]:
        """Epoch of every graph this service has seen (shard reconcile)."""
        with self._graphs_lock:
            return {g: lg.epoch for g, lg in self._graphs.items()}

    def graph_deltas(self, graph: str) -> tuple[DeltaBatch, ...]:
        """Immutable view of a graph's delta log (shard chain rebuild)."""
        with self._graphs_lock:
            return tuple(
                self._graphs.setdefault(graph, _LiveGraph()).deltas
            )

    def retry_after_hint(self) -> float:
        """How long an overloaded client should back off (seconds).

        Scales the recent per-plan wall time by the backlog a new query
        would sit behind; clamped to a sane band so a cold EWMA or a
        pathological queue can't produce silly hints.
        """
        with self._inflight_lock:
            inflight = len(self._inflight)
        backlog_plans = inflight + (
            len(self.queue) / max(self.config.max_batch, 1)
        )
        hint = self._plan_ewma.get() * (1.0 + backlog_plans) / max(
            self.config.workers, 1
        )
        return float(min(max(hint, 0.05), 10.0))

    def _finish(self, pending: PendingQuery, response: QueryResponse) -> None:
        """Resolve + record: every terminal response lands here, so the
        latency histogram sees cache hits and sheds, not just plans."""
        pending.resolve(response)
        self._latency.observe(pending.response.latency_s)

    def submit(self, request: QueryRequest) -> PendingQuery:
        """Admit one query; returns a handle to ``wait()`` on.

        Terminal immediately on validation error, cache hit, or admission
        overflow — only genuinely new work enters the queue.
        """
        epoch = self.epoch(request.graph)
        pending = PendingQuery(request, epoch)
        self.stats.inc("submitted")
        try:
            validate_request(
                request, self.config.n_snapshots, self.config.scale
            )
        except ValueError as exc:
            self.stats.inc("errored")
            self._finish(
                pending,
                QueryResponse(request.id, "error", epoch=epoch, error=str(exc)),
            )
            return pending

        summaries = self.cache.get(request, epoch)
        if summaries is not None:
            self.stats.inc("cached")
            self.stats.inc("completed")
            self._finish(
                pending,
                QueryResponse(
                    request.id, "cached", epoch=epoch, summaries=summaries
                ),
            )
            return pending

        # count as unplanned *before* offering: once the query is visible
        # in the queue it must already be covered by the drain invariant
        with self._inflight_lock:
            self._unplanned += 1
        if not self.queue.offer(pending):
            with self._inflight_lock:
                self._unplanned -= 1
            self.stats.inc("rejected")
            self._finish(
                pending,
                QueryResponse(
                    request.id,
                    "rejected",
                    epoch=epoch,
                    error="admission queue full (load shed)",
                    retry_after=self.retry_after_hint(),
                ),
            )
        return pending

    def ingest(
        self,
        graph: str,
        delta: DeltaBatch | None = None,
        seed: int | None = None,
        n_add: int = 8,
        n_del: int = 8,
    ) -> int:
        """Append ``Δ+/Δ-``, advance the graph's window, drop stale cache.

        Either pass an explicit :class:`DeltaBatch` or a ``seed`` to
        synthesize one from the graph's current epoch state.  Returns the
        new epoch.

        With a WAL configured the delta is appended (and fsynced, per
        policy) *before* the in-memory apply: an acknowledged ingest is
        durable, and a WAL write failure raises without acknowledging.

        On a follower this raises :class:`NotPrimaryError` — writes have
        exactly one home, and the front end turns the refusal into a
        ``not_primary`` redirect the client can follow.

        In quorum ack mode (``config.ack_mode = "quorum:k"``) the return
        additionally waits for k followers — see :meth:`ingest_with_ack`
        for the ack report; this convenience wrapper keeps the historical
        bare-epoch return.
        """
        epoch, _ack = self.ingest_with_ack(
            graph, delta=delta, seed=seed, n_add=n_add, n_del=n_del
        )
        return epoch

    def ingest_with_ack(
        self,
        graph: str,
        delta: DeltaBatch | None = None,
        seed: int | None = None,
        n_add: int = 8,
        n_del: int = 8,
    ) -> tuple[int, dict]:
        """:meth:`ingest` plus the acknowledgement report.

        The report states what the ack *means*: ``{"mode", "required",
        "acked_by", "degraded", "wait_s"}``.  In local mode the epoch is
        durable on this node's WAL only.  In quorum mode the return is
        held (outside the graph lock — reads and other ingests are not
        stalled) until ``required`` followers report the epoch durable in
        their acked-position cursors, or ``quorum_timeout_s`` elapses —
        then the ack is **degraded**: the epoch is locally durable and
        will replicate, but the caller is told the quorum was not proven.
        Never silent loss, never an unbounded stall.
        """
        if self.role != "primary":
            self.stats.inc("not_primary")
            raise NotPrimaryError(self.role, self.primary_wal_dir)
        if delta is None and seed is None:
            raise ValueError("ingest needs a DeltaBatch or a seed")
        slide_every = max(0, int(self.config.window_slide_every))
        compact_due = False
        slide_due = False
        while True:
            base_epoch = None
            candidate = delta
            if candidate is None:
                # Synthesize OUTSIDE the lock: building the live scenario
                # and drawing a valid delta is the expensive part of a
                # seeded ingest, and holding _graphs_lock through it
                # stalled every other graph's ingest and epoch read.
                # Optimistic concurrency instead: snapshot the epoch,
                # synthesize against it, then re-validate under the lock
                # — a losing racer resynthesizes so the delta always
                # respects the CommonGraph rule at the epoch it lands on.
                from repro.service.pool import _live_scenario

                with self._graphs_lock:
                    live = self._graphs.setdefault(graph, _LiveGraph())
                    base_epoch = live.epoch
                    base_deltas = tuple(live.deltas)
                scenario = _live_scenario(
                    PlanPayload(
                        plan_id=0,
                        graph=graph,
                        scale=self.config.scale,
                        n_snapshots=self.config.n_snapshots,
                        algo="",
                        sources=(),
                        epoch=base_epoch,
                        deltas=base_deltas,
                        chain=self.service_id,
                    )
                )
                candidate = synthesize_delta(
                    scenario, seed=seed, n_add=n_add, n_del=n_del
                )
            with self._graphs_lock:
                live = self._graphs.setdefault(graph, _LiveGraph())
                if base_epoch is not None and live.epoch != base_epoch:
                    # another ingest landed while we synthesized; the
                    # candidate may violate the one-change-per-edge rule
                    # at the new epoch — go around and resynthesize
                    continue
                if self.wal is not None:
                    # durability point: commit before acknowledging; a
                    # WalWriteError propagates and nothing was applied
                    self.wal.append(
                        {
                            "op": OP_INGEST,
                            "graph": graph,
                            "epoch": live.epoch + 1,
                            "delta": candidate.to_wire(),
                        }
                    )
                    self.stats.inc("wal_records")
                fire = self._maybe_fire("service.crash-on-ingest")
                if fire is not None:
                    fire.note(graph=graph, epoch=live.epoch + 1)
                    raise SimulatedCrash(
                        f"injected crash after WAL append of {graph} "
                        f"epoch {live.epoch + 1}"
                    )
                live.deltas.append(candidate)
                epoch = live.epoch
                slide_due = slide_every > 0 and epoch % slide_every == 0
                if slide_due:
                    live.slides += 1
                    if self.wal is not None:
                        # the slide record makes the checkpoint part of
                        # the durable history, then compaction rewrites
                        # the log across the slide: snapshot + slide
                        # counters replace the dropped segments, so
                        # recovery resumes from the slid base
                        self.wal.append(
                            {
                                "op": OP_SLIDE,
                                "graph": graph,
                                "epoch": epoch,
                                "slides": live.slides,
                            }
                        )
                        self.stats.inc("wal_records")
                        self.wal.compact(self._snapshot_graphs_locked())
                        self.stats.inc("wal_compactions")
                        compact_due = True
                if (
                    not slide_due
                    and self.wal is not None
                    and self.config.wal_compact_every > 0
                    and epoch % self.config.wal_compact_every == 0
                ):
                    # compact while holding the lock: no append can race,
                    # so the snapshot provably covers every dropped
                    # segment
                    self.wal.compact(self._snapshot_graphs_locked())
                    self.stats.inc("wal_compactions")
                    compact_due = True
                deltas_after = tuple(live.deltas)
            break
        if slide_due:
            self.stats.inc("slides")
            t0 = time.monotonic()
            self._republish_plane(graph, epoch, deltas_after)
            self._slide_seconds.observe(time.monotonic() - t0)
        if slide_every > 0:
            # every ingest slides the window by one snapshot: entries
            # whose shifted window survives are re-keyed to the new
            # epoch, only those whose window actually changed are dropped
            rebased, _dropped = self.cache.rebase_graph(graph, epoch)
            if rebased:
                self.stats.inc("cache_rebased", rebased)
        else:
            self.cache.invalidate_graph(graph)
        self.stats.inc("ingests")
        if compact_due:
            log.info("wal compacted after epoch %d of %s", epoch, graph)
        return epoch, self._await_quorum(graph, epoch)

    def _republish_plane(
        self, graph: str, epoch: int, deltas: tuple
    ) -> None:
        """Eagerly publish the post-slide scenario generation.

        Publishing retires the previous generation: in-flight plans still
        mapping it drain through the refcount machinery (the segment is
        unlinked when the last release lands), and post-slide plans
        attach the new segment immediately instead of paying the publish
        on their first query.
        """
        if self.plane is None:
            return
        try:
            manifest = self._plane_manifest(graph, epoch, deltas)
        except Exception:  # pragma: no cover - defensive; queries replay
            log.exception("slide republish failed for %s@%d", graph, epoch)
            return
        if manifest is not None:
            self.plane.release(manifest)

    def _await_quorum(self, graph: str, epoch: int) -> dict:
        """Block until k followers report ``epoch`` durable, or time out.

        Follower cursors (:func:`repro.service.wal.read_follower_cursors`)
        are the acked-position reports: each is fsynced by the follower
        *after* it applied the epoch, so an epoch listed there survived
        onto that follower.  Runs outside ``_graphs_lock`` — a slow
        follower delays this caller's ack, not the service.
        """
        mode, required = self._ack
        ack = {
            "mode": mode,
            "required": required,
            "acked_by": [],
            "degraded": False,
            "wait_s": 0.0,
        }
        if mode != "quorum" or self.wal is None:
            return ack
        t0 = time.monotonic()
        deadline = t0 + max(0.0, self.config.quorum_timeout_s)
        # Each poll re-reads and re-parses every follower cursor file.  A
        # fixed short sleep burned a core per in-flight ack whenever a
        # follower was slow; back off exponentially instead — the first
        # polls stay tight so fast followers ack with ~1 ms latency,
        # long waits settle at _QUORUM_POLL_MAX_S.
        pause = _QUORUM_POLL_MIN_S
        while True:
            cursors = read_follower_cursors(self.wal.wal_dir)
            acked = sorted(
                fid for fid, doc in cursors.items()
                if int((doc.get("epochs") or {}).get(graph, 0)) >= epoch
            )
            now = time.monotonic()
            if len(acked) >= required:
                ack.update(acked_by=acked, wait_s=round(now - t0, 6))
                self.stats.inc("quorum_acks")
                return ack
            if now >= deadline:
                ack.update(
                    acked_by=acked, degraded=True,
                    wait_s=round(now - t0, 6),
                )
                self.stats.inc("degraded_acks")
                log.warning(
                    "quorum ack degraded: %s epoch %d has %d/%d follower "
                    "acks after %.2fs (epoch is locally durable and will "
                    "replicate)",
                    graph, epoch, len(acked), required, now - t0,
                )
                return ack
            time.sleep(min(pause, max(0.0, deadline - now)))
            pause = min(pause * 2.0, _QUORUM_POLL_MAX_S)

    def apply_replicated(self, graph: str, epoch: int, delta_wire: dict) -> bool:
        """Apply one epoch shipped from the primary's WAL (follower path).

        Idempotent on replays (``epoch`` at or below the local tip is a
        no-op returning False); a gap raises
        :class:`ReplicationGapError` so the tailer re-syncs from the
        snapshot instead of serving a non-prefix state.  Returns True when
        the epoch advanced the local log.
        """
        with self._graphs_lock:
            live = self._graphs.setdefault(graph, _LiveGraph())
            if epoch <= live.epoch:
                return False
            if epoch != live.epoch + 1:
                raise ReplicationGapError(
                    f"replicated {graph} epoch {epoch} does not extend "
                    f"local epoch {live.epoch}"
                )
            live.deltas.append(DeltaBatch.from_wire(delta_wire))
        self.cache.invalidate_graph(graph)
        self.stats.inc("replicated")
        return True

    def rewind_graph(self, graph: str, epoch: int) -> int:
        """Truncate a graph's delta log back to ``epoch`` (reconciliation).

        A multi-shard ingest that crashed between per-shard WAL commits
        leaves some shards' logs ahead of the slowest one; the
        :class:`~repro.service.sharding.ShardManager` rewinds every shard
        to the minimum recovered epoch before serving, because WAL
        recovery skips records at-or-below the local tip — a shard left
        ahead would silently drop the re-ingested epochs.  The WAL (when
        configured) is compacted to the truncated image so a later
        recovery converges to the same state.  Returns the new epoch.
        """
        with self._graphs_lock:
            live = self._graphs.setdefault(graph, _LiveGraph())
            if epoch >= live.epoch:
                return live.epoch
            del live.deltas[epoch:]
            if self.wal is not None:
                # compact under the lock so the snapshot provably covers
                # the truncated log and no append interleaves
                self.wal.compact(self._snapshot_graphs_locked())
                self.stats.inc("wal_compactions")
        self.cache.invalidate_graph(graph)
        log.info("rewound %s to epoch %d for shard reconciliation",
                 graph, epoch)
        return epoch

    def submit_scatter(
        self,
        graph: str,
        algo: str,
        *,
        n_states: int,
        vertex_lo: int,
        vertex_hi: int,
        frontier: DeltaBatch,
        state_block,
        window: tuple[int, int] | None = None,
        epoch: int | None = None,
    ):
        """Ship one scatter sub-plan to this shard's pool.

        The scatter-gather front end drives rounds itself, so there is no
        admission queue or coalescing here: the sub-plan goes straight to
        the pool, stamped with this shard's delta chain and (when
        current) its published shm manifest, and the returned future
        resolves to a :class:`~repro.service.pool.PlanResult` whose
        ``updates``/``boundary`` carry the frontier exchange.  The
        ``vertex_[lo,hi)`` range both scopes the relaxation and
        row-restricts the worker's replay path, so a shard worker only
        ever materializes its own slice of the union CSR.
        """
        plan_id = next(self._plan_ids)
        with self._graphs_lock:
            live = self._graphs.setdefault(graph, _LiveGraph())
            if epoch is None:
                epoch = live.epoch
            deltas = tuple(live.deltas[:epoch])
        manifest = self._plane_manifest(
            graph, epoch, deltas,
            vertex_lo=vertex_lo, vertex_hi=vertex_hi,
        )
        payload = PlanPayload(
            plan_id=plan_id,
            graph=graph,
            scale=self.config.scale,
            n_snapshots=self.config.n_snapshots,
            algo=algo,
            sources=(),
            window=window,
            epoch=epoch,
            deltas=deltas,
            budget_s=self.config.budget_s,
            kind="scatter",
            kernel_backend=self.config.kernel_backend,
            shm=manifest,
            chain=self.service_id,
            profile_every=self.config.profile_rounds,
            vertex_lo=vertex_lo,
            vertex_hi=vertex_hi,
            n_states=n_states,
            frontier=frontier,
            state_block=state_block,
        )
        self.stats.inc("scatter_plans")
        with self._inflight_lock:
            self._inflight.add(plan_id)
        try:
            future = self.pool.submit(payload)
        except Exception:
            if manifest is not None and self.plane is not None:
                self.plane.release(manifest)
            with self._inflight_lock:
                self._inflight.discard(plan_id)
            raise

        def _done(fut, m=manifest, pid=plan_id) -> None:
            if m is not None and self.plane is not None:
                self.plane.release(m)
            try:
                result: PlanResult = fut.result()
            except Exception:  # noqa: BLE001 - the caller sees it too
                pass
            else:
                if result.elapsed_s > 0:
                    self._plan_ewma.ewma(result.elapsed_s, alpha=0.2)
                self._merge_round_profile(result.round_profile)
                self._note_worker_backend(result)
            with self._inflight_lock:
                self._inflight.discard(pid)

        future.add_done_callback(_done)
        return future

    def follower_lags(self) -> dict[str, int]:
        """Per-follower replication lag in epochs (primary side).

        Scans the ``followers/`` cursor files next to the WAL and compares
        each follower's applied epochs with the live ones; empty on a
        node without a WAL (including followers).
        """
        if self.wal is None:
            return {}
        cursors = read_follower_cursors(self.wal.wal_dir)
        if not cursors:
            return {}
        with self._graphs_lock:
            epochs = {g: lg.epoch for g, lg in self._graphs.items()}
        out: dict[str, int] = {}
        for follower_id, doc in cursors.items():
            applied = doc.get("epochs", {})
            out[follower_id] = max(
                (epochs.get(g, 0) - int(applied.get(g, 0)) for g in epochs),
                default=0,
            )
        # refresh the labeled gauge family in the same sweep: one series
        # per follower, and a departed follower's series is dropped, not
        # frozen at its last value
        for follower_id, lag in out.items():
            self._follower_lag_gauge.labels(follower_id).set(lag)
        for stale in set(self._follower_lag_gauge.get()) - set(out):
            self._follower_lag_gauge.discard(stale)
        return out

    def _fencing_token(self) -> int:
        """This writer's token; a follower (which holds no token of its
        own) reports the primary token it observes in the WAL dir — the
        one promotion would supersede."""
        if self.wal is not None:
            return self.wal.fence_token
        if self.primary_wal_dir is not None:
            return current_fence_token(self.primary_wal_dir)
        return 0

    def _snapshot_graphs_locked(self) -> dict:
        """JSON-able image of every delta log (caller holds _graphs_lock)."""
        return {
            "epochs": {g: lg.epoch for g, lg in self._graphs.items()},
            "logs": {
                g: [d.to_wire() for d in lg.deltas]
                for g, lg in self._graphs.items()
            },
            "slides": {g: lg.slides for g, lg in self._graphs.items()},
        }

    def stable_vertex_rate(self) -> float:
        """Fraction of vertices provably unchanged across worker window
        advances (0.0 before any sliding-window advance ran)."""
        total = self.stats.get("slide_vertices")
        return self.stats.get("stable_vertices") / total if total else 0.0

    def clear_caches(self) -> None:
        """Coordinator cache + best-effort worker-side clear."""
        self.cache.clear()
        self.pool.clear_caches()

    def service_stats(self) -> dict:
        return self.stats.snapshot(self.cache.stats())

    def metrics_text(self) -> str:
        """Prometheus text exposition of every registered instrument."""
        return self.metrics.render()

    def round_profile(self) -> dict:
        """Aggregated worker-side kernel profile (``profile_rounds`` > 0)."""
        with self._profile_lock:
            return dict(self._round_profile)

    def health(self) -> dict:
        """Operator-grade liveness snapshot for the ``health`` op.

        ``status`` is "degraded" once any query errored or was dropped at
        admission — the same condition that turns the CLI exit non-zero.
        """
        stats = self.service_stats()
        with self._graphs_lock:
            epochs = {g: lg.epoch for g, lg in self._graphs.items()}
            slide_counts = {g: lg.slides for g, lg in self._graphs.items()}
        with self._inflight_lock:
            inflight = len(self._inflight)
            unplanned = self._unplanned
        wal = self.wal.stats() if self.wal is not None else {"enabled": False}
        if self.last_recovery is not None:
            wal["recovery"] = self.last_recovery.summary()
        degraded = bool(stats["errored"] or stats["rejected"])
        follower_lags = self.follower_lags()
        replication = {
            "role": self.role,
            "fencing_token": self._fencing_token(),
            "ack_mode": self.config.ack_mode,
            "replication_lag_epochs": (
                self.replica.lag_epochs() if self.replica is not None
                else max(follower_lags.values(), default=0)
            ),
            "followers": follower_lags,
        }
        if self.replica is not None:
            replication.update(self.replica.health())
        out = {
            "status": "degraded" if degraded else "ok",
            **replication,
            "running": self._running,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "epochs": epochs,
            "queue_depth": len(self.queue),
            "inflight_plans": inflight,
            "unplanned_queries": unplanned,
            "shed": stats["shed"],
            "errored": stats["errored"],
            "rejected": stats["rejected"],
            "missing_source": stats["missing_source"],
            "drain_timeouts": stats["drain_timeouts"],
            "retry_after_s": round(self.retry_after_hint(), 3),
            "workers": self.pool.workers,
            "worker_pids": sorted(self.pool.worker_pids),
            "pool_restarts": self.pool.restarts,
            "kernel_backend": {
                "requested": requested_tier(self.config.kernel_backend),
                "workers": {
                    str(pid): name
                    for pid, name in sorted(
                        self.pool.worker_backends.items()
                    )
                },
            },
            "shm": (
                self.plane.stats()
                if self.plane is not None
                else {"enabled": False}
            ),
            "wal": wal,
            "sliding": {
                "enabled": self.config.window_slide_every > 0,
                "slide_every": self.config.window_slide_every,
                "slides": slide_counts,
                "slide_advances": stats["slide_advances"],
                "cache_rebased": stats["cache_rebased"],
                "stable_vertex_rate": round(self.stable_vertex_rate(), 6),
                "republish_p95_s": self._slide_seconds.approx_quantile(
                    0.95
                ),
            },
        }
        if self.config.shard_id >= 0:
            out["shard_id"] = self.config.shard_id
        if self.cluster_node is not None:
            out["cluster"] = self.cluster_node.health()
        return out

    # -- batcher thread ----------------------------------------------------

    def _batch_loop(self) -> None:
        coalesce_s = max(self.config.coalesce_ms, 0.0) / 1e3
        while self._running:
            time.sleep(coalesce_s if coalesce_s > 0 else 0.0005)
            pending = self.queue.drain()
            if not pending:
                continue
            drained_at = time.monotonic()
            for p in pending:
                p.trace.mark("queue_drain", drained_at)
            pending, expired = split_expired(pending)
            for p in expired:
                self._shed(p)
            if not pending:
                continue
            if self.config.batching:
                plans = coalesce(pending, self.config.max_batch)
            else:
                # baseline: strictly one query per plan, no sharing at all
                plans = [[p] for p in pending]
            coalesced_at = time.monotonic()
            for plan in plans:
                for p in plan:
                    p.trace.mark("coalesce", coalesced_at)
                self._submit_plan(plan)

    def _shed(self, pending: PendingQuery) -> None:
        """Deadline expired before execution: shed with a backoff hint."""
        with self._inflight_lock:
            self._unplanned -= 1
        self.stats.inc("shed")
        self._finish(
            pending,
            QueryResponse(
                pending.request.id,
                "shed",
                epoch=pending.epoch,
                error="deadline expired before execution (load shed)",
                retry_after=self.retry_after_hint(),
            ),
        )

    def _submit_plan(
        self, queries: list[PendingQuery], degraded: bool = False
    ) -> None:
        plan_id = next(self._plan_ids)
        first = queries[0].request
        epoch = queries[0].epoch
        with self._graphs_lock:
            deltas = tuple(
                self._graphs.setdefault(first.graph, _LiveGraph()).deltas[:epoch]
            )
        fault_points: tuple[str, ...] = ()
        worker_faults = tuple(
            p for p in self.config.inject_fault
            if p not in COORDINATOR_FAULT_POINTS
        )
        if not degraded and worker_faults:
            if self.stats.get("plans") == self.config.inject_fault_plan:
                fault_points = worker_faults
        manifest = self._plane_manifest(first.graph, epoch, deltas)
        sources = tuple(dict.fromkeys(q.request.source for q in queries))
        payload = PlanPayload(
            plan_id=plan_id,
            graph=first.graph,
            scale=self.config.scale,
            n_snapshots=self.config.n_snapshots,
            algo=first.algo,
            sources=sources,
            window=first.window,
            mode=first.mode,
            epoch=epoch,
            deltas=deltas,
            budget_s=self.config.budget_s,
            fault_points=fault_points,
            fault_seed=self.config.fault_seed,
            kernel_backend=self.config.kernel_backend,
            shm=manifest,
            profile_every=self.config.profile_rounds,
            chain=self.service_id,
            slide_serving=self.config.window_slide_every > 0,
        )
        self.stats.inc("plans")
        self.stats.inc("plan_queries", len(queries))
        submitted_at = time.monotonic()
        with self._inflight_lock:
            # the plan becomes in-flight in the same critical section that
            # releases its queries from the unplanned count, so drain()
            # can never observe them covered by neither
            self._inflight.add(plan_id)
            if not degraded:
                self._unplanned -= len(queries)
        for q in queries:
            q.trace.mark("plan_submit", submitted_at)
        try:
            future = self.pool.submit(payload)
        except Exception as exc:  # pool unrecoverable: fail these queries
            self._plan_failed(plan_id, queries, exc, manifest)
            return
        future.add_done_callback(
            lambda fut, q=queries, pid=plan_id, m=manifest: (
                self._on_plan_done(pid, q, fut, m)
            )
        )

    def _plane_manifest(
        self,
        graph: str,
        epoch: int,
        deltas: tuple,
        vertex_lo: int = 0,
        vertex_hi: int = 0,
    ) -> ScenarioManifest | None:
        """Refcounted manifest of the published scenario for this plan.

        Publishes (materializing the live scenario once, in the
        coordinator) when the plan's epoch is not yet on the plane.
        Plans admitted under an epoch *older* than the published one get
        ``None`` — retiring a newer generation for a straggler would
        thrash the plane — and fall back to worker-side replay.  Any
        publish failure degrades to the replay path too.  A shard
        service passes its vertex range so the published scenario is the
        row-restricted slice its workers expect (a shard's plane only
        ever holds its own slice, so the key needs no range component).
        """
        if self.plane is None:
            return None
        scale = self.config.scale
        n_snapshots = self.config.n_snapshots
        manifest = self.plane.acquire(graph, scale, n_snapshots, epoch)
        if manifest is not None:
            return manifest
        current = self.plane.current_epoch(graph, scale, n_snapshots)
        if current is not None and current >= epoch:
            return None
        try:
            from repro.service.pool import _live_scenario

            scenario = _live_scenario(
                PlanPayload(
                    plan_id=0,
                    graph=graph,
                    scale=scale,
                    n_snapshots=n_snapshots,
                    algo="",
                    sources=(),
                    epoch=epoch,
                    deltas=deltas,
                    chain=self.service_id,
                    vertex_lo=vertex_lo,
                    vertex_hi=vertex_hi,
                )
            )
            self.plane.publish(scenario, graph, scale, epoch)
            return self.plane.acquire(graph, scale, n_snapshots, epoch)
        except Exception as exc:  # noqa: BLE001 - plane is an optimization
            log.warning(
                "shm plane: publish failed for %s@%d (%s); "
                "falling back to worker replay", graph, epoch, exc,
            )
            return None

    # -- completion path (runs on executor callback threads) ---------------

    def _merge_round_profile(self, snapshot: dict | None) -> None:
        if not snapshot:
            return
        with self._profile_lock:
            self._round_profile = merge_profiles(
                [self._round_profile, snapshot]
            )

    def _on_plan_done(
        self,
        plan_id: int,
        queries,
        future,
        manifest: ScenarioManifest | None = None,
    ) -> None:
        if manifest is not None and self.plane is not None:
            self.plane.release(manifest)
        try:
            result: PlanResult = future.result()
        except Exception as exc:  # noqa: BLE001 - plan-level isolation
            self._plan_failed(plan_id, queries, exc)
            return
        if result.elapsed_s > 0:
            self._plan_ewma.ewma(result.elapsed_s, alpha=0.2)
        self._merge_round_profile(result.round_profile)
        self._note_worker_backend(result)
        self.stats.inc("faults_recovered", len(result.recovered_faults))
        if result.slide_advances:
            self.stats.inc("slide_advances", result.slide_advances)
            self.stats.inc("stable_vertices", result.stable_vertices)
            self.stats.inc("slide_vertices", result.slide_vertices)
        for q in queries:
            summaries = result.summaries.get(q.request.source)
            q.trace.mark("worker_start", result.worker_start_mono)
            q.trace.mark("worker_end", result.worker_end_mono)
            if summaries is None:
                # the worker never computed this source: caching the
                # absence would serve a fabricated empty answer as "ok"
                # until the next ingest — resolve as an error instead
                self.stats.inc("missing_source")
                self.stats.inc("errored")
                self._finish(
                    q,
                    QueryResponse(
                        q.request.id,
                        "error",
                        epoch=q.epoch,
                        plan_id=plan_id,
                        error=(
                            f"plan {plan_id} result is missing source "
                            f"{q.request.source} (not cached)"
                        ),
                    ),
                )
                continue
            self.stats.inc("completed")
            self.cache.put(q.request, q.epoch, summaries)
            self._finish(
                q,
                QueryResponse(
                    q.request.id,
                    "ok",
                    epoch=q.epoch,
                    plan_id=plan_id,
                    summaries=summaries,
                ),
            )
        with self._inflight_lock:
            self._inflight.discard(plan_id)

    def _plan_failed(
        self,
        plan_id: int,
        queries,
        exc: BaseException,
        manifest: ScenarioManifest | None = None,
    ) -> None:
        if manifest is not None and self.plane is not None:
            self.plane.release(manifest)
        retryable = [q for q in queries if not q.retried]
        terminal = [q for q in queries if q.retried]
        for q in retryable:
            q.retried = True
        if retryable:
            self.stats.inc("retries", len(retryable))
            # degrade: one singleton plan per query, no armed faults
            for q in retryable:
                self._submit_plan([q], degraded=True)
        for q in terminal:
            self.stats.inc("errored")
            self._finish(
                q,
                QueryResponse(
                    q.request.id,
                    "error",
                    epoch=q.epoch,
                    plan_id=plan_id,
                    error=f"{type(exc).__name__}: {exc}",
                ),
            )
        with self._inflight_lock:
            self._inflight.discard(plan_id)
