"""Concurrent evolving-graph query service.

The serving layer over the reproduction: accept many concurrent queries
(graph, algorithm, source, snapshot window), coalesce the compatible ones
into shared multi-query BOE plans (``repro.core.multi_query``), execute
them on a process pool with per-worker scenario caches, cache results
until the next ingested delta invalidates them, and measure the whole
thing with a seeded open-loop load harness.

Modules:

* :mod:`repro.service.request` — query/response dataclasses, validation;
* :mod:`repro.service.batcher` — admission queue + coalescing rules;
* :mod:`repro.service.pool`    — worker pool, per-worker caches, budgets,
  fault points;
* :mod:`repro.service.cache`   — LRU result cache, ingest invalidation;
* :mod:`repro.service.ingest`  — delta batches: synthesize, apply (slide);
* :mod:`repro.service.core`    — the :class:`QueryService` orchestrator;
* :mod:`repro.service.wal`     — write-ahead log: durable ingest, crash
  recovery, compaction;
* :mod:`repro.service.server`  — JSON-lines front end (``mega-repro serve``);
* :mod:`repro.service.replica` — WAL-shipping read replicas: follower
  mode, promotion, fencing (``mega-repro serve --follow``);
* :mod:`repro.service.cluster` — self-healing N-node replication group:
  heartbeat failure detection, quorum acks, fence-CAS leader election
  (``mega-repro serve --cluster N``);
* :mod:`repro.service.loadgen` — load harness (``mega-repro serve-bench``);
* :mod:`repro.service.drill`   — SIGKILL-and-recover, failover, shard
  kill, and cluster chaos drills (``serve-bench --crash-at-epoch`` /
  ``--failover-at-epoch`` / ``--shard-kill-at-epoch`` / ``--chaos-kill``);
* :mod:`repro.service.sharding` — partitioned serving: per-shard pools,
  shm planes, and WALs behind one scatter-gather front end
  (``mega-repro serve --shards N``).

Observability (span timelines, the metrics registry behind the
``metrics`` op, sampled kernel profiling) lives in :mod:`repro.obs` and
is threaded through every stage here — see docs/OBSERVABILITY.md.
"""

from repro.service.batcher import (
    AdmissionQueue,
    PendingQuery,
    coalesce,
    split_expired,
)
from repro.service.cache import ResultCache
from repro.service.cluster import (
    CLUSTER_FAULT_POINTS,
    ClusterNode,
    HeartbeatMonitor,
)
from repro.service.core import (
    NotPrimaryError,
    QueryService,
    ReplicationGapError,
    ServiceConfig,
    ServiceStats,
    SimulatedCrash,
    parse_ack_mode,
)
from repro.service.drill import (
    ChaosReport,
    DrillReport,
    FailoverReport,
    ShardKillReport,
    run_chaos_kill_drill,
    run_crash_drill,
    run_failover_drill,
    run_shard_kill_drill,
)
from repro.service.ingest import DeltaBatch, apply_delta, synthesize_delta
from repro.service.loadgen import BenchReport, LoadSpec, run_load
from repro.service.pool import PlanPayload, PlanResult, WorkerPool
from repro.service.replica import REPLICA_FAULT_POINTS, ReplicaServer
from repro.service.request import (
    QueryRequest,
    QueryResponse,
    SnapshotSummary,
    validate_request,
)
from repro.service.server import ServiceFrontend, serve_stdio
from repro.service.sharding import ScatterGatherFrontEnd, ShardManager
from repro.service.wal import (
    WalFencedError,
    WalPosition,
    WalRecovery,
    WalWriteError,
    WriteAheadLog,
    advance_fence,
    current_fence_token,
    read_follower_cursors,
    read_from,
    recover_wal,
    safe_follower_id,
    try_claim_fence,
)

__all__ = [
    "AdmissionQueue",
    "BenchReport",
    "CLUSTER_FAULT_POINTS",
    "ChaosReport",
    "ClusterNode",
    "DeltaBatch",
    "DrillReport",
    "FailoverReport",
    "HeartbeatMonitor",
    "LoadSpec",
    "NotPrimaryError",
    "PendingQuery",
    "PlanPayload",
    "PlanResult",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "REPLICA_FAULT_POINTS",
    "ReplicaServer",
    "ReplicationGapError",
    "ResultCache",
    "ScatterGatherFrontEnd",
    "ServiceConfig",
    "ServiceFrontend",
    "ServiceStats",
    "ShardKillReport",
    "ShardManager",
    "SimulatedCrash",
    "SnapshotSummary",
    "WalFencedError",
    "WalPosition",
    "WalRecovery",
    "WalWriteError",
    "WorkerPool",
    "WriteAheadLog",
    "advance_fence",
    "apply_delta",
    "coalesce",
    "current_fence_token",
    "parse_ack_mode",
    "read_follower_cursors",
    "read_from",
    "recover_wal",
    "run_chaos_kill_drill",
    "run_crash_drill",
    "run_failover_drill",
    "run_load",
    "run_shard_kill_drill",
    "safe_follower_id",
    "serve_stdio",
    "split_expired",
    "synthesize_delta",
    "try_claim_fence",
    "validate_request",
]
