"""The ingest path: append a delta batch and advance the window.

An evolving-graph service is defined by serving *while the graph changes*.
A :class:`DeltaBatch` is one transition's worth of edge churn (``Δ+`` and
``Δ-``); applying it slides the window forward one snapshot via
:func:`repro.evolving.window.slide_window`, exactly as
:class:`~repro.core.window_server.WindowServer` does — but here the value
maintenance is left to the workers, which recompute coalesced BOE plans on
the slid scenario on demand.

Because workers are separate processes, the live scenario is defined
*reproducibly*: the base scenario (graph, scale, snapshots — deterministic
by construction) plus the ordered list of ingested deltas.  Any worker can
reconstruct epoch ``e`` by replaying ``deltas[:e]``, and an incremental
worker only replays the suffix it has not seen (:mod:`repro.service.pool`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.evolving.snapshots import EvolvingScenario
from repro.evolving.window import slide_window
from repro.graph.edges import EdgeList

__all__ = ["DeltaBatch", "apply_delta", "synthesize_delta"]


@dataclass
class DeltaBatch:
    """One transition of edge churn, in plain arrays (cheap to pickle)."""

    add_src: np.ndarray
    add_dst: np.ndarray
    add_wt: np.ndarray
    del_src: np.ndarray
    del_dst: np.ndarray
    #: provenance for logs/benchmarks (seeded synthesis or external feed)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.add_src = np.asarray(self.add_src, dtype=np.int64)
        self.add_dst = np.asarray(self.add_dst, dtype=np.int64)
        self.add_wt = np.asarray(self.add_wt, dtype=np.float64)
        self.del_src = np.asarray(self.del_src, dtype=np.int64)
        self.del_dst = np.asarray(self.del_dst, dtype=np.int64)

    @property
    def n_additions(self) -> int:
        return int(self.add_src.size)

    @property
    def n_deletions(self) -> int:
        return int(self.del_src.size)

    def additions(self, n_vertices: int) -> EdgeList:
        return EdgeList(n_vertices, self.add_src, self.add_dst, self.add_wt)

    def deletions(self) -> list[tuple[int, int]]:
        return list(zip(self.del_src.tolist(), self.del_dst.tolist()))

    @classmethod
    def from_lists(cls, adds, dels, **meta) -> "DeltaBatch":
        """Build from ``[[u, v, w?], ...]`` / ``[[u, v], ...]`` rows
        (the JSON-lines front end's and the WAL's wire format).

        Empty lists are fine (a pure-addition or pure-deletion batch);
        a malformed row raises ``ValueError`` with its index, never an
        ``IndexError``/``TypeError`` from deep inside numpy.
        """
        try:
            adds = [tuple(a) for a in adds]
            dels = [tuple(d) for d in dels]
        except TypeError as exc:
            raise ValueError(f"delta rows must be [u, v(, w)] lists: {exc}") from exc
        for i, a in enumerate(adds):
            if len(a) not in (2, 3):
                raise ValueError(
                    f"addition row {i} must be [u, v] or [u, v, w]; got {a!r}"
                )
        for i, d in enumerate(dels):
            if len(d) != 2:
                raise ValueError(
                    f"deletion row {i} must be [u, v]; got {d!r}"
                )
        return cls(
            add_src=np.array([a[0] for a in adds], dtype=np.int64),
            add_dst=np.array([a[1] for a in adds], dtype=np.int64),
            add_wt=np.array(
                [a[2] if len(a) > 2 else 1.0 for a in adds], dtype=np.float64
            ),
            del_src=np.array([d[0] for d in dels], dtype=np.int64),
            del_dst=np.array([d[1] for d in dels], dtype=np.int64),
            meta=dict(meta),
        )

    # -- WAL wire format ---------------------------------------------------

    def to_wire(self) -> dict:
        """JSON-able form, exact enough to replay: ``from_wire`` inverts."""
        return {
            "adds": [
                [int(u), int(v), float(w)]
                for u, v, w in zip(self.add_src, self.add_dst, self.add_wt)
            ],
            "dels": [
                [int(u), int(v)]
                for u, v in zip(self.del_src, self.del_dst)
            ],
            "meta": dict(self.meta),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "DeltaBatch":
        return cls.from_lists(
            wire.get("adds", []), wire.get("dels", []),
            **wire.get("meta", {}),
        )


def apply_delta(scenario: EvolvingScenario, delta: DeltaBatch) -> EvolvingScenario:
    """Advance the window by ``delta``; returns a *new* scenario.

    Pure — safe to apply to a scenario held in a shared cache (workers
    must never mutate cached scenarios in place; see
    :func:`repro.experiments.runner.scenario_cache`).
    """
    slide = slide_window(
        scenario.unified,
        delta.additions(scenario.n_vertices),
        delta.deletions(),
    )
    meta = dict(scenario.metadata)
    meta["epoch"] = meta.get("epoch", 0) + 1
    return EvolvingScenario(
        slide.unified,
        source=scenario.source,
        name=scenario.name,
        metadata=meta,
    )


def synthesize_delta(
    scenario: EvolvingScenario,
    seed: int,
    n_add: int = 8,
    n_del: int = 8,
) -> DeltaBatch:
    """Seeded churn for the load harness (and `serve` without a feed).

    Deletions are drawn from the scenario's *common* edges — present in
    every snapshot and untouched inside the window, so the CommonGraph
    one-change-per-edge rule can never reject them no matter how many
    deltas have been applied before.  Additions are sampled pairs absent
    from the union.
    """
    u = scenario.unified
    rng = np.random.default_rng(seed)

    common = np.flatnonzero((u.add_step < 0) & (u.del_step < 0))
    n_del = min(n_del, common.size)
    del_slots = rng.choice(common, size=n_del, replace=False)
    del_src = u.graph.src_of_edge[del_slots]
    del_dst = u.graph.dst[del_slots]

    n_vertices = u.n_vertices
    union_keys = set(
        (u.graph.src_of_edge.astype(np.int64) * n_vertices + u.graph.dst).tolist()
    )
    add_src, add_dst = [], []
    attempts = 0
    while len(add_src) < n_add and attempts < 50 * max(n_add, 1):
        attempts += 1
        s = int(rng.integers(n_vertices))
        d = int(rng.integers(n_vertices))
        key = s * n_vertices + d
        if s == d or key in union_keys:
            continue
        union_keys.add(key)
        add_src.append(s)
        add_dst.append(d)
    add_wt = rng.uniform(1.0, 2.0, size=len(add_src))

    return DeltaBatch(
        add_src=np.array(add_src, dtype=np.int64),
        add_dst=np.array(add_dst, dtype=np.int64),
        add_wt=add_wt,
        del_src=del_src.astype(np.int64),
        del_dst=del_dst.astype(np.int64),
        meta={"seed": int(seed), "synthetic": True},
    )
