"""Query/response dataclasses and admission-time validation.

A :class:`QueryRequest` names a graph (Table 2 short name), an algorithm,
a source vertex, and optionally a contiguous snapshot sub-window.  It is
deliberately tiny — everything heavy (the scenario, the plan, the values)
lives in the workers — so requests are cheap to queue, coalesce, and ship
across the process boundary.

Responses carry per-snapshot *summaries* (reached count + a finite-value
checksum) rather than full value arrays: compact enough to stream over the
JSON-lines front end, strong enough for parity checks and result caching.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.algorithms import ALGORITHMS
from repro.workloads import DATASETS, SCALES

__all__ = [
    "QueryRequest",
    "QueryResponse",
    "SnapshotSummary",
    "validate_request",
]

_ids = itertools.count()


def _next_id() -> int:
    return next(_ids)


@dataclass
class QueryRequest:
    """One evolving-graph query: graph, algorithm, source, window."""

    graph: str
    algo: str
    source: int
    #: inclusive snapshot sub-window, or None for the full history
    window: tuple[int, int] | None = None
    #: "eval" = functional executor; "simulate" = accelerator model
    mode: str = "eval"
    #: shed this query if not *executing* within this many seconds of
    #: admission (None = wait forever); shed responses carry a
    #: ``retry_after`` hint so clients back off instead of piling on
    deadline_s: float | None = None
    id: int = field(default_factory=_next_id)

    def compat_key(self, epoch: int) -> tuple:
        """Queries sharing this key may ride one coalesced BOE plan.

        The multi-query plan fixes the algorithm (one edge function per
        run, Table 1), the unified CSR (graph + epoch), and the snapshot
        window; only the source vertex varies per query.
        """
        return (self.graph, self.algo, self.window, self.mode, epoch)


@dataclass
class SnapshotSummary:
    """Digest of one query's values on one snapshot."""

    snapshot: int
    reached: int
    checksum: float

    def as_dict(self) -> dict:
        return {
            "snapshot": self.snapshot,
            "reached": self.reached,
            "checksum": self.checksum,
        }


@dataclass
class QueryResponse:
    """Terminal outcome of one request."""

    id: int
    status: str  # "ok" | "cached" | "error" | "rejected" | "shed"
    latency_s: float = 0.0
    epoch: int = 0
    plan_id: int | None = None
    summaries: list[SnapshotSummary] = field(default_factory=list)
    error: str | None = None
    #: for "shed"/"rejected": how long the client should back off before
    #: retrying (seconds, derived from current queue depth and plan time)
    retry_after: float | None = None
    #: per-stage duration breakdown (ms) from the query's span timeline;
    #: populated at resolve time (docs/OBSERVABILITY.md)
    stages: dict[str, float] | None = None

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")

    @property
    def retryable(self) -> bool:
        """Overload outcomes a client may retry after backing off."""
        return self.status in ("shed", "rejected")

    def as_dict(self) -> dict:
        out = {
            "id": self.id,
            "status": self.status,
            "latency_ms": round(self.latency_s * 1e3, 3),
            "epoch": self.epoch,
        }
        if self.plan_id is not None:
            out["plan"] = self.plan_id
        if self.summaries:
            out["snapshots"] = [s.as_dict() for s in self.summaries]
        if self.error is not None:
            out["error"] = self.error
        if self.retry_after is not None:
            out["retry_after_s"] = round(self.retry_after, 3)
        if self.stages:
            out["stages_ms"] = {
                k: round(v, 3) for k, v in self.stages.items()
            }
        return out


def validate_request(
    request: QueryRequest, n_snapshots: int, scale: str | float
) -> None:
    """Admission-time validation: reject malformed queries before queueing.

    Raises ``ValueError`` with an operator-grade message; the service maps
    it to an error response (and the CLI front ends map bad static
    arguments to exit code 2 before any service is built).
    """
    if request.graph not in DATASETS:
        raise ValueError(
            f"unknown graph {request.graph!r}; choose from {sorted(DATASETS)}"
        )
    if request.algo.upper() not in {a.upper() for a in ALGORITHMS}:
        raise ValueError(
            f"unknown algorithm {request.algo!r}; choose from "
            f"{sorted(ALGORITHMS)}"
        )
    if request.mode not in ("eval", "simulate"):
        raise ValueError(f"unknown mode {request.mode!r}; use eval|simulate")
    factor = SCALES[scale] if isinstance(scale, str) else float(scale)
    n_vertices, __ = DATASETS[request.graph].proxy_sizes(factor)
    if not 0 <= int(request.source) < n_vertices:
        raise ValueError(
            f"source {request.source} out of range for {request.graph} "
            f"({n_vertices} vertices at scale {scale})"
        )
    if request.window is not None:
        lo, hi = request.window
        if not 0 <= lo <= hi < n_snapshots:
            raise ValueError(
                f"window [{lo}, {hi}] outside [0, {n_snapshots - 1}]"
            )
    if request.deadline_s is not None and not request.deadline_s > 0:
        raise ValueError(
            f"deadline_s must be positive, got {request.deadline_s}"
        )
