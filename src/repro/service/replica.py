"""WAL-shipping read replicas: tail the primary's log, serve reads, fail over.

The primary's write-ahead log (:mod:`repro.service.wal`) is already a
complete replication stream — ordered, CRC-framed epoch records plus a
compaction snapshot — so a replica needs no second protocol: a
:class:`ReplicaServer` wraps an ordinary :class:`QueryService` in
**follower** mode, tails the primary's WAL directory with the
non-destructive :func:`~repro.service.wal.read_from` cursor, and replays
each new epoch into its own delta logs (and, lazily, its own
shared-memory scenario plane) while serving eval-mode queries from its
own worker pool.  Ingest sent to a follower is refused with a
``not_primary`` redirect (:class:`~repro.service.core.NotPrimaryError`)
— writes have exactly one home.

Consistency contract (docs/SERVICE.md, Replication): a follower always
serves a **prefix of the primary's epoch order**.  Three mechanisms hold
the line:

* records apply through
  :meth:`~repro.service.core.QueryService.apply_replicated`, which is
  idempotent on replays and raises
  :class:`~repro.service.core.ReplicationGapError` on any hole;
* a gap — or a cursor invalidated by compaction (``tail.reset``) —
  triggers a wholesale **re-sync** from the primary's snapshot plus a
  genesis read, never an interpolation across missing epochs;
* replication lag is observable end to end: the follower reports
  ``replication_lag_epochs`` (observed primary tip minus applied epoch)
  in ``health`` and the metrics render, and the primary reports
  per-follower lag by scanning the ``followers/`` cursor files each
  replica checkpoints next to the WAL.

**Promotion** (:meth:`ReplicaServer.promote`) is the failover path: stop
tailing, replay to the WAL tip, write a new fencing token into the WAL
directory at that position (:func:`~repro.service.wal.advance_fence`),
sweep the dead primary's orphaned shm segments, and open a
:class:`~repro.service.wal.WriteAheadLog` with the new token — the node
now accepts ingest, and any late append by the SIGKILLed primary (a
"zombie") lands at or past the fence position with a stale token, so
every subsequent read quarantines it.  ``serve-bench
--failover-at-epoch N`` drives the whole sequence as a drill
(:func:`repro.service.drill.run_failover_drill`).

Two fault points make the replication failure modes provable from the
``mega-repro faults`` campaign: ``replica.stale-read`` withholds a
freshly tailed batch for one poll (lag becomes visible, then the replica
converges), and ``replica.tail-gap`` drops one tailed record (the next
record trips gap detection and forces a snapshot re-sync).
"""

from __future__ import annotations

import logging
import pathlib
import threading
import time
from typing import Callable

from repro.resilience.faults import Fire, maybe_fire, register_fault_point
from repro.service.core import (
    QueryService,
    ReplicationGapError,
    ServiceConfig,
)
from repro.service.shm import sweep_orphan_segments
from repro.service.wal import (
    WalPosition,
    WalRecovery,
    WriteAheadLog,
    advance_fence,
    drop_follower_cursor,
    read_from,
    read_snapshot,
    safe_follower_id,
    write_follower_cursor,
)

__all__ = [
    "REPLICA_FAULT_POINTS",
    "ReplicaServer",
]

log = logging.getLogger(__name__)

register_fault_point(
    "replica.stale-read",
    "service/replica.py",
    "the tailer withholds a freshly read batch for one poll: the replica "
    "serves stale epochs and its replication lag becomes visible",
)
register_fault_point(
    "replica.tail-gap",
    "service/replica.py",
    "one tailed record is dropped before apply: the next record trips "
    "gap detection and the replica re-syncs from the snapshot",
)

#: fault points that fire inside the replica tailer
REPLICA_FAULT_POINTS = ("replica.stale-read", "replica.tail-gap")


class ReplicaServer:
    """A read replica: follower-mode query service plus the WAL tailer.

    ``poll_once()`` is the synchronous unit of replication (one tail read
    + apply); ``start()`` wraps it in a daemon thread polling every
    ``poll_interval_s``.  Deterministic tests and the fault campaign call
    ``poll_once()`` directly.
    """

    def __init__(
        self,
        primary_wal_dir: str | pathlib.Path,
        config: ServiceConfig | None = None,
        follower_id: str = "replica-1",
        poll_interval_s: float = 0.05,
        fault_hook: Callable[[str], Fire | None] | None = None,
        service: QueryService | None = None,
    ) -> None:
        self.primary_wal_dir = pathlib.Path(primary_wal_dir)
        # the id becomes a file name under <wal>/followers/ — reject
        # anything that could traverse out of that directory
        self.follower_id = safe_follower_id(follower_id)
        self.poll_interval_s = float(poll_interval_s)
        self._maybe_fire = fault_hook if fault_hook is not None else maybe_fire
        # a demoted primary re-enters follower mode with its service (and
        # worker pool, caches, front end) intact; fresh followers build
        # their own
        self.service = service if service is not None else QueryService(config)
        self.service.role = "follower"
        self.service.primary_wal_dir = str(self.primary_wal_dir)
        self.service.replica = self
        self._lock = threading.Lock()
        #: serializes whole replication units — a re-sync, one poll's
        #: apply, a promotion — so ``promote()`` can never run against a
        #: half-installed snapshot (it waits for the in-flight re-sync to
        #: finish and then proceeds from consistent state)
        self._repl_lock = threading.RLock()
        self.resync_in_progress = False
        self._position = WalPosition()
        #: highest primary epoch per graph this replica has *observed* in
        #: the stream (applied or not) — the basis of self-reported lag
        self._seen_epochs: dict[str, int] = {}
        self.resyncs = 0
        self.fenced_skipped = 0
        self.tail_warnings = 0
        self.promoted = False
        self._tailing = False
        self._thread: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self, tail_thread: bool = True) -> "ReplicaServer":
        """Start serving: initial sync from the primary's WAL, then tail."""
        self.service.start()
        self._resync()
        if tail_thread:
            self._tailing = True
            self._thread = threading.Thread(
                target=self._tail_loop, name="mega-replica-tail", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 60.0) -> bool:
        self._stop_tailer()
        return self.service.stop(drain=drain, timeout=timeout)

    def _stop_tailer(self) -> None:
        self._tailing = False
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "ReplicaServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _tail_loop(self) -> None:
        while self._tailing and not self.promoted:
            try:
                self.poll_once()
            except Exception:  # noqa: BLE001 - tailer must outlive one bad poll
                log.exception("replica tailer: poll failed; retrying")
            time.sleep(self.poll_interval_s)

    # -- replication --------------------------------------------------------

    def _resync(self) -> None:
        """Wholesale re-sync: snapshot + genesis read of surviving segments.

        The only correct answer to a compaction that outran the cursor or
        a gap in the stream — record-by-record resume would interpolate
        across missing epochs and break the prefix contract.
        """
        with self._repl_lock:
            self.resync_in_progress = True
            try:
                snapshot = read_snapshot(self.primary_wal_dir)
                tail = read_from(self.primary_wal_dir)
                with self._lock:
                    self.fenced_skipped += tail.fenced
                    self.tail_warnings += len(tail.warnings)
                recovery = WalRecovery(
                    snapshot=snapshot, records=tail.records
                )
                self.service._install_recovery(recovery)
                graphs = set((snapshot or {}).get("logs", {}))
                graphs.update(
                    r.get("graph", "")
                    for r in tail.records if r.get("op") == "ingest"
                )
                for graph in graphs:
                    self.service.cache.invalidate_graph(graph)
                    epoch = self.service.epoch(graph)
                    with self._lock:
                        if epoch > self._seen_epochs.get(graph, 0):
                            self._seen_epochs[graph] = epoch
                with self._lock:
                    self._position = tail.position
                    self.resyncs += 1
            finally:
                self.resync_in_progress = False
        self._write_cursor()
        log.info(
            "replica %s: re-synced to %s (resync #%d)",
            self.follower_id, tail.position, self.resyncs,
        )

    def poll_once(self) -> int:
        """One replication step: read new records, apply them, checkpoint.

        Returns the number of epochs applied.  Never raises on stream
        damage — gaps and compaction resets degrade to a re-sync.
        """
        if self.promoted:
            return 0
        with self._repl_lock:
            return self._poll_locked()

    def _poll_locked(self) -> int:
        with self._lock:
            position = self._position
        tail = read_from(self.primary_wal_dir, position)
        if tail.reset:
            before = self._applied_epochs()
            self._resync()
            after = self._applied_epochs()
            return max(0, sum(after.values()) - sum(before.values()))
        with self._lock:
            self.fenced_skipped += tail.fenced
            self.tail_warnings += len(tail.warnings)
        records = [r for r in tail.records if r.get("op") == "ingest"]
        for record in records:
            graph = record.get("graph", "")
            epoch = int(record.get("epoch", 0))
            with self._lock:
                if epoch > self._seen_epochs.get(graph, 0):
                    self._seen_epochs[graph] = epoch
        if records:
            fire = self._maybe_fire("replica.stale-read")
            if fire is not None:
                # withhold the whole batch and do NOT advance the cursor:
                # the replica keeps serving its current (stale) epochs and
                # the lag gauge shows exactly how far behind it is; the
                # next poll re-reads and converges
                fire.note(withheld=len(records), at=position.key())
                return 0
        applied = 0
        for record in records:
            graph = record.get("graph", "")
            epoch = int(record.get("epoch", 0))
            fire = self._maybe_fire("replica.tail-gap")
            if fire is not None:
                # drop this record on the floor: the next record for the
                # graph cannot extend the log and forces a re-sync
                fire.note(graph=graph, epoch=epoch)
                continue
            try:
                if self.service.apply_replicated(
                    graph, epoch, record["delta"]
                ):
                    applied += 1
            except ReplicationGapError as exc:
                log.warning(
                    "replica %s: %s; re-syncing", self.follower_id, exc
                )
                self._resync()
                return applied
        with self._lock:
            self._position = tail.position
        self._write_cursor()
        return applied

    def _applied_epochs(self) -> dict[str, int]:
        with self.service._graphs_lock:
            return {
                g: lg.epoch for g, lg in self.service._graphs.items()
            }

    def _write_cursor(self) -> None:
        """Checkpoint this follower's cursor next to the primary's WAL."""
        try:
            with self._lock:
                position = self._position
            write_follower_cursor(
                self.primary_wal_dir,
                self.follower_id,
                position,
                self._applied_epochs(),
            )
        except OSError as exc:  # pragma: no cover - disk trouble
            log.warning(
                "replica %s: cursor write failed: %s", self.follower_id, exc
            )

    # -- observability ------------------------------------------------------

    def position(self) -> WalPosition:
        """The replication cursor (frozen, so safe to hand out)."""
        with self._lock:
            return self._position

    def lag_epochs(self) -> int:
        """Epochs this replica trails the primary tip it has observed."""
        applied = self._applied_epochs()
        with self._lock:
            seen = dict(self._seen_epochs)
        return max(0, max(
            (e - applied.get(g, 0) for g, e in seen.items()), default=0
        ))

    def health(self) -> dict:
        """Replica-side fields merged into the service's ``health`` op."""
        with self._lock:
            position = self._position
        return {
            "follower_id": self.follower_id,
            "primary_wal_dir": str(self.primary_wal_dir),
            "cursor": position.as_dict(),
            "resyncs": self.resyncs,
            "resync_in_progress": self.resync_in_progress,
            "fenced_skipped": self.fenced_skipped,
            "tail_warnings": self.tail_warnings,
            "promoted": self.promoted,
        }

    # -- failover -----------------------------------------------------------

    def promote(self, claimed_token: int | None = None) -> int:
        """Become the primary: catch up, fence the old role, accept ingest.

        1. stop the tailer and replay to the WAL tip (an in-progress tail
           frame is an *unacknowledged* append by the dead primary and is
           correctly left behind);
        2. :func:`~repro.service.wal.advance_fence` at the consumed tip —
           the new token invalidates any later append by a zombie primary
           holding the old one;
        3. sweep the dead primary's orphaned shm segments and open a
           :class:`~repro.service.wal.WriteAheadLog` with the new token;
        4. flip the role: ingest is accepted, the follower cursor file is
           dropped.

        Returns the new fencing token.  Idempotent: a second call returns
        the token already held.

        ``claimed_token`` is the election path: the cluster supervisor
        already won the fence CAS (:func:`~repro.service.wal
        .try_claim_fence`), so the token is adopted instead of advanced —
        advancing again would burn a token with no owner.

        Serialized against the tailer via the replication lock: a
        promotion that lands during an in-flight wholesale re-sync waits
        for the re-sync to complete rather than fencing and serving from
        a partially-installed snapshot.
        """
        if self.promoted:
            return self.service.wal.fence_token if self.service.wal else 0
        self._stop_tailer()
        with self._repl_lock:
            return self._promote_locked(claimed_token)

    def _promote_locked(self, claimed_token: int | None) -> int:
        # final catch-up, bypassing the fault hooks: promotion must land
        # on the true tip even mid-campaign
        while True:
            with self._lock:
                position = self._position
            tail = read_from(self.primary_wal_dir, position)
            if tail.reset:
                self._resync()
                continue
            with self._lock:
                self.fenced_skipped += tail.fenced
                self.tail_warnings += len(tail.warnings)
            for record in tail.records:
                if record.get("op") != "ingest":
                    continue
                graph = record.get("graph", "")
                epoch = int(record.get("epoch", 0))
                with self._lock:
                    if epoch > self._seen_epochs.get(graph, 0):
                        self._seen_epochs[graph] = epoch
                try:
                    self.service.apply_replicated(
                        graph, epoch, record["delta"]
                    )
                except ReplicationGapError:
                    break
            else:
                with self._lock:
                    self._position = tail.position
                break
            self._resync()
        with self._lock:
            position = self._position
        if claimed_token is None:
            token = advance_fence(self.primary_wal_dir, position)
        else:
            token = int(claimed_token)
        # the dead primary cannot unlink its own shm segments; as the new
        # owner of the serving role we reclaim them before publishing
        sweep_orphan_segments()
        config = self.service.config
        self.service.wal = WriteAheadLog(
            self.primary_wal_dir,
            fsync=config.wal_fsync,
            segment_bytes=config.wal_segment_bytes,
            fault_hook=self.service._maybe_fire,
            fence_token=token,
        )
        self.service.role = "primary"
        self.service.primary_wal_dir = None
        self.promoted = True
        drop_follower_cursor(self.primary_wal_dir, self.follower_id)
        log.info(
            "replica %s: promoted to primary at %s with fence token %d",
            self.follower_id, position, token,
        )
        return token
