"""Write-ahead log for the ingest path: durability before acknowledgement.

PR 2 defined the live state of an evolving graph *reproducibly* — the
deterministic base scenario plus the ordered ingest log — but kept that
log only in coordinator memory, so a crash after an acknowledged
``ingest`` silently lost churn and reset epochs.  This module makes the
log the durable source of truth (the streaming-systems convention): every
delta batch is appended here **before** the service acknowledges it, and
recovery replays the segments to rebuild per-graph delta logs exactly.

On-disk format, designed so recovery never has to trust a torn or
bit-rotted file:

* a *segment* (``wal-00000001.seg``) is a sequence of records, each
  ``[4-byte big-endian payload length][4-byte CRC32 of payload][payload]``
  with the payload being one JSON object;
* segments rotate at ``segment_bytes`` so no single file grows unbounded;
* ``snapshot.json`` (written atomically via the
  :mod:`repro.resilience.checkpoint` machinery) captures the full
  per-graph delta logs at a compaction point; compaction deletes every
  segment, so replay cost stays bounded by the churn since the last
  snapshot.

Recovery policy (:func:`recover_wal`): a torn tail — a record whose
promised bytes are missing — is *expected* (the writer died mid-write,
necessarily before acknowledging) and is truncated with a warning; a
record whose CRC32 does not match (bit rot, partial overwrite) is
**quarantined** to ``quarantine.log`` and skipped with a warning.  Neither
ever raises: losing an unacknowledged suffix is correct, and losing an
acknowledged record to corruption must degrade the one graph it belongs
to, not crash the service (:meth:`repro.service.core.QueryService.start`
skips the now-unappliable epochs with a warning).

Two registered fault points make both paths provable from the campaign
(``mega-repro faults``): ``service.wal-torn-write`` cuts a record short
mid-append, ``service.wal-corrupt-record`` flips a payload byte after the
CRC is computed.
"""

from __future__ import annotations

import json
import logging
import os
import pathlib
import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.resilience.checkpoint import atomic_write
from repro.resilience.faults import Fire, maybe_fire, register_fault_point

__all__ = [
    "FSYNC_POLICIES",
    "WalRecovery",
    "WalWriteError",
    "WriteAheadLog",
    "recover_wal",
]

log = logging.getLogger(__name__)

register_fault_point(
    "service.wal-torn-write",
    "service/wal.py",
    "a WAL append is cut short mid-record (writer died before the ack)",
)
register_fault_point(
    "service.wal-corrupt-record",
    "service/wal.py",
    "a committed WAL record's payload is corrupted on disk (CRC mismatch)",
)

_HEADER = struct.Struct(">II")  # payload length, CRC32(payload)
#: a length prefix beyond this is treated as frame corruption, not a record
MAX_RECORD_BYTES = 64 * 1024 * 1024
#: fsync after every append / every ``sync_every`` appends / never
FSYNC_POLICIES = ("always", "batch", "never")

SNAPSHOT_NAME = "snapshot.json"
QUARANTINE_NAME = "quarantine.log"
_SEGMENT_GLOB = "wal-*.seg"


class WalWriteError(RuntimeError):
    """An append failed before the record was durably committed."""


def _segment_name(index: int) -> str:
    return f"wal-{index:08d}.seg"


def _segment_index(path: pathlib.Path) -> int:
    return int(path.stem.split("-", 1)[1])


def _segments(wal_dir: pathlib.Path) -> list[pathlib.Path]:
    return sorted(wal_dir.glob(_SEGMENT_GLOB), key=_segment_index)


class WriteAheadLog:
    """Append-only, CRC-framed, segment-rotated log of ingest records.

    Opening always starts a *fresh* segment: recovery has already
    truncated any torn tail, and never appending after a previously
    written region means a crash can only tear the very last record.
    """

    def __init__(
        self,
        wal_dir: str | pathlib.Path,
        fsync: str = "always",
        segment_bytes: int = 4 * 1024 * 1024,
        sync_every: int = 32,
        fault_hook: Callable[[str], Fire | None] | None = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; choose from {FSYNC_POLICIES}"
            )
        self.wal_dir = pathlib.Path(wal_dir)
        self.wal_dir.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_bytes = int(segment_bytes)
        self.sync_every = max(1, int(sync_every))
        self._maybe_fire = fault_hook if fault_hook is not None else maybe_fire
        existing = _segments(self.wal_dir)
        self._segment_index = (
            _segment_index(existing[-1]) + 1 if existing else 1
        )
        self._fh = None
        self._segment_size = 0
        self.records = 0  # appended this process
        self.synced = 0  # appended and known fsync-durable
        self.compactions = 0

    # -- write path --------------------------------------------------------

    @property
    def segment_path(self) -> pathlib.Path:
        return self.wal_dir / _segment_name(self._segment_index)

    def _open_segment(self):
        if self._fh is None:
            self._fh = open(self.segment_path, "ab")
            self._segment_size = self._fh.tell()
        return self._fh

    def append(self, record: dict) -> int:
        """Durably append one JSON record; returns its ordinal this session.

        Raises :class:`WalWriteError` if the record could not be committed
        — the caller must NOT acknowledge the operation then.
        """
        payload = json.dumps(record, sort_keys=True).encode("utf-8")
        crc = zlib.crc32(payload) & 0xFFFFFFFF

        fire = self._maybe_fire("service.wal-corrupt-record")
        if fire is not None:
            # flip one payload byte *after* the CRC was computed: the
            # record commits (and is acknowledged) but reads back bad
            pos = int(fire.rng.integers(len(payload)))
            corrupted = bytearray(payload)
            corrupted[pos] ^= 0xFF
            fire.note(byte=pos, segment=self.segment_path.name)
            payload = bytes(corrupted)

        fh = self._open_segment()
        frame = _HEADER.pack(len(payload), crc) + payload

        fire = self._maybe_fire("service.wal-torn-write")
        if fire is not None:
            # the writer "dies" mid-record: half the frame reaches disk
            # and the append fails before any acknowledgement.  Rotate so
            # this process's later appends land in a clean segment (a real
            # torn write implies the process is gone).
            torn = frame[: max(1, len(frame) // 2)]
            fh.write(torn)
            fh.flush()
            os.fsync(fh.fileno())
            fire.note(
                segment=self.segment_path.name,
                written=len(torn),
                expected=len(frame),
            )
            self.rotate()
            raise WalWriteError(
                f"injected torn write in {self.wal_dir} "
                f"({len(torn)}/{len(frame)} bytes)"
            )

        fh.write(frame)
        fh.flush()
        self.records += 1
        self._segment_size += len(frame)
        if self.fsync == "always" or (
            self.fsync == "batch" and self.records % self.sync_every == 0
        ):
            os.fsync(fh.fileno())
            self.synced = self.records
        if self._segment_size >= self.segment_bytes:
            self.rotate()
        return self.records

    def sync(self) -> None:
        """Force everything appended so far onto stable storage."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
        self.synced = self.records

    def rotate(self) -> None:
        """Close the current segment and start the next one."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None
            self.synced = self.records
        self._segment_index += 1
        self._segment_size = 0

    # -- compaction --------------------------------------------------------

    def compact(self, snapshot: dict) -> pathlib.Path:
        """Atomically persist ``snapshot`` and drop every segment.

        The caller must guarantee no append races this call (the service
        holds its ingest lock): the snapshot then covers every committed
        record, so deleting the segments loses nothing and replay cost
        resets to zero.
        """
        path = self.wal_dir / SNAPSHOT_NAME
        atomic_write(path, json.dumps(snapshot, sort_keys=True))
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        for segment in _segments(self.wal_dir):
            segment.unlink()
        self._segment_index += 1
        self._segment_size = 0
        self.synced = self.records
        self.compactions += 1
        return path

    def close(self) -> None:
        if self._fh is not None:
            self.sync()
            self._fh.close()
            self._fh = None

    def stats(self) -> dict:
        return {
            "enabled": True,
            "dir": str(self.wal_dir),
            "segments": len(_segments(self.wal_dir)),
            "records": self.records,
            "synced": self.synced,
            "lag_records": self.records - self.synced,
            "compactions": self.compactions,
            "fsync": self.fsync,
        }


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------


@dataclass
class WalRecovery:
    """Everything :func:`recover_wal` found, plus what it had to repair."""

    snapshot: dict | None = None
    records: list[dict] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    truncated_tail: bool = False
    quarantined: int = 0

    @property
    def clean(self) -> bool:
        return not self.warnings

    def summary(self) -> dict:
        return {
            "records": len(self.records),
            "snapshot": self.snapshot is not None,
            "warnings": len(self.warnings),
            "truncated_tail": self.truncated_tail,
            "quarantined": self.quarantined,
        }


def _quarantine(wal_dir: pathlib.Path, segment: str, offset: int,
                payload: bytes, reason: str) -> None:
    entry = json.dumps(
        {
            "segment": segment,
            "offset": offset,
            "reason": reason,
            "payload_hex": payload.hex(),
        },
        sort_keys=True,
    )
    with open(wal_dir / QUARANTINE_NAME, "a") as fh:
        fh.write(entry + "\n")


def _scan_segment(
    wal_dir: pathlib.Path,
    segment: pathlib.Path,
    is_last: bool,
    out: WalRecovery,
) -> Iterator[dict]:
    data = segment.read_bytes()
    offset = 0
    while offset < len(data):
        header_end = offset + _HEADER.size
        torn = None
        if header_end > len(data):
            torn = f"short header ({len(data) - offset} bytes)"
        else:
            length, crc = _HEADER.unpack_from(data, offset)
            if length == 0 or length > MAX_RECORD_BYTES:
                torn = f"implausible record length {length}"
            elif header_end + length > len(data):
                torn = (
                    f"record promises {length} bytes, "
                    f"{len(data) - header_end} present"
                )
        if torn is not None:
            if is_last:
                os.truncate(segment, offset)
                out.warnings.append(
                    f"{segment.name}: torn tail at byte {offset} ({torn}); "
                    f"truncated"
                )
            else:
                out.warnings.append(
                    f"{segment.name}: torn record at byte {offset} ({torn}) "
                    f"in a rotated segment; skipping its remainder"
                )
            out.truncated_tail = True
            return
        payload = data[header_end: header_end + length]
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            _quarantine(wal_dir, segment.name, offset, payload, "crc-mismatch")
            out.warnings.append(
                f"{segment.name}: CRC mismatch at byte {offset}; "
                f"record quarantined"
            )
            out.quarantined += 1
            offset = header_end + length
            continue
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            _quarantine(wal_dir, segment.name, offset, payload,
                        f"bad-json: {exc}")
            out.warnings.append(
                f"{segment.name}: undecodable record at byte {offset}; "
                f"record quarantined"
            )
            out.quarantined += 1
            offset = header_end + length
            continue
        yield record
        offset = header_end + length


def recover_wal(wal_dir: str | pathlib.Path) -> WalRecovery:
    """Read back a WAL directory: snapshot (if any) plus surviving records.

    Never raises on damaged data — a torn tail is truncated, CRC-failing
    records are quarantined, and every repair is a warning on the returned
    :class:`WalRecovery` (the service logs them).
    """
    wal_dir = pathlib.Path(wal_dir)
    out = WalRecovery()
    if not wal_dir.exists():
        return out
    snapshot_path = wal_dir / SNAPSHOT_NAME
    if snapshot_path.exists():
        try:
            out.snapshot = json.loads(snapshot_path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            # snapshots are written atomically, so this is external damage;
            # replaying segments alone still recovers post-snapshot churn
            out.warnings.append(f"{SNAPSHOT_NAME} unreadable ({exc}); ignored")
            out.snapshot = None
    segments = _segments(wal_dir)
    for i, segment in enumerate(segments):
        last = i == len(segments) - 1
        out.records.extend(_scan_segment(wal_dir, segment, last, out))
    for warning in out.warnings:
        log.warning("wal recovery: %s", warning)
    return out
