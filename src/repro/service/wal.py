"""Write-ahead log for the ingest path: durability before acknowledgement.

PR 2 defined the live state of an evolving graph *reproducibly* — the
deterministic base scenario plus the ordered ingest log — but kept that
log only in coordinator memory, so a crash after an acknowledged
``ingest`` silently lost churn and reset epochs.  This module makes the
log the durable source of truth (the streaming-systems convention): every
delta batch is appended here **before** the service acknowledges it, and
recovery replays the segments to rebuild per-graph delta logs exactly.

On-disk format, designed so recovery never has to trust a torn or
bit-rotted file:

* a *segment* (``wal-00000001.seg``) is a sequence of records, each
  ``[4-byte big-endian payload length][4-byte CRC32 of payload][payload]``
  with the payload being one JSON object;
* segments rotate at ``segment_bytes`` so no single file grows unbounded;
* ``snapshot.json`` (written atomically via the
  :mod:`repro.resilience.checkpoint` machinery) captures the full
  per-graph delta logs at a compaction point; compaction deletes every
  segment, so replay cost stays bounded by the churn since the last
  snapshot.

Recovery policy (:func:`recover_wal`): a torn tail — a record whose
promised bytes are missing — is *expected* (the writer died mid-write,
necessarily before acknowledging) and is truncated with a warning; a
record whose CRC32 does not match (bit rot, partial overwrite) is
**quarantined** to ``quarantine.log`` and skipped with a warning.  Neither
ever raises: losing an unacknowledged suffix is correct, and losing an
acknowledged record to corruption must degrade the one graph it belongs
to, not crash the service (:meth:`repro.service.core.QueryService.start`
skips the now-unappliable epochs with a warning).

Two registered fault points make both paths provable from the campaign
(``mega-repro faults``): ``service.wal-torn-write`` cuts a record short
mid-append, ``service.wal-corrupt-record`` flips a payload byte after the
CRC is computed.

Replication (PR 6, :mod:`repro.service.replica`): the WAL doubles as the
shipping stream between a primary and its read replicas.

* :class:`WalPosition` is a durable ``(segment, offset, compactions)``
  cursor; :meth:`WriteAheadLog.position` reports the writer's tip and
  :func:`read_from` reads everything committed after a cursor *without
  mutating the directory* — an in-progress tail record is "not yet",
  never "torn", because the writer may still be alive.  Segment indices
  are globally monotonic (compaction stamps ``next_segment`` into the
  snapshot), so ``(segment, offset)`` totally orders all records ever
  written to one directory.
* A cursor that points into a compacted-away segment cannot be resumed
  record-by-record; :func:`read_from` signals ``reset`` and the caller
  re-syncs from the snapshot (:func:`read_snapshot`) plus the surviving
  segments.
* **Fencing**: ``fence.json`` holds a monotonic token history.  A writer
  stamps its token into every record; :func:`advance_fence` (called by
  replica promotion) records the new token *and the position it took
  over at*.  On any later read, a record written at or past a fence
  position by a staler token is a zombie primary's late append: it is
  quarantined, never applied — the read-side half of the fencing
  contract that makes promotion safe without consensus.
"""

from __future__ import annotations

import json
import logging
import os
import pathlib
import re
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.resilience.checkpoint import atomic_write
from repro.resilience.faults import Fire, maybe_fire, register_fault_point

__all__ = [
    "FSYNC_POLICIES",
    "OP_INGEST",
    "OP_SLIDE",
    "FenceEvent",
    "WalPosition",
    "WalRecovery",
    "WalTail",
    "WalWriteError",
    "WriteAheadLog",
    "advance_fence",
    "current_fence_token",
    "drop_follower_cursor",
    "read_fences",
    "read_follower_cursors",
    "read_from",
    "read_snapshot",
    "recover_wal",
    "safe_follower_id",
    "try_claim_fence",
    "write_follower_cursor",
]

log = logging.getLogger(__name__)

register_fault_point(
    "service.wal-torn-write",
    "service/wal.py",
    "a WAL append is cut short mid-record (writer died before the ack)",
)
register_fault_point(
    "service.wal-corrupt-record",
    "service/wal.py",
    "a committed WAL record's payload is corrupted on disk (CRC mismatch)",
)

_HEADER = struct.Struct(">II")  # payload length, CRC32(payload)
#: a length prefix beyond this is treated as frame corruption, not a record
MAX_RECORD_BYTES = 64 * 1024 * 1024
#: fsync after every append / every ``sync_every`` appends / never
FSYNC_POLICIES = ("always", "batch", "never")

SNAPSHOT_NAME = "snapshot.json"
QUARANTINE_NAME = "quarantine.log"
FENCE_NAME = "fence.json"
_SEGMENT_GLOB = "wal-*.seg"
#: key under which compaction stamps writer metadata into the snapshot
SNAPSHOT_WAL_KEY = "wal"

# Record ops the query service writes.  ``ingest`` carries one delta
# batch (``{"op", "graph", "epoch", "delta"}``).  ``slide`` marks a
# window-slide checkpoint (``{"op", "graph", "epoch", "slides"}``): it
# records that the serving base folded the oldest snapshot's Δs into the
# common graph, so recovery can restore per-graph slide counters — the
# delta log itself already replays deterministically through the same
# slide path, and compaction folds both the log and the counters into
# the snapshot's ``logs``/``slides`` maps.
OP_INGEST = "ingest"
OP_SLIDE = "slide"


class WalWriteError(RuntimeError):
    """An append failed before the record was durably committed."""


class WalFencedError(WalWriteError):
    """The writer's fencing token has been superseded (it is a zombie)."""


@dataclass(frozen=True)
class WalPosition:
    """Durable replication cursor: everything up to here has been read.

    ``segment``/``offset`` name the byte after the last consumed record;
    ``compactions`` is the directory's compaction count when the cursor
    was taken, so a reader can tell "nothing new" apart from "the ground
    moved under you" (:func:`read_from` signals the latter as ``reset``).
    ``segment == 0`` is the genesis cursor: read from the oldest data.
    """

    segment: int = 0
    offset: int = 0
    compactions: int = 0

    def key(self) -> tuple[int, int]:
        """Total order over all records of one WAL directory."""
        return (self.segment, self.offset)

    def as_dict(self) -> dict:
        return {
            "segment": self.segment,
            "offset": self.offset,
            "compactions": self.compactions,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WalPosition":
        return cls(
            segment=int(d.get("segment", 0)),
            offset=int(d.get("offset", 0)),
            compactions=int(d.get("compactions", 0)),
        )


@dataclass(frozen=True)
class FenceEvent:
    """One promotion: ``token`` took over at ``(segment, offset)``."""

    token: int
    segment: int
    offset: int


def _fence_path(wal_dir: pathlib.Path) -> pathlib.Path:
    return pathlib.Path(wal_dir) / FENCE_NAME


def read_fences(wal_dir: str | pathlib.Path) -> list[FenceEvent]:
    """The fence history of a WAL directory, oldest first ([] if none)."""
    path = _fence_path(pathlib.Path(wal_dir))
    if not path.exists():
        return []
    try:
        doc = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError):
        log.warning("wal fence: %s unreadable; treating as no fences", path)
        return []
    return sorted(
        (
            FenceEvent(int(f["token"]), int(f["segment"]), int(f["offset"]))
            for f in doc.get("fences", [])
        ),
        key=lambda f: f.token,
    )


def current_fence_token(wal_dir: str | pathlib.Path) -> int:
    """The latest fencing token (0 = the directory was never fenced)."""
    fences = read_fences(wal_dir)
    return fences[-1].token if fences else 0


def _atomic_write_sync(path: pathlib.Path, text: str) -> None:
    """``atomic_write`` plus an fsync before the rename.

    Fence history and follower acked-position reports are durability
    statements — a quorum ack or an election claim must survive a power
    cut — so unlike plain checkpoints they flush before publishing.  The
    tmp name carries the pid AND thread id: racing electors (a CAS
    winner publishing while a loser rolls an orphan forward — they write
    identical content) may share a process, and must never interleave
    bytes in, or rename away, each other's tmp file.
    """
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
    )
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _write_fences(wal_dir: pathlib.Path, fences: list[FenceEvent]) -> None:
    _atomic_write_sync(
        _fence_path(wal_dir),
        json.dumps(
            {
                "fences": [
                    {"token": f.token, "segment": f.segment,
                     "offset": f.offset}
                    for f in fences
                ]
            },
            sort_keys=True,
        ),
    )


def advance_fence(
    wal_dir: str | pathlib.Path, position: WalPosition
) -> int:
    """Record the next fencing token as of ``position``; returns it.

    Called on first primary start (token 1 at the empty tip) and on every
    promotion.  Any record a staler writer appends at or beyond
    ``position`` is quarantined by every subsequent read.

    This is an unconditional read-modify-write for the single-promoter
    paths (manual promotion, first start).  Racing electors must use
    :func:`try_claim_fence`, which turns the advance into a CAS.
    """
    wal_dir = pathlib.Path(wal_dir)
    wal_dir.mkdir(parents=True, exist_ok=True)
    fences = read_fences(wal_dir)
    token = (fences[-1].token + 1) if fences else 1
    fences.append(FenceEvent(token, position.segment, position.offset))
    _write_fences(wal_dir, fences)
    return token


def _claim_path(wal_dir: pathlib.Path, token: int) -> pathlib.Path:
    return wal_dir / f"fence.claim-{token:08d}"


def try_claim_fence(
    wal_dir: str | pathlib.Path,
    position: WalPosition,
    expected_token: int,
) -> int | None:
    """Compare-and-swap the fence: advance it iff it is still at
    ``expected_token``.  Returns the claimed token, or None if the CAS
    lost (someone else already advanced past ``expected_token``).

    The swap is arbitrated by an exclusive-create marker file
    (``fence.claim-<token>``): among any number of racing electors that
    read the same ``expected_token``, exactly one ``O_CREAT | O_EXCL``
    succeeds — the filesystem picks the winner, no consensus protocol
    needed.  The winner then appends the :class:`FenceEvent` to
    ``fence.json`` exactly like :func:`advance_fence`.

    A winner that dies between claiming the marker and publishing
    ``fence.json`` would wedge the token forever, so a loser that finds
    an orphaned marker (claim exists but the fence history never caught
    up) rolls the fence forward on the dead winner's behalf — it still
    returns None (it did not win; the rolled-forward token has no live
    owner and the next CAS round claims the one after it).
    """
    wal_dir = pathlib.Path(wal_dir)
    wal_dir.mkdir(parents=True, exist_ok=True)
    fences = read_fences(wal_dir)
    current = fences[-1].token if fences else 0
    if current != expected_token:
        return None
    token = expected_token + 1
    claim = _claim_path(wal_dir, token)
    event = FenceEvent(token, position.segment, position.offset)
    try:
        fd = os.open(claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        try:
            doc = json.loads(claim.read_text())
            orphan = FenceEvent(
                int(doc["token"]), int(doc["segment"]), int(doc["offset"])
            )
        except (OSError, ValueError, KeyError):
            orphan = None
        if orphan is not None and current_fence_token(wal_dir) < orphan.token:
            log.warning(
                "wal fence: rolling forward orphaned claim for token %d",
                orphan.token,
            )
            _write_fences(wal_dir, fences + [orphan])
        return None
    with os.fdopen(fd, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(
            {"token": token, "segment": position.segment,
             "offset": position.offset},
            sort_keys=True,
        ))
        fh.flush()
        os.fsync(fh.fileno())
    fences.append(event)
    _write_fences(wal_dir, fences)
    return token


def _record_allowed(
    fences: list[FenceEvent], token: int, segment: int, offset: int
) -> bool:
    """Is a record with ``token`` at ``(segment, offset)`` legitimate?

    A record is a zombie append iff some newer token fenced the log at or
    before the record's position: the writer kept appending after it had
    been superseded.
    """
    for fence in fences:
        if fence.token > token and (segment, offset) >= (
            fence.segment, fence.offset,
        ):
            return False
    return True


def read_snapshot(wal_dir: str | pathlib.Path) -> dict | None:
    """The compaction snapshot, or None (unreadable snapshots are None
    too — segments alone still recover post-snapshot churn)."""
    path = pathlib.Path(wal_dir) / SNAPSHOT_NAME
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None


def _snapshot_wal_stamp(wal_dir: pathlib.Path) -> dict:
    snapshot = read_snapshot(wal_dir)
    if not isinstance(snapshot, dict):
        return {}
    stamp = snapshot.get(SNAPSHOT_WAL_KEY)
    return stamp if isinstance(stamp, dict) else {}


FOLLOWERS_DIR = "followers"

#: follower/node ids become file names under the WAL root — one flat
#: alphabet, no separators, no leading dot, so ``--follower-id ../x``
#: cannot escape ``<wal>/followers/``
_FOLLOWER_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def safe_follower_id(follower_id: str) -> str:
    """Validate a follower/node id destined for a path component.

    Returns the id unchanged, or raises ``ValueError`` for anything that
    could traverse out of the cursor directory (path separators, ``..``
    components, leading dots, empty or oversized ids).
    """
    fid = str(follower_id)
    if not _FOLLOWER_ID_RE.match(fid) or ".." in fid:
        raise ValueError(
            f"invalid follower id {fid!r}: ids must be 1-64 chars of "
            "[A-Za-z0-9._-], start alphanumeric, and contain no '..'"
        )
    return fid


def write_follower_cursor(
    wal_dir: str | pathlib.Path,
    follower_id: str,
    position: WalPosition,
    epochs: dict[str, int],
) -> None:
    """Persist a follower's replication cursor next to the primary's WAL.

    One atomic JSON file per follower under ``followers/``; the primary
    scans them to report per-follower replication lag in ``health`` and
    the metrics render, and a restarted follower resumes from its own
    cursor instead of a full re-sync.

    The cursor doubles as the follower's **acked-position report**: the
    quorum-ack path (:meth:`repro.service.core.QueryService.ingest`)
    counts an epoch as follower-durable exactly when it appears in the
    cursor's ``epochs`` map, so the write is fsynced before publication.
    """
    follower_id = safe_follower_id(follower_id)
    cursor_dir = pathlib.Path(wal_dir) / FOLLOWERS_DIR
    cursor_dir.mkdir(parents=True, exist_ok=True)
    _atomic_write_sync(
        cursor_dir / f"{follower_id}.json",
        json.dumps(
            {
                "id": follower_id,
                "position": position.as_dict(),
                "epochs": {g: int(e) for g, e in sorted(epochs.items())},
                "updated_unix": time.time(),
            },
            sort_keys=True,
        ),
    )


def read_follower_cursors(
    wal_dir: str | pathlib.Path,
) -> dict[str, dict]:
    """Every follower cursor in a WAL directory (id -> cursor doc)."""
    cursor_dir = pathlib.Path(wal_dir) / FOLLOWERS_DIR
    if not cursor_dir.is_dir():
        return {}
    out: dict[str, dict] = {}
    for path in sorted(cursor_dir.glob("*.json")):
        try:
            doc = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError):
            log.warning("follower cursor %s unreadable; skipped", path)
            continue
        doc["position"] = WalPosition.from_dict(doc.get("position", {}))
        doc["age_s"] = max(0.0, time.time() - float(
            doc.get("updated_unix", 0.0)
        ))
        out[str(doc.get("id", path.stem))] = doc
    return out


def drop_follower_cursor(
    wal_dir: str | pathlib.Path, follower_id: str
) -> None:
    """Remove a follower's cursor (promotion: it is not a follower now)."""
    follower_id = safe_follower_id(follower_id)
    path = pathlib.Path(wal_dir) / FOLLOWERS_DIR / f"{follower_id}.json"
    try:
        path.unlink()
    except FileNotFoundError:
        pass


def _segment_name(index: int) -> str:
    return f"wal-{index:08d}.seg"


def _segment_index(path: pathlib.Path) -> int:
    return int(path.stem.split("-", 1)[1])


def _segments(wal_dir: pathlib.Path) -> list[pathlib.Path]:
    return sorted(wal_dir.glob(_SEGMENT_GLOB), key=_segment_index)


class WriteAheadLog:
    """Append-only, CRC-framed, segment-rotated log of ingest records.

    Opening always starts a *fresh* segment: recovery has already
    truncated any torn tail, and never appending after a previously
    written region means a crash can only tear the very last record.
    """

    def __init__(
        self,
        wal_dir: str | pathlib.Path,
        fsync: str = "always",
        segment_bytes: int = 4 * 1024 * 1024,
        sync_every: int = 32,
        fault_hook: Callable[[str], Fire | None] | None = None,
        fence_token: int | None = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; choose from {FSYNC_POLICIES}"
            )
        self.wal_dir = pathlib.Path(wal_dir)
        self.wal_dir.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_bytes = int(segment_bytes)
        self.sync_every = max(1, int(sync_every))
        self._maybe_fire = fault_hook if fault_hook is not None else maybe_fire
        #: stamped into every record so a zombie writer's late appends are
        #: detectable; None adopts the directory's current token
        self.fence_token = (
            current_fence_token(self.wal_dir)
            if fence_token is None else int(fence_token)
        )
        stamp = _snapshot_wal_stamp(self.wal_dir)
        existing = _segments(self.wal_dir)
        # segment indices are globally monotonic even across compaction
        # (which deletes all segments): the compaction snapshot stamps the
        # next index, so (segment, offset) totally orders all records ever
        # written here — the property WalPosition cursors rely on.
        self._segment_index = max(
            _segment_index(existing[-1]) + 1 if existing else 1,
            int(stamp.get("next_segment", 1)),
        )
        self._fh = None
        self._segment_size = 0
        self.records = 0  # appended this process
        self.synced = 0  # appended and known fsync-durable
        self.compactions = int(stamp.get("compactions", 0))

    # -- write path --------------------------------------------------------

    @property
    def segment_path(self) -> pathlib.Path:
        return self.wal_dir / _segment_name(self._segment_index)

    def _open_segment(self):
        if self._fh is None:
            self._fh = open(self.segment_path, "ab")
            self._segment_size = self._fh.tell()
        return self._fh

    def append(self, record: dict) -> int:
        """Durably append one JSON record; returns its ordinal this session.

        Raises :class:`WalWriteError` if the record could not be committed
        — the caller must NOT acknowledge the operation then.
        """
        if self.fence_token:
            record = {**record, "fence": self.fence_token}
        payload = json.dumps(record, sort_keys=True).encode("utf-8")
        crc = zlib.crc32(payload) & 0xFFFFFFFF

        fire = self._maybe_fire("service.wal-corrupt-record")
        if fire is not None:
            # flip one payload byte *after* the CRC was computed: the
            # record commits (and is acknowledged) but reads back bad
            pos = int(fire.rng.integers(len(payload)))
            corrupted = bytearray(payload)
            corrupted[pos] ^= 0xFF
            fire.note(byte=pos, segment=self.segment_path.name)
            payload = bytes(corrupted)

        fh = self._open_segment()
        frame = _HEADER.pack(len(payload), crc) + payload

        fire = self._maybe_fire("service.wal-torn-write")
        if fire is not None:
            # the writer "dies" mid-record: half the frame reaches disk
            # and the append fails before any acknowledgement.  Rotate so
            # this process's later appends land in a clean segment (a real
            # torn write implies the process is gone).
            torn = frame[: max(1, len(frame) // 2)]
            fh.write(torn)
            fh.flush()
            os.fsync(fh.fileno())
            fire.note(
                segment=self.segment_path.name,
                written=len(torn),
                expected=len(frame),
            )
            self.rotate()
            raise WalWriteError(
                f"injected torn write in {self.wal_dir} "
                f"({len(torn)}/{len(frame)} bytes)"
            )

        fh.write(frame)
        fh.flush()
        self.records += 1
        self._segment_size += len(frame)
        if self.fsync == "always" or (
            self.fsync == "batch" and self.records % self.sync_every == 0
        ):
            os.fsync(fh.fileno())
            self.synced = self.records
        if self._segment_size >= self.segment_bytes:
            self.rotate()
        return self.records

    def position(self) -> WalPosition:
        """The writer's durable tip: everything before it is committed.

        A reader that has consumed up to this position has seen every
        record this writer acknowledged; the cursor stays valid across
        rotation (indices only grow) and detects compaction via the
        ``compactions`` counter.
        """
        return WalPosition(
            segment=self._segment_index,
            offset=self._segment_size,
            compactions=self.compactions,
        )

    def sync(self) -> None:
        """Force everything appended so far onto stable storage."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
        self.synced = self.records

    def rotate(self) -> None:
        """Close the current segment and start the next one."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None
            self.synced = self.records
        self._segment_index += 1
        self._segment_size = 0

    # -- compaction --------------------------------------------------------

    def compact(self, snapshot: dict) -> pathlib.Path:
        """Atomically persist ``snapshot`` and drop every segment.

        The caller must guarantee no append races this call (the service
        holds its ingest lock): the snapshot then covers every committed
        record, so deleting the segments loses nothing and replay cost
        resets to zero.
        """
        path = self.wal_dir / SNAPSHOT_NAME
        stamped = dict(snapshot)
        stamped[SNAPSHOT_WAL_KEY] = {
            "compactions": self.compactions + 1,
            "next_segment": self._segment_index + 1,
        }
        atomic_write(path, json.dumps(stamped, sort_keys=True))
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        for segment in _segments(self.wal_dir):
            segment.unlink()
        self._segment_index += 1
        self._segment_size = 0
        self.synced = self.records
        self.compactions += 1
        return path

    def close(self) -> None:
        if self._fh is not None:
            self.sync()
            self._fh.close()
            self._fh = None

    def stats(self) -> dict:
        return {
            "enabled": True,
            "dir": str(self.wal_dir),
            "segments": len(_segments(self.wal_dir)),
            "records": self.records,
            "synced": self.synced,
            "lag_records": self.records - self.synced,
            "compactions": self.compactions,
            "fsync": self.fsync,
            "fence_token": self.fence_token,
        }


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------


@dataclass
class WalRecovery:
    """Everything :func:`recover_wal` found, plus what it had to repair."""

    snapshot: dict | None = None
    records: list[dict] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    truncated_tail: bool = False
    quarantined: int = 0
    #: zombie-primary appends caught by the fencing contract (a subset of
    #: ``quarantined``: they also land in quarantine.log)
    fenced: int = 0

    @property
    def clean(self) -> bool:
        return not self.warnings

    def summary(self) -> dict:
        return {
            "records": len(self.records),
            "snapshot": self.snapshot is not None,
            "warnings": len(self.warnings),
            "truncated_tail": self.truncated_tail,
            "quarantined": self.quarantined,
            "fenced": self.fenced,
        }


def _quarantine(wal_dir: pathlib.Path, segment: str, offset: int,
                payload: bytes, reason: str) -> None:
    entry = json.dumps(
        {
            "segment": segment,
            "offset": offset,
            "reason": reason,
            "payload_hex": payload.hex(),
        },
        sort_keys=True,
    )
    with open(wal_dir / QUARANTINE_NAME, "a") as fh:
        fh.write(entry + "\n")


def _scan_segment(
    wal_dir: pathlib.Path,
    segment: pathlib.Path,
    is_last: bool,
    out: WalRecovery,
    fences: list[FenceEvent] | None = None,
) -> Iterator[dict]:
    fences = fences or []
    seg_index = _segment_index(segment)
    data = segment.read_bytes()
    offset = 0
    while offset < len(data):
        header_end = offset + _HEADER.size
        torn = None
        if header_end > len(data):
            torn = f"short header ({len(data) - offset} bytes)"
        else:
            length, crc = _HEADER.unpack_from(data, offset)
            if length == 0 or length > MAX_RECORD_BYTES:
                torn = f"implausible record length {length}"
            elif header_end + length > len(data):
                torn = (
                    f"record promises {length} bytes, "
                    f"{len(data) - header_end} present"
                )
        if torn is not None:
            if is_last:
                os.truncate(segment, offset)
                out.warnings.append(
                    f"{segment.name}: torn tail at byte {offset} ({torn}); "
                    f"truncated"
                )
            else:
                out.warnings.append(
                    f"{segment.name}: torn record at byte {offset} ({torn}) "
                    f"in a rotated segment; skipping its remainder"
                )
            out.truncated_tail = True
            return
        payload = data[header_end: header_end + length]
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            _quarantine(wal_dir, segment.name, offset, payload, "crc-mismatch")
            out.warnings.append(
                f"{segment.name}: CRC mismatch at byte {offset}; "
                f"record quarantined"
            )
            out.quarantined += 1
            offset = header_end + length
            continue
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            _quarantine(wal_dir, segment.name, offset, payload,
                        f"bad-json: {exc}")
            out.warnings.append(
                f"{segment.name}: undecodable record at byte {offset}; "
                f"record quarantined"
            )
            out.quarantined += 1
            offset = header_end + length
            continue
        token = int(record.pop("fence", 0) or 0)
        if not _record_allowed(fences, token, seg_index, offset):
            _quarantine(
                wal_dir, segment.name, offset, payload,
                f"fenced: token {token} superseded before this position",
            )
            out.warnings.append(
                f"{segment.name}: zombie append at byte {offset} (fence "
                f"token {token} was superseded); record quarantined"
            )
            out.quarantined += 1
            out.fenced += 1
            offset = header_end + length
            continue
        yield record
        offset = header_end + length


def recover_wal(wal_dir: str | pathlib.Path) -> WalRecovery:
    """Read back a WAL directory: snapshot (if any) plus surviving records.

    Never raises on damaged data — a torn tail is truncated, CRC-failing
    records are quarantined, and every repair is a warning on the returned
    :class:`WalRecovery` (the service logs them).
    """
    wal_dir = pathlib.Path(wal_dir)
    out = WalRecovery()
    if not wal_dir.exists():
        return out
    snapshot_path = wal_dir / SNAPSHOT_NAME
    if snapshot_path.exists():
        try:
            out.snapshot = json.loads(snapshot_path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            # snapshots are written atomically, so this is external damage;
            # replaying segments alone still recovers post-snapshot churn
            out.warnings.append(f"{SNAPSHOT_NAME} unreadable ({exc}); ignored")
            out.snapshot = None
    if isinstance(out.snapshot, dict):
        # the writer stamp (compaction count, next segment index) is WAL
        # metadata, not service payload — keep the round trip exact
        out.snapshot.pop(SNAPSHOT_WAL_KEY, None)
    fences = read_fences(wal_dir)
    segments = _segments(wal_dir)
    for i, segment in enumerate(segments):
        last = i == len(segments) - 1
        out.records.extend(_scan_segment(wal_dir, segment, last, out, fences))
    for warning in out.warnings:
        log.warning("wal recovery: %s", warning)
    return out


# ---------------------------------------------------------------------------
# incremental tailing (replication read path)
# ---------------------------------------------------------------------------


@dataclass
class WalTail:
    """One :func:`read_from` step: new records plus the advanced cursor.

    ``reset`` means the cursor pointed at data that no longer exists
    (compaction folded it into the snapshot): the records list is empty
    and the caller must re-sync from :func:`read_snapshot` plus a genesis
    read before trusting any further tails.
    """

    records: list[dict] = field(default_factory=list)
    position: WalPosition = field(default_factory=WalPosition)
    reset: bool = False
    warnings: list[str] = field(default_factory=list)
    #: zombie-primary appends skipped by the fencing check (never applied,
    #: but NOT quarantined on disk — tailing must not mutate the primary's
    #: directory; the owner quarantines them on its own recovery)
    fenced: int = 0


def read_from(
    wal_dir: str | pathlib.Path, position: WalPosition | None = None
) -> WalTail:
    """Read every record committed after ``position``, without mutating.

    Unlike :func:`recover_wal` this never truncates or quarantines: an
    incomplete frame at the tip of the *highest* segment is an in-progress
    append by a possibly-live writer — the cursor parks just before it and
    the next call retries.  An incomplete frame in a rotated segment is a
    genuine torn write (the writer rotated away and died); its remainder
    is skipped with a warning.  CRC-failing and fence-violating records
    are skipped with warnings but left on disk for the owner to repair.

    ``position=None`` (or ``segment == 0``) is the genesis read: everything
    in the surviving segments, oldest first.  Callers doing an initial
    sync read :func:`read_snapshot` first — post-compaction segments only
    hold churn since that snapshot.
    """
    wal_dir = pathlib.Path(wal_dir)
    position = position or WalPosition()
    stamp = _snapshot_wal_stamp(wal_dir)
    disk_compactions = int(stamp.get("compactions", 0))
    if position.segment and disk_compactions > position.compactions:
        # the segments the cursor ordered against were (at least partly)
        # folded into the snapshot; record-by-record resume is impossible
        return WalTail(
            position=WalPosition(compactions=disk_compactions),
            reset=True,
            warnings=[
                f"compaction #{disk_compactions} superseded cursor "
                f"({position.segment}, {position.offset}); re-sync from "
                f"{SNAPSHOT_NAME}"
            ],
        )
    fences = read_fences(wal_dir)
    tail = WalTail(position=WalPosition(
        position.segment, position.offset, disk_compactions,
    ))
    segments = [
        s for s in _segments(wal_dir)
        if _segment_index(s) >= position.segment
    ]
    if not segments:
        return tail
    last_index = _segment_index(segments[-1])
    for segment in segments:
        seg_index = _segment_index(segment)
        is_last = seg_index == last_index
        data = segment.read_bytes()
        offset = position.offset if seg_index == position.segment else 0
        consumed = offset
        while offset < len(data):
            header_end = offset + _HEADER.size
            incomplete = header_end > len(data)
            length = crc = 0
            if not incomplete:
                length, crc = _HEADER.unpack_from(data, offset)
                if length == 0 or length > MAX_RECORD_BYTES:
                    # frame corruption mid-segment: resynchronising within
                    # the byte stream is impossible, skip the remainder
                    tail.warnings.append(
                        f"{segment.name}: implausible record length "
                        f"{length} at byte {offset}; skipping remainder"
                    )
                    consumed = len(data)
                    break
                incomplete = header_end + length > len(data)
            if incomplete:
                if is_last:
                    # an in-progress append by a possibly-live writer:
                    # park here and retry next poll — never truncate
                    break
                tail.warnings.append(
                    f"{segment.name}: torn record at byte {offset} in a "
                    f"rotated segment; skipping its remainder"
                )
                consumed = len(data)
                break
            payload = data[header_end: header_end + length]
            next_offset = header_end + length
            if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
                tail.warnings.append(
                    f"{segment.name}: CRC mismatch at byte {offset}; "
                    f"record skipped (owner quarantines on recovery)"
                )
                offset = consumed = next_offset
                continue
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                tail.warnings.append(
                    f"{segment.name}: undecodable record at byte {offset}; "
                    f"record skipped"
                )
                offset = consumed = next_offset
                continue
            token = int(record.pop("fence", 0) or 0)
            if not _record_allowed(fences, token, seg_index, offset):
                tail.warnings.append(
                    f"{segment.name}: zombie append at byte {offset} "
                    f"(fence token {token} was superseded); skipped"
                )
                tail.fenced += 1
                offset = consumed = next_offset
                continue
            tail.records.append(record)
            offset = consumed = next_offset
        tail.position = WalPosition(seg_index, consumed, disk_compactions)
    for warning in tail.warnings:
        log.warning("wal tail: %s", warning)
    return tail
