"""Zero-copy shared-memory scenario plane.

The coordinator materializes each live scenario once and **publishes** its
immutable arrays — the union CSR (``indptr``/``dst``/``wt``), the snapshot
tags (``add_step``/``del_step``), and the bit-packed presence planes — into
one ``multiprocessing.shared_memory`` segment.  Workers **attach** to the
segment and wrap the raw buffers in read-only numpy views, so a plan's
scenario costs one ``mmap`` instead of a per-worker replay of the ingest
log (base-scenario rebuild + ``apply_delta`` per epoch).  This is the
software analogue of MEGA's on-chip sharing: one copy of the evolving
graph serves every execution lane.

Lifecycle
---------

* Segments are keyed by ``(graph, scale, n_snapshots)`` and stamped with
  the publishing *epoch* and a monotonically increasing *generation*.
* :meth:`ScenarioPlane.acquire` hands out a manifest and bumps a refcount;
  the coordinator acquires at plan submit and releases when the plan's
  future resolves.  An epoch advance publishes a new generation and
  *retires* the old segment — it is unlinked once its refcount drains
  (POSIX keeps the mapping valid for already-attached workers even after
  the unlink).
* Segment names embed the creating PID (``megashm-<pid>-<plane>-<seq>``,
  where ``<plane>`` disambiguates multiple planes in one process — a
  primary and a follower replica, say) so a
  restarted service can :func:`sweep_orphan_segments` left behind by a
  crashed predecessor — the kill-and-recover drill asserts this sweep
  leaves ``/dev/shm`` clean.
* Both sides unregister the segment from ``multiprocessing``'s
  ``resource_tracker``: cleanup is owned *explicitly* by the plane
  (``close_all`` + the startup sweep), never by an attaching worker's
  exit — without the unregister, the first worker to die would unlink
  segments the coordinator still serves from.

``ServiceConfig.use_shm`` (CLI ``--no-shm``) disables the plane entirely;
workers then fall back to the replay path in
:mod:`repro.service.pool`, which also remains the fallback whenever an
attach fails (e.g. a manifest outliving a coordinator restart).
"""

from __future__ import annotations

import atexit
import itertools
import logging
import os
import threading
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.evolving.snapshots import EvolvingScenario
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import CSRGraph

__all__ = [
    "ArraySpec",
    "ScenarioManifest",
    "ScenarioPlane",
    "attach_scenario",
    "list_orphan_segments",
    "sweep_orphan_segments",
]

log = logging.getLogger(__name__)

#: where POSIX shared memory lives on Linux (scanned by the orphan sweep)
SHM_DIR = "/dev/shm"
#: every plane segment name starts with this (PID and sequence follow)
SEGMENT_PREFIX = "megashm-"
#: array offsets inside a segment are aligned to this many bytes
_ALIGN = 64


@dataclass(frozen=True)
class ArraySpec:
    """Placement of one numpy array inside a published segment."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class ScenarioManifest:
    """Everything a worker needs to attach a published scenario.

    Travels inside :class:`~repro.service.pool.PlanPayload`; the arrays
    themselves never cross the pickle boundary.
    """

    segment: str
    generation: int
    graph: str
    scale: str
    epoch: int
    n_snapshots: int
    n_vertices: int
    source: int
    scenario_name: str
    nbytes: int
    arrays: tuple[ArraySpec, ...]
    metadata: dict = field(default_factory=dict)


#: serializes the register-suppression monkeypatch (coordinator threads)
_TRACK_LOCK = threading.Lock()

#: per-process plane instance counter: a primary and a follower (or a
#: drill harness) can each own a plane in one process, and their segment
#: names must not collide — the name embeds this id after the PID
_PLANE_IDS = itertools.count(1)


class _suppress_tracking:
    """Keep ``multiprocessing.resource_tracker`` out of segment lifecycle.

    Python 3.12 grew ``SharedMemory(track=False)``; on earlier versions
    every create/attach registers the segment with the (fork-shared)
    tracker, whose refcount-free set semantics mis-handle one segment
    touched by several processes — the first exit unlinks it for
    everyone, and balanced register/unregister pairs still race into
    KeyError noise.  The plane owns cleanup explicitly (``close_all`` +
    the startup sweep), so segments are simply never registered: this
    context manager no-ops ``register`` while a ``SharedMemory`` object
    is constructed, and unlinking goes through the filesystem instead of
    ``SharedMemory.unlink()`` (which would send a spurious unregister).
    """

    def __enter__(self) -> None:
        _TRACK_LOCK.acquire()
        self._orig = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None

    def __exit__(self, *exc) -> None:
        resource_tracker.register = self._orig
        _TRACK_LOCK.release()


def _unlink_segment(name: str) -> None:
    """Remove a segment from the filesystem (idempotent)."""
    try:
        os.unlink(os.path.join(SHM_DIR, name))
    except FileNotFoundError:
        pass


def _scenario_arrays(scenario: EvolvingScenario) -> list[tuple[str, np.ndarray]]:
    """The immutable arrays a published scenario consists of."""
    u = scenario.unified
    return [
        ("indptr", u.graph.indptr),
        ("dst", u.graph.dst),
        ("wt", u.graph.wt),
        ("add_step", u.add_step),
        ("del_step", u.del_step),
        ("planes", u.presence_planes()),
    ]


def _write_segment(
    name: str, arrays: list[tuple[str, np.ndarray]]
) -> tuple[shared_memory.SharedMemory, tuple[ArraySpec, ...], int]:
    """Create ``name`` and copy ``arrays`` into it back to back."""
    specs = []
    offset = 0
    for arr_name, arr in arrays:
        offset = (offset + _ALIGN - 1) & ~(_ALIGN - 1)
        specs.append(
            ArraySpec(arr_name, np.dtype(arr.dtype).str, arr.shape, offset)
        )
        offset += arr.nbytes
    total = max(offset, 1)
    with _suppress_tracking():
        shm = shared_memory.SharedMemory(name=name, create=True, size=total)
    for spec, (_, arr) in zip(specs, arrays):
        view = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype),
            buffer=shm.buf, offset=spec.offset,
        )
        view[...] = arr
    return shm, tuple(specs), total


def attach_scenario(
    manifest: ScenarioManifest,
) -> tuple[shared_memory.SharedMemory, EvolvingScenario]:
    """Attach to a published segment and rebuild the scenario zero-copy.

    Every array is a read-only view directly over the shared buffer:
    :class:`CSRGraph` adopts canonical dtypes without copying (its
    documented no-copy contract) and :class:`UnifiedCSR` takes the
    packed presence planes verbatim, so no ``packbits`` pass runs in the
    worker either.  Raises ``FileNotFoundError`` if the segment is gone
    (callers fall back to the replay path).
    """
    with _suppress_tracking():
        shm = shared_memory.SharedMemory(name=manifest.segment)
    views: dict[str, np.ndarray] = {}
    for spec in manifest.arrays:
        arr = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype),
            buffer=shm.buf, offset=spec.offset,
        )
        arr.flags.writeable = False
        views[spec.name] = arr
    graph = CSRGraph(
        manifest.n_vertices, views["indptr"], views["dst"], views["wt"]
    )
    unified = UnifiedCSR(
        graph,
        views["add_step"],
        views["del_step"],
        manifest.n_snapshots,
        presence_planes=views["planes"],
    )
    scenario = EvolvingScenario(
        unified,
        source=manifest.source,
        name=manifest.scenario_name,
        metadata=dict(manifest.metadata),
    )
    return shm, scenario


# ---------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------


class _Segment:
    """One published segment plus its refcount/retirement state."""

    __slots__ = ("shm", "manifest", "refs", "retired")

    def __init__(
        self, shm: shared_memory.SharedMemory, manifest: ScenarioManifest
    ) -> None:
        self.shm = shm
        self.manifest = manifest
        self.refs = 0
        self.retired = False

    def destroy(self) -> None:
        try:
            self.shm.close()
        except OSError:  # pragma: no cover - buffer already torn down
            pass
        _unlink_segment(self.manifest.segment)


class ScenarioPlane:
    """Coordinator-owned registry of published scenario segments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: (graph, scale, n_snapshots) -> the segment serving that key now
        self._current: dict[tuple, _Segment] = {}
        #: segment name -> segment, including retired ones draining refs
        self._by_name: dict[str, _Segment] = {}
        self._seq = 0
        self._pid = os.getpid()
        self._plane_id = next(_PLANE_IDS)
        self.published = 0
        self.retired = 0
        # last-resort cleanup if the owner forgets to stop the service;
        # pool workers exit via os._exit and never run this
        atexit.register(self.close_all)

    # -- publish / lookup --------------------------------------------------

    def publish(
        self,
        scenario: EvolvingScenario,
        graph: str,
        scale: str,
        epoch: int,
    ) -> ScenarioManifest:
        """Publish ``scenario`` as the current segment for its key.

        A previously-current segment for the same key is retired: it is
        unlinked as soon as its refcount drains (immediately if idle).
        """
        key = (graph, scale, scenario.n_snapshots)
        arrays = _scenario_arrays(scenario)
        with self._lock:
            self._seq += 1
            name = f"{SEGMENT_PREFIX}{self._pid}-{self._plane_id}-{self._seq}"
            generation = self._seq
        shm, specs, total = _write_segment(name, arrays)
        manifest = ScenarioManifest(
            segment=name,
            generation=generation,
            graph=graph,
            scale=scale,
            epoch=int(epoch),
            n_snapshots=scenario.n_snapshots,
            n_vertices=scenario.n_vertices,
            source=scenario.source,
            scenario_name=scenario.name,
            nbytes=total,
            arrays=specs,
            metadata=dict(scenario.metadata),
        )
        segment = _Segment(shm, manifest)
        with self._lock:
            old = self._current.get(key)
            self._current[key] = segment
            self._by_name[name] = segment
            self.published += 1
            if old is not None:
                old.retired = True
                self.retired += 1
                if old.refs <= 0:
                    self._drop_locked(old)
        log.debug(
            "shm plane: published %s (gen %d, epoch %d, %d bytes)",
            name, generation, epoch, total,
        )
        return manifest

    def acquire(
        self, graph: str, scale: str, n_snapshots: int, epoch: int
    ) -> ScenarioManifest | None:
        """Refcounted lookup of the current segment for a plan's epoch.

        Returns ``None`` when nothing is published for the key or the
        published epoch does not match — the caller then publishes (or
        falls back to the replay path).  Every non-``None`` return must
        be paired with one :meth:`release`.
        """
        key = (graph, scale, int(n_snapshots))
        with self._lock:
            segment = self._current.get(key)
            if segment is None or segment.manifest.epoch != int(epoch):
                return None
            segment.refs += 1
            return segment.manifest

    def current_epoch(
        self, graph: str, scale: str, n_snapshots: int
    ) -> int | None:
        """Epoch of the segment currently serving a key (None = none)."""
        with self._lock:
            segment = self._current.get((graph, scale, int(n_snapshots)))
            return None if segment is None else segment.manifest.epoch

    def release(self, manifest: ScenarioManifest) -> None:
        """Drop one reference; unlink retired segments at zero."""
        with self._lock:
            segment = self._by_name.get(manifest.segment)
            if segment is None:
                return
            segment.refs -= 1
            if segment.retired and segment.refs <= 0:
                self._drop_locked(segment)

    def _drop_locked(self, segment: _Segment) -> None:
        self._by_name.pop(segment.manifest.segment, None)
        segment.destroy()

    # -- lifecycle ---------------------------------------------------------

    def close_all(self) -> None:
        """Unlink every segment this plane created (idempotent).

        No-op in forked children: only the creating process owns the
        segments' lifecycle.
        """
        if os.getpid() != self._pid:
            return
        with self._lock:
            segments = list(self._by_name.values())
            self._by_name.clear()
            self._current.clear()
        for segment in segments:
            segment.destroy()

    def stats(self) -> dict:
        with self._lock:
            return {
                "enabled": True,
                "segments": len(self._by_name),
                "bytes": sum(
                    s.manifest.nbytes for s in self._by_name.values()
                ),
                "published": self.published,
                "retired": self.retired,
                # retired generations still mapped by in-flight plans;
                # anything left here after a drain is an orphaned segment
                "retired_pending": sum(
                    1 for s in self._by_name.values() if s.retired
                ),
                "generation": self._seq,
            }


# ---------------------------------------------------------------------------
# orphan management (crash recovery)
# ---------------------------------------------------------------------------


def _segment_pid(name: str) -> int | None:
    if not name.startswith(SEGMENT_PREFIX):
        return None
    try:
        return int(name[len(SEGMENT_PREFIX):].split("-", 1)[0])
    except ValueError:
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - alive, not ours
        return True
    return True


def list_orphan_segments(shm_dir: str = SHM_DIR) -> list[str]:
    """Plane segments whose creating process is dead (crash leftovers)."""
    try:
        entries = os.listdir(shm_dir)
    except OSError:  # pragma: no cover - non-Linux / exotic mounts
        return []
    orphans = []
    for entry in entries:
        pid = _segment_pid(entry)
        if pid is not None and not _pid_alive(pid):
            orphans.append(entry)
    return sorted(orphans)


def sweep_orphan_segments(shm_dir: str = SHM_DIR) -> list[str]:
    """Unlink every orphaned plane segment; returns what was removed.

    Run at service start: a SIGKILLed coordinator cannot unlink its own
    segments, so its successor reclaims them by PID liveness.
    """
    swept = []
    for entry in list_orphan_segments(shm_dir):
        try:
            os.unlink(os.path.join(shm_dir, entry))
        except FileNotFoundError:
            continue  # raced with another sweeper
        except OSError as exc:  # pragma: no cover - permissions etc.
            log.warning("shm plane: could not sweep %s: %s", entry, exc)
            continue
        swept.append(entry)
    if swept:
        log.info("shm plane: swept %d orphaned segment(s)", len(swept))
    return swept
