"""Shard fleet lifecycle, delta routing, and all-fsync ingest barrier.

A :class:`ShardManager` owns N :class:`~repro.service.core.QueryService`
instances, one per contiguous vertex range of the evolving graph.  Each
shard is a *complete* service — its own worker pool, its own
shared-memory scenario plane (generation-stamped segments, so a fleet of
planes in one process never collide), and its own WAL directory
(``<wal_root>/shard-<i>``) — which keeps recovery, compaction, and
replication strictly per-shard.

Partitioning is by the **base** union CSR's out-edge counts
(:class:`~repro.graph.partition.VertexPartitioner` at epoch 0): ingest
churn can skew the balance over time, but ownership never moves, so a
vertex's shard is a pure function of the graph name — the property the
scatter router, the delta splitter, and recovery all depend on.

Ingest protocol
---------------

One logical delta splits by ``partition_of(src)`` into per-shard
sub-batches; *every* shard receives its (possibly empty) sub-batch so
per-shard epochs stay aligned with the logical epoch.  The manager acks
only after **all** shards' WAL appends (and fsyncs, per policy) return —
the all-fsync barrier the durability contract in docs/SERVICE.md
promises.  A partial failure leaves some shards one epoch ahead; the
manager immediately rewinds them (``QueryService.rewind_graph``
truncates + compacts), re-raises unacked, and the same min-epoch
reconciliation runs at startup for crashes that interrupted the barrier
itself.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.graph.partition import VertexPartitioner
from repro.service.core import QueryService, ServiceConfig
from repro.service.ingest import DeltaBatch, apply_delta, synthesize_delta

__all__ = ["ShardManager"]

log = logging.getLogger(__name__)


def merge_sub_deltas(subs: list[DeltaBatch]) -> DeltaBatch:
    """Reassemble one logical delta from its per-shard sub-batches.

    Sub-batches partition the rows by owning shard, so concatenation
    recovers the logical edge sets exactly; row order inside a batch is
    irrelevant because the union CSR build sorts edges canonically.
    The ``shard`` routing tag is stripped from the surviving metadata.
    """
    meta: dict = {}
    for sub in subs:
        if sub.meta:
            meta = {k: v for k, v in sub.meta.items() if k != "shard"}
            break
    return DeltaBatch(
        add_src=np.concatenate([s.add_src for s in subs]),
        add_dst=np.concatenate([s.add_dst for s in subs]),
        add_wt=np.concatenate([s.add_wt for s in subs]),
        del_src=np.concatenate([s.del_src for s in subs]),
        del_dst=np.concatenate([s.del_dst for s in subs]),
        meta=meta,
    )


class ShardManager:
    """N vertex-owned shards of the evolving graph behind one router."""

    def __init__(
        self,
        n_shards: int,
        config: ServiceConfig | None = None,
        wal_root: str | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.config = config or ServiceConfig()
        self.n_shards = int(n_shards)
        self.wal_root = (
            wal_root if wal_root is not None else self.config.wal_dir
        )
        self.shards: list[QueryService] = []
        for i in range(self.n_shards):
            shard_cfg = dataclasses.replace(
                self.config,
                shard_id=i,
                wal_dir=(
                    os.path.join(self.wal_root, f"shard-{i}")
                    if self.wal_root
                    else None
                ),
            )
            self.shards.append(QueryService(shard_cfg))
        #: guards the logical chains, the synth scenario cache, and the
        #: partitioner cache; held across the ingest fan-out so logical
        #: epochs are totally ordered (single-writer, like the WAL).
        #: Reentrant because the ingest path calls ``split_delta`` →
        #: ``partitioner`` while already holding it.
        self._lock = threading.RLock()
        self._partitioners: dict[str, VertexPartitioner] = {}
        #: graph -> full (unsplit) delta log; source of truth for the
        #: logical epoch and for delta synthesis
        self._chains: dict[str, list[DeltaBatch]] = {}
        #: graph -> (epoch, scenario) advanced incrementally for synthesis
        self._live: dict[str, tuple[int, object]] = {}
        self._ingest_pool = ThreadPoolExecutor(
            max_workers=self.n_shards, thread_name_prefix="shard-ingest"
        )
        self._started = False

    # -- partition geometry -------------------------------------------------

    def partitioner(self, graph: str) -> VertexPartitioner:
        """The graph's (cached) base-epoch partitioner."""
        with self._lock:
            part = self._partitioners.get(graph)
            if part is None:
                from repro.experiments.runner import scenario_cache

                scenario = scenario_cache(
                    graph,
                    self.config.scale,
                    n_snapshots=self.config.n_snapshots,
                )
                part = VertexPartitioner(
                    scenario.unified.graph.indptr, self.n_shards
                )
                self._partitioners[graph] = part
            return part

    def vertex_range(self, graph: str, shard: int) -> tuple[int, int]:
        """Half-open vertex range shard ``shard`` owns for ``graph``.

        When the partitioner clamped (more shards than vertices), the
        surplus shards own an empty range at the top — they never
        receive frontier triples or delta rows, only empty epoch-
        alignment sub-batches.
        """
        part = self.partitioner(graph)
        if shard >= part.n_partitions:
            return part.n_vertices, part.n_vertices
        return part.vertex_range(shard)

    def split_delta(self, graph: str, delta: DeltaBatch) -> list[DeltaBatch]:
        """One sub-batch per shard, routed by the owner of each row's src.

        Out-of-range vertex ids raise ``ValueError`` here — before any
        WAL append — so a malformed delta is rejected atomically.
        """
        part = self.partitioner(graph)
        add_owner = np.asarray(part.partition_of(delta.add_src))
        del_owner = np.asarray(part.partition_of(delta.del_src))
        subs = []
        for i in range(self.n_shards):
            am = add_owner == i
            dm = del_owner == i
            subs.append(
                DeltaBatch(
                    add_src=delta.add_src[am],
                    add_dst=delta.add_dst[am],
                    add_wt=delta.add_wt[am],
                    del_src=delta.del_src[dm],
                    del_dst=delta.del_dst[dm],
                    meta=dict(delta.meta, shard=i),
                )
            )
        return subs

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ShardManager":
        """Start every shard (each recovers from its own WAL), then
        reconcile epochs and rebuild the logical chains."""
        if self._started:
            return self
        for shard in self.shards:
            shard.start()
        rewound = self.reconcile()
        if rewound:
            log.info("shard reconcile: logical epochs %s", rewound)
        self._recover_chains()
        self._started = True
        return self

    def stop(self, drain: bool = True, timeout: float = 60.0) -> bool:
        results = [
            shard.stop(drain=drain, timeout=timeout) for shard in self.shards
        ]
        self._ingest_pool.shutdown(wait=True, cancel_futures=True)
        self._started = False
        return all(results)

    def clear_caches(self) -> None:
        for shard in self.shards:
            shard.clear_caches()
        with self._lock:
            self._live.clear()

    # -- epochs / recovery --------------------------------------------------

    def epoch(self, graph: str) -> int:
        with self._lock:
            return len(self._chains.get(graph, []))

    def graph_epochs(self) -> dict[str, int]:
        with self._lock:
            return {g: len(chain) for g, chain in self._chains.items()}

    def reconcile(self, graph: str | None = None) -> dict[str, int]:
        """Rewind every shard to the fleet's minimum epoch per graph.

        WAL recovery skips records at-or-below a log's tip, so a shard
        left *ahead* by an interrupted ingest barrier would silently
        swallow the re-ingested epochs — rewinding the fast shards to
        the slowest one restores the all-or-nothing ack semantics (the
        unacked epoch is simply gone, which is what unacked means).
        Returns the reconciled epoch per graph.
        """
        epoch_maps = [shard.graph_epochs() for shard in self.shards]
        graphs = (
            {graph}
            if graph is not None
            else set().union(*(set(m) for m in epoch_maps))
        )
        out: dict[str, int] = {}
        for g in sorted(graphs):
            floor = min(m.get(g, 0) for m in epoch_maps)
            for shard in self.shards:
                shard.rewind_graph(g, floor)
            out[g] = floor
        return out

    def _recover_chains(self) -> None:
        """Rebuild the logical delta chains from the shards' sub-chains."""
        epoch_maps = [shard.graph_epochs() for shard in self.shards]
        graphs = set().union(*(set(m) for m in epoch_maps))
        with self._lock:
            for g in sorted(graphs):
                logs = [shard.graph_deltas(g) for shard in self.shards]
                depth = min(len(chain) for chain in logs)
                self._chains[g] = [
                    merge_sub_deltas([chain[e] for chain in logs])
                    for e in range(depth)
                ]
                self._live.pop(g, None)

    def recoveries(self) -> dict[int, dict]:
        """Per-shard WAL recovery summaries (present after ``start``)."""
        return {
            i: shard.last_recovery.summary()
            for i, shard in enumerate(self.shards)
            if shard.last_recovery is not None
        }

    # -- ingest -------------------------------------------------------------

    def _live_scenario_locked(self, graph: str):
        """The logical live scenario, advanced incrementally (synthesis)."""
        from repro.experiments.runner import scenario_cache

        chain = self._chains.setdefault(graph, [])
        cached = self._live.get(graph)
        if cached is not None and cached[0] == len(chain):
            return cached[1]
        if cached is not None and cached[0] < len(chain):
            epoch, scenario = cached
            for delta in chain[epoch:]:
                scenario = apply_delta(scenario, delta)
        else:
            scenario = scenario_cache(
                graph, self.config.scale, n_snapshots=self.config.n_snapshots
            )
            for delta in chain:
                scenario = apply_delta(scenario, delta)
        self._live[graph] = (len(chain), scenario)
        return scenario

    def ingest(
        self,
        graph: str,
        delta: DeltaBatch | None = None,
        seed: int | None = None,
        n_add: int = 8,
        n_del: int = 8,
    ) -> int:
        """Route one logical delta to every shard; ack after all fsync.

        Returns the new logical epoch.  On any shard failure the
        committed shards are rewound before the error propagates, so an
        unacked ingest leaves no trace and the next attempt extends every
        shard's log contiguously.
        """
        with self._lock:
            chain = self._chains.setdefault(graph, [])
            if delta is None:
                if seed is None:
                    raise ValueError("ingest needs a DeltaBatch or a seed")
                scenario = self._live_scenario_locked(graph)
                delta = synthesize_delta(
                    scenario, seed=seed, n_add=n_add, n_del=n_del
                )
            subs = self.split_delta(graph, delta)
            epoch = len(chain) + 1
            futures = [
                self._ingest_pool.submit(shard.ingest, graph, sub)
                for shard, sub in zip(self.shards, subs)
            ]
            errors: list[BaseException] = []
            shard_epochs: list[int | None] = []
            for future in futures:
                try:
                    shard_epochs.append(future.result())
                except BaseException as exc:  # noqa: BLE001 - rethrown
                    errors.append(exc)
                    shard_epochs.append(None)
            if errors:
                # undo the shards that did commit: the ingest was never
                # acked, so the epoch must not survive anywhere
                for shard in self.shards:
                    shard.rewind_graph(graph, epoch - 1)
                raise RuntimeError(
                    f"sharded ingest of {graph} epoch {epoch} failed on "
                    f"{len(errors)}/{self.n_shards} shard(s); all shards "
                    f"rewound, nothing acked"
                ) from errors[0]
            misaligned = [e for e in shard_epochs if e != epoch]
            if misaligned:
                raise RuntimeError(
                    f"shard epochs diverged on {graph}: expected {epoch}, "
                    f"got {shard_epochs}"
                )
            chain.append(delta)
            cached = self._live.get(graph)
            if cached is not None and cached[0] == epoch - 1:
                self._live[graph] = (epoch, apply_delta(cached[1], delta))
        return epoch

    # -- health -------------------------------------------------------------

    def shard_health(self) -> list[dict]:
        """Per-shard role, epochs, WAL depth, and shm generation."""
        out = []
        for i, shard in enumerate(self.shards):
            wal = (
                shard.wal.stats()
                if shard.wal is not None
                else {"enabled": False}
            )
            plane = (
                shard.plane.stats()
                if shard.plane is not None
                else {"enabled": False}
            )
            out.append(
                {
                    "shard": i,
                    "role": shard.role,
                    "epochs": shard.graph_epochs(),
                    "wal_enabled": bool(wal.get("enabled", True)),
                    "wal_depth": int(wal.get("records", 0)),
                    "wal_lag_records": int(wal.get("lag_records", 0)),
                    "shm_generation": int(plane.get("generation", 0)),
                    "workers": shard.pool.workers,
                    "worker_pids": sorted(shard.pool.worker_pids),
                    "pool_restarts": shard.pool.restarts,
                    "scatter_plans": shard.stats.get("scatter_plans"),
                }
            )
        return out
