"""Scatter-gather query front end over a shard fleet.

One :class:`ScatterGatherFrontEnd` presents the same surface as a
:class:`~repro.service.core.QueryService` — ``submit``/``ingest``/
``health``/``metrics_text``/``service_stats`` and the context-manager
lifecycle — so the JSON-lines server and the load harness drive it
unchanged.  Underneath, a query becomes rounds of per-shard relaxation:

1. **Scatter** — seed triples route to the shards owning the sources;
   each pending shard gets a ``kind="scatter"`` sub-plan carrying the
   frontier (``DeltaBatch`` wire format) and the front end's known value
   block for the shard's columns, and relaxes its owned rows to a local
   fixed point in one of its pool workers.
2. **Gather** — the front end merges every shard's owned *updates* into
   the global ``(n_states, n_vertices)`` value matrix, then turns each
   *boundary* candidate that strictly improves the merged state into a
   reseed for the owning shard.  Candidates are never merged directly:
   a value enters the matrix only via its owner's updates, which is what
   makes the quiescent state the unique least fixed point — bit-exact
   with the unsharded BOE engine (the 5-algorithm differential parity
   test pins this).
3. Repeat until no candidate improves anything; summaries come from the
   gathered matrix, one row per (query, snapshot) state.

Instrumentation extends the PR 5/6 registry with ``shard``-labeled
families (``mega_shard_*_total{shard="i"}``) plus scatter/gather stage
histograms; ``scatter_stats()`` folds them into BENCH schema v5.
"""

from __future__ import annotations

import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import merge_profiles
from repro.service.batcher import (
    AdmissionQueue,
    PendingQuery,
    coalesce,
    split_expired,
)
from repro.service.cache import ResultCache
from repro.service.core import ServiceConfig, ServiceStats
from repro.service.pool import _decode_triples, _encode_triples, _summarize
from repro.service.request import (
    QueryRequest,
    QueryResponse,
    validate_request,
)
from repro.service.sharding.manager import ShardManager

__all__ = ["ScatterGatherFrontEnd"]

log = logging.getLogger(__name__)


class ScatterGatherFrontEnd:
    """Admits queries, scatters them over shards, gathers one response."""

    def __init__(
        self,
        manager: ShardManager,
        config: ServiceConfig | None = None,
    ) -> None:
        self.manager = manager
        self.config = config or manager.config
        self.n_shards = manager.n_shards
        self.metrics = MetricsRegistry()
        self.stats = ServiceStats(self.metrics)
        self.cache = ResultCache(self.config.cache_size)
        self.queue = AdmissionQueue(self.config.max_pending)
        # QueryService-surface attributes the server/loadgen duck-type
        # against: the front end is always a primary, has no WAL or shm
        # plane of its own (each shard owns those), and never follows
        self.role = "primary"
        self.replica = None
        self.primary_wal_dir: str | None = None
        self.wal = None
        self.plane = None
        self.last_recovery = None
        self._plan_ids = iter(range(1, 1 << 62))
        self._inflight: set[int] = set()
        self._unplanned = 0
        self._inflight_lock = threading.Lock()
        self._running = False
        self._thread: threading.Thread | None = None
        self._plan_pool: ThreadPoolExecutor | None = None
        self._started_at = time.monotonic()
        self._plan_ewma = self.metrics.gauge(
            "mega_plan_ewma_seconds",
            "EWMA of executed scatter-gather plan wall time",
            initial=0.05,
        )
        self._latency = self.metrics.histogram(
            "mega_query_latency_seconds",
            "end-to-end query latency (admit to resolve)",
        )
        self._scatter_hist = self.metrics.histogram(
            "mega_scatter_stage_seconds",
            "per-round scatter stage (dispatch to last shard result)",
        )
        self._gather_hist = self.metrics.histogram(
            "mega_gather_stage_seconds",
            "per-round gather stage (merge updates + route reseeds)",
        )
        self._rounds_total = self.metrics.counter(
            "mega_scatter_rounds_total",
            "global scatter-gather rounds across all plans",
        )
        self._shard_plans = self.metrics.labeled_counter(
            "mega_shard_scatter_plans_total",
            "scatter sub-plans dispatched to each shard",
        )
        self._shard_frontier = self.metrics.labeled_counter(
            "mega_shard_frontier_triples_total",
            "cross-shard frontier triples routed to each shard",
        )
        self._shard_relaxed = self.metrics.labeled_counter(
            "mega_shard_relaxed_edges_total",
            "edges relaxed inside each shard's workers",
        )
        self._shard_rounds = self.metrics.labeled_counter(
            "mega_shard_local_rounds_total",
            "local relaxation rounds run by each shard",
        )
        self._shard_epoch = self.metrics.labeled_gauge(
            "mega_shard_epoch", "max graph epoch per shard",
        )
        self._shard_wal_depth = self.metrics.labeled_gauge(
            "mega_shard_wal_records", "WAL records appended per shard",
        )
        self._shard_shm_gen = self.metrics.labeled_gauge(
            "mega_shard_shm_generation",
            "shm scenario-plane generation per shard",
        )
        reg = self.metrics
        reg.gauge_fn(
            "mega_queue_depth", lambda: len(self.queue),
            "queries waiting in the admission queue",
        )
        reg.gauge_fn(
            "mega_inflight_plans", lambda: len(self._inflight),
            "scatter-gather plans in flight",
        )
        reg.gauge_fn(
            "mega_unplanned_queries", lambda: self._unplanned,
            "queries accepted but not yet bound to a plan",
        )
        reg.gauge_fn(
            "mega_uptime_seconds",
            lambda: time.monotonic() - self._started_at,
            "seconds since the front end started",
        )
        reg.gauge_fn(
            "mega_shards", lambda: self.n_shards, "configured shard count",
        )

    # -- lifecycle ----------------------------------------------------------

    def start(self, wal_dir: str | None = None) -> "ScatterGatherFrontEnd":
        if self._running:
            return self
        if wal_dir is not None and self.manager.wal_root is None:
            raise ValueError(
                "pass the WAL root to the ShardManager, not the front end: "
                "durability is per-shard"
            )
        self.manager.start()
        self._plan_pool = ThreadPoolExecutor(
            max_workers=max(2, self.n_shards),
            thread_name_prefix="scatter-plan",
        )
        self._running = True
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._batch_loop, name="mega-scatter-batcher", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 60.0) -> bool:
        drained = True
        if drain:
            drained = self.drain(timeout)
            if not drained:
                self.stats.inc("drain_timeouts")
                log.warning(
                    "scatter front end drain timed out after %.1fs "
                    "(queue=%d unplanned=%d inflight=%d); stopping anyway",
                    timeout, len(self.queue), self._unplanned,
                    len(self._inflight),
                )
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        if self._plan_pool is not None:
            self._plan_pool.shutdown(wait=True, cancel_futures=True)
            self._plan_pool = None
        shards_ok = self.manager.stop(drain=drain, timeout=timeout)
        return drained and shards_ok

    def drain(self, timeout: float = 60.0) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._inflight_lock:
                busy = bool(self._inflight) or self._unplanned > 0
            if not busy and len(self.queue) == 0:
                return True
            time.sleep(0.01)
        return False

    def __enter__(self) -> "ScatterGatherFrontEnd":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- client surface -----------------------------------------------------

    def epoch(self, graph: str) -> int:
        return self.manager.epoch(graph)

    def follower_lags(self) -> dict[str, int]:
        return {}

    def retry_after_hint(self) -> float:
        with self._inflight_lock:
            inflight = len(self._inflight)
        backlog = inflight + len(self.queue) / max(self.config.max_batch, 1)
        hint = self._plan_ewma.get() * (1.0 + backlog)
        return float(min(max(hint, 0.05), 10.0))

    def _finish(self, pending: PendingQuery, response: QueryResponse) -> None:
        pending.resolve(response)
        self._latency.observe(pending.response.latency_s)

    def submit(self, request: QueryRequest) -> PendingQuery:
        """Admit one query (same contract as ``QueryService.submit``)."""
        epoch = self.epoch(request.graph)
        pending = PendingQuery(request, epoch)
        self.stats.inc("submitted")
        error = None
        try:
            validate_request(
                request, self.config.n_snapshots, self.config.scale
            )
        except ValueError as exc:
            error = str(exc)
        if error is None and request.mode != "eval":
            # the accelerator-model simulator is a whole-graph engine;
            # scatter sub-plans have no cycle model to merge
            error = (
                f"mode {request.mode!r} is not available on a sharded "
                f"service; use mode=eval or --shards 1"
            )
        if error is not None:
            self.stats.inc("errored")
            self._finish(
                pending,
                QueryResponse(request.id, "error", epoch=epoch, error=error),
            )
            return pending

        summaries = self.cache.get(request, epoch)
        if summaries is not None:
            self.stats.inc("cached")
            self.stats.inc("completed")
            self._finish(
                pending,
                QueryResponse(
                    request.id, "cached", epoch=epoch, summaries=summaries
                ),
            )
            return pending

        with self._inflight_lock:
            self._unplanned += 1
        if not self.queue.offer(pending):
            with self._inflight_lock:
                self._unplanned -= 1
            self.stats.inc("rejected")
            self._finish(
                pending,
                QueryResponse(
                    request.id,
                    "rejected",
                    epoch=epoch,
                    error="admission queue full (load shed)",
                    retry_after=self.retry_after_hint(),
                ),
            )
        return pending

    def ingest(
        self,
        graph: str,
        delta=None,
        seed: int | None = None,
        n_add: int = 8,
        n_del: int = 8,
    ) -> int:
        """Split-route one delta; acked only after every shard's WAL
        fsyncs (the manager's all-fsync barrier)."""
        epoch = self.manager.ingest(
            graph, delta=delta, seed=seed, n_add=n_add, n_del=n_del
        )
        self.cache.invalidate_graph(graph)
        self.stats.inc("ingests")
        return epoch

    def clear_caches(self) -> None:
        self.cache.clear()
        self.manager.clear_caches()

    def service_stats(self) -> dict:
        out = self.stats.snapshot(self.cache.stats())
        out["n_shards"] = self.n_shards
        return out

    def round_profile(self) -> dict:
        return merge_profiles(
            [shard.round_profile() for shard in self.manager.shards]
        )

    def metrics_text(self) -> str:
        """Registry render, with the shard-labeled gauges refreshed from
        live shard state first (counters update on the serving path)."""
        for entry in self.manager.shard_health():
            shard = entry["shard"]
            self._shard_epoch.labels(shard).set(
                max(entry["epochs"].values(), default=0)
            )
            self._shard_wal_depth.labels(shard).set(entry["wal_depth"])
            self._shard_shm_gen.labels(shard).set(entry["shm_generation"])
        return self.metrics.render()

    def health(self) -> dict:
        stats = self.service_stats()
        with self._inflight_lock:
            inflight = len(self._inflight)
            unplanned = self._unplanned
        degraded = bool(stats["errored"] or stats["rejected"])
        shards = self.manager.shard_health()
        return {
            "status": "degraded" if degraded else "ok",
            "role": self.role,
            "fencing_token": 0,
            "replication_lag_epochs": 0,
            "followers": {},
            "running": self._running,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "epochs": self.manager.graph_epochs(),
            "queue_depth": len(self.queue),
            "inflight_plans": inflight,
            "unplanned_queries": unplanned,
            "shed": stats["shed"],
            "errored": stats["errored"],
            "rejected": stats["rejected"],
            "missing_source": stats["missing_source"],
            "drain_timeouts": stats["drain_timeouts"],
            "retry_after_s": round(self.retry_after_hint(), 3),
            "workers": sum(s.pool.workers for s in self.manager.shards),
            "worker_pids": sorted(
                pid
                for s in self.manager.shards
                for pid in s.pool.worker_pids
            ),
            "pool_restarts": sum(
                s.pool.restarts for s in self.manager.shards
            ),
            "shm": {"enabled": False, "per_shard": True},
            "wal": {
                "enabled": bool(self.manager.wal_root),
                "per_shard": True,
            },
            "sharding": {
                "n_shards": self.n_shards,
                "scatter_rounds": int(self._rounds_total.get()),
                "shards": shards,
            },
        }

    def scatter_stats(self) -> dict:
        """Scatter-gather aggregates for BENCH schema v5."""
        scatter = self._scatter_hist.get()
        gather = self._gather_hist.get()

        def stage(snap: dict) -> dict:
            count = snap["count"]
            return {
                "rounds": int(count),
                "total_s": round(snap["sum"], 6),
                "mean_ms": round(
                    snap["sum"] / count * 1e3 if count else 0.0, 3
                ),
            }

        def per_shard(family) -> dict:
            return {k: int(v) for k, v in sorted(family.get().items())}

        return {
            "global_rounds": int(self._rounds_total.get()),
            "scatter_stage": stage(scatter),
            "gather_stage": stage(gather),
            "scatter_plans": per_shard(self._shard_plans),
            "frontier_triples": per_shard(self._shard_frontier),
            "relaxed_edges": per_shard(self._shard_relaxed),
            "local_rounds": per_shard(self._shard_rounds),
        }

    # -- batcher thread -----------------------------------------------------

    def _batch_loop(self) -> None:
        coalesce_s = max(self.config.coalesce_ms, 0.0) / 1e3
        while self._running:
            time.sleep(coalesce_s if coalesce_s > 0 else 0.0005)
            pending = self.queue.drain()
            if not pending:
                continue
            drained_at = time.monotonic()
            for p in pending:
                p.trace.mark("queue_drain", drained_at)
            pending, expired = split_expired(pending)
            for p in expired:
                self._shed(p)
            if not pending:
                continue
            if self.config.batching:
                plans = coalesce(pending, self.config.max_batch)
            else:
                plans = [[p] for p in pending]
            coalesced_at = time.monotonic()
            for plan in plans:
                for p in plan:
                    p.trace.mark("coalesce", coalesced_at)
                self._dispatch_plan(plan)

    def _shed(self, pending: PendingQuery) -> None:
        with self._inflight_lock:
            self._unplanned -= 1
        self.stats.inc("shed")
        self._finish(
            pending,
            QueryResponse(
                pending.request.id,
                "shed",
                epoch=pending.epoch,
                error="deadline expired before execution (load shed)",
                retry_after=self.retry_after_hint(),
            ),
        )

    def _dispatch_plan(
        self, queries: list[PendingQuery], degraded: bool = False
    ) -> None:
        plan_id = next(self._plan_ids)
        self.stats.inc("plans")
        self.stats.inc("plan_queries", len(queries))
        submitted_at = time.monotonic()
        with self._inflight_lock:
            self._inflight.add(plan_id)
            if not degraded:
                self._unplanned -= len(queries)
        for q in queries:
            q.trace.mark("plan_submit", submitted_at)
        pool = self._plan_pool
        if pool is None:  # stopped between drain and dispatch
            self._plan_failed(
                plan_id, queries, RuntimeError("front end is stopped")
            )
            return
        pool.submit(self._run_plan, plan_id, queries)

    # -- plan execution (runs on the plan-pool threads) ---------------------

    def _run_plan(self, plan_id: int, queries: list[PendingQuery]) -> None:
        first = queries[0].request
        epoch = queries[0].epoch
        sources = list(dict.fromkeys(q.request.source for q in queries))
        started = time.monotonic()
        for q in queries:
            q.trace.mark("worker_start", started)
        try:
            summaries = self._scatter_gather(first, epoch, sources)
        except Exception as exc:  # noqa: BLE001 - plan-level isolation
            self._plan_failed(plan_id, queries, exc)
            return
        ended = time.monotonic()
        self._plan_ewma.ewma(ended - started, alpha=0.2)
        for q in queries:
            q.trace.mark("worker_end", ended)
            per_source = summaries.get(q.request.source)
            if per_source is None:  # unreachable; mirrors the core guard
                self.stats.inc("missing_source")
                self.stats.inc("errored")
                self._finish(
                    q,
                    QueryResponse(
                        q.request.id,
                        "error",
                        epoch=q.epoch,
                        plan_id=plan_id,
                        error=(
                            f"scatter plan {plan_id} is missing source "
                            f"{q.request.source} (not cached)"
                        ),
                    ),
                )
                continue
            self.stats.inc("completed")
            self.cache.put(q.request, q.epoch, per_source)
            self._finish(
                q,
                QueryResponse(
                    q.request.id,
                    "ok",
                    epoch=q.epoch,
                    plan_id=plan_id,
                    summaries=per_source,
                ),
            )
        with self._inflight_lock:
            self._inflight.discard(plan_id)

    def _plan_failed(
        self, plan_id: int, queries: list[PendingQuery], exc: BaseException
    ) -> None:
        retryable = [q for q in queries if not q.retried]
        terminal = [q for q in queries if q.retried]
        for q in retryable:
            q.retried = True
        if retryable:
            self.stats.inc("retries", len(retryable))
            for q in retryable:
                self._dispatch_plan([q], degraded=True)
        for q in terminal:
            self.stats.inc("errored")
            self._finish(
                q,
                QueryResponse(
                    q.request.id,
                    "error",
                    epoch=q.epoch,
                    plan_id=plan_id,
                    error=f"{type(exc).__name__}: {exc}",
                ),
            )
        with self._inflight_lock:
            self._inflight.discard(plan_id)

    def _scatter_gather(
        self, request: QueryRequest, epoch: int, sources: list[int]
    ) -> dict[int, list]:
        """Run one plan to quiescence; returns summaries per source.

        The merge discipline is the correctness core: shard-owned
        *updates* merge into the global matrix unconditionally (the
        owner's local fixed point is authoritative for its columns),
        while *boundary* candidates only become reseeds when they
        strictly improve the merged state — and reseeds carry the
        candidate value, entering the matrix on a later round as their
        owner's update.  Seeding works the same way, so the scatter
        kernel's preload-and-activate-on-improvement logic subsumes
        redundant rediscovery.
        """
        from repro.algorithms import get_algorithm
        from repro.schedule.scatter import (
            merge_triples,
            route_by_owner,
            seed_triples,
        )

        graph = request.graph
        part = self.manager.partitioner(graph)
        n = part.n_vertices
        algorithm = get_algorithm(request.algo)
        if request.window is not None:
            w_lo, w_hi = request.window
            n_snapshots = w_hi - w_lo + 1
        else:
            n_snapshots = self.config.n_snapshots
        n_states = len(sources) * n_snapshots
        identity_row = algorithm.identity_values(n)
        values = np.repeat(identity_row[None, :], n_states, axis=0)
        sv, ss, sval = seed_triples(sources, n_snapshots, algorithm)
        pending = route_by_owner(part, sv, ss, sval)
        rounds = 0
        while pending:
            rounds += 1
            scatter_t0 = time.perf_counter()
            futures = {}
            for shard_id, (v, s, val) in pending.items():
                lo, hi = part.vertex_range(shard_id)
                self._shard_plans.labels(shard_id).inc()
                self._shard_frontier.labels(shard_id).inc(v.size)
                futures[shard_id] = self.manager.shards[
                    shard_id
                ].submit_scatter(
                    graph,
                    request.algo,
                    n_states=n_states,
                    vertex_lo=lo,
                    vertex_hi=hi,
                    frontier=_encode_triples(v, s, val),
                    state_block=np.ascontiguousarray(values[:, lo:hi]),
                    window=request.window,
                    epoch=epoch,
                )
            results = []
            for shard_id, future in futures.items():
                result = future.result(timeout=self.config.budget_s)
                self._shard_relaxed.labels(shard_id).inc(
                    result.relaxed_edges
                )
                self._shard_rounds.labels(shard_id).inc(result.local_rounds)
                results.append(result)
            self._scatter_hist.observe(time.perf_counter() - scatter_t0)
            gather_t0 = time.perf_counter()
            for result in results:
                uv, us, uval = _decode_triples(result.updates)
                merge_triples(algorithm, values, uv, us, uval)
            reseed_v, reseed_s, reseed_val = [], [], []
            for result in results:
                bv, bs, bval = _decode_triples(result.boundary)
                if bv.size == 0:
                    continue
                improving = algorithm.better(bval, values[bs, bv])
                if np.any(improving):
                    reseed_v.append(bv[improving])
                    reseed_s.append(bs[improving])
                    reseed_val.append(bval[improving])
            if reseed_v:
                pending = route_by_owner(
                    part,
                    np.concatenate(reseed_v),
                    np.concatenate(reseed_s),
                    np.concatenate(reseed_val),
                )
            else:
                pending = {}
            self._gather_hist.observe(time.perf_counter() - gather_t0)
        self._rounds_total.inc(rounds)
        return {
            source: [
                _summarize(
                    algorithm, values[q * n_snapshots + k], k
                )
                for k in range(n_snapshots)
            ]
            for q, source in enumerate(sources)
        }
