"""Sharded scatter-gather serving: a partitioned evolving graph behind
one front end.

``ShardManager`` splits the graph into N vertex-owned shards — each a
full :class:`~repro.service.core.QueryService` with its own worker pool,
shm plane, and WAL directory — and routes ingest with an all-fsync ack
barrier.  ``ScatterGatherFrontEnd`` serves queries as rounds of
per-shard relaxation with cross-shard frontier exchange, bit-exact with
the unsharded engine.  See docs/SERVICE.md §Sharding.
"""

from repro.service.sharding.frontend import ScatterGatherFrontEnd
from repro.service.sharding.manager import ShardManager, merge_sub_deltas
from repro.service.sharding.partial import (
    ScatterOutput,
    restrict_rows,
    scatter_relax,
)

__all__ = [
    "ScatterGatherFrontEnd",
    "ScatterOutput",
    "ShardManager",
    "merge_sub_deltas",
    "restrict_rows",
    "scatter_relax",
]
