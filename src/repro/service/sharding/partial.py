"""Per-shard partial evaluation: row-restricted scenarios + local relaxation.

A shard owns a contiguous vertex range ``[lo, hi)`` of the evolving graph
and materializes **only the union edges whose source it owns** — the
software analogue of MEGA's §3.2 partitioning, where each partition's
per-vertex state and edge slice fit the on-chip budget.  Restriction
commutes with both window extraction and delta application as long as
every delta routed to the shard touches only owned source rows (the
``ShardManager`` splits ingests by ``partition_of(src)`` to guarantee
exactly that), so a shard can advance its slice incrementally for the
cost of its own churn instead of the whole graph's.

:func:`scatter_relax` is the per-round worker kernel: preload the
shard's owned columns from the front end's known state, seed the
incoming frontier triples, relax to a *local* fixed point over owned
rows (presence-masked per state, so all snapshots share each edge
fetch), and report owned updates plus boundary candidates for remote
vertices.  Only seeds that strictly improve a preloaded cell activate,
so cross-shard rounds relax just the cone of new information instead of
re-deriving the whole region.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm
from repro.evolving.snapshots import EvolvingScenario
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import CSRGraph, gather_out_edges

__all__ = ["restrict_rows", "scatter_relax", "ScatterOutput"]


def restrict_rows(
    scenario: EvolvingScenario, lo: int, hi: int
) -> EvolvingScenario:
    """Scenario over only the union edges with source in ``[lo, hi)``.

    The vertex set is unchanged (destinations may lie anywhere), so vertex
    ids, snapshot tags, and window semantics all carry over verbatim; only
    the out-edge rows outside the range become empty.  Evaluation
    restricted to owned rows on the restricted scenario is exact — edges
    from unowned rows are never gathered by this shard anyway.
    """
    u = scenario.unified
    g = u.graph
    if not 0 <= lo <= hi <= g.n_vertices:
        raise ValueError(
            f"row range [{lo}, {hi}) outside [0, {g.n_vertices}]"
        )
    keep = (g.src_of_edge >= lo) & (g.src_of_edge < hi)
    counts = np.bincount(g.src_of_edge[keep], minlength=g.n_vertices)
    indptr = np.zeros(g.n_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    sub = CSRGraph(g.n_vertices, indptr, g.dst[keep], g.wt[keep])
    unified = UnifiedCSR(
        sub,
        u.add_step[keep],
        u.del_step[keep],
        u.n_snapshots,
    )
    meta = dict(scenario.metadata)
    meta["rows"] = (int(lo), int(hi))
    return EvolvingScenario(
        unified,
        source=scenario.source,
        name=f"{scenario.name}|rows[{lo}:{hi})",
        metadata=meta,
    )


class ScatterOutput:
    """One shard's answer to one scatter round."""

    __slots__ = (
        "upd_vertices", "upd_states", "upd_values",
        "bnd_vertices", "bnd_states", "bnd_values",
        "rounds", "relaxed_edges",
    )

    def __init__(
        self, upd, bnd, rounds: int, relaxed_edges: int
    ) -> None:
        self.upd_vertices, self.upd_states, self.upd_values = upd
        self.bnd_vertices, self.bnd_states, self.bnd_values = bnd
        self.rounds = int(rounds)
        self.relaxed_edges = int(relaxed_edges)


def scatter_relax(
    scenario: EvolvingScenario,
    algorithm: Algorithm,
    lo: int,
    hi: int,
    n_states: int,
    seed_vertices: np.ndarray,
    seed_states: np.ndarray,
    seed_values: np.ndarray,
    max_rounds: int = 200_000,
    state_block: np.ndarray | None = None,
) -> ScatterOutput:
    """Relax the shard's owned rows to a local fixed point.

    ``scenario`` should already be row-restricted (or a full scenario for
    the single-shard degenerate case — the kernel only ever gathers rows
    in ``[lo, hi)``, so a full scenario is merely larger, never wrong).
    State ``s`` evaluates snapshot ``s % n_snapshots``; seeds land via the
    algorithm's ``scatter_reduce``, so duplicate seeds per cell coalesce.

    ``state_block`` is the front end's known ``(n_states, hi - lo)`` value
    block for the owned columns from earlier rounds.  Cells it covers were
    already relaxed to a local fixed point in a previous invocation, so
    they start *inactive*: only seeds that strictly improve a cell
    propagate, which is what keeps cross-shard rounds from re-relaxing the
    whole region (the probe without it showed 3× redundant edge work at
    four shards).

    Returns owned cells that changed (updates), non-identity cells of
    remote vertices reached along boundary edges (candidates for their
    owners), and the number of local rounds run.
    """
    u = scenario.unified
    g = u.graph
    n = g.n_vertices
    n_snapshots = u.n_snapshots
    identity_row = algorithm.identity_values(n)
    values = np.repeat(identity_row[None, :], n_states, axis=0)
    if state_block is not None:
        if state_block.shape != (n_states, hi - lo):
            raise ValueError(
                f"state_block must be {(n_states, hi - lo)}; "
                f"got {state_block.shape}"
            )
        values[:, lo:hi] = state_block
    preloaded = values[:, lo:hi].copy()
    flat = values.reshape(-1)
    # a cell is active while its value has information the out-edges have
    # not propagated yet; remote cells are recorded but never expanded
    active = np.zeros((n_states, n), dtype=bool)
    if seed_vertices.size:
        sv = np.asarray(seed_vertices, dtype=np.int64)
        ss = np.asarray(seed_states, dtype=np.int64)
        sval = np.asarray(seed_values, dtype=np.float64)
        idx = ss * n + sv
        before = flat[idx].copy()
        algorithm.scatter_reduce(flat, idx, sval)
        imp = algorithm.better(flat[idx], before)
        active[ss[imp], sv[imp]] = True
    rounds = 0
    relaxed_edges = 0
    while rounds < max_rounds:
        frontier = np.flatnonzero(active[:, lo:hi].any(axis=0)) + lo
        if frontier.size == 0:
            break
        rounds += 1
        edge_idx, src_rep = gather_out_edges(g.indptr, frontier)
        if edge_idx.size == 0:
            break
        # one packed-plane gather serves every state sharing the edge set
        presence = u.presence_multi(edge_idx)
        edst = g.dst[edge_idx]
        ewt = g.wt[edge_idx]
        next_active = np.zeros_like(active)
        live_states = np.flatnonzero(active[:, frontier].any(axis=1))
        for s in live_states:
            mask = active[s, src_rep] & presence[s % n_snapshots]
            sel = np.flatnonzero(mask)
            if sel.size == 0:
                continue
            relaxed_edges += sel.size
            cand = algorithm.candidate(
                values[s, src_rep[sel]], ewt[sel]
            )
            dst_s = edst[sel]
            before = values[s, dst_s]
            algorithm.scatter_reduce(values[s], dst_s, cand)
            improved = dst_s[algorithm.better(values[s, dst_s], before)]
            if improved.size:
                next_active[s, improved] = True
        active = next_active
    # owned updates: cells that moved past the preloaded state; boundary:
    # any remote cell written this invocation (remote columns start at
    # identity, so non-identity means a boundary edge delivered it)
    owned = values[:, lo:hi]
    ust, uv = np.nonzero(owned != preloaded)
    upd = (uv + lo, ust, owned[ust, uv])
    remote = np.ones(n, dtype=bool)
    remote[lo:hi] = False
    bst, bv = np.nonzero(
        (values != identity_row[None, :]) & remote[None, :]
    )
    bnd = (bv, bst, values[bst, bv])
    return ScatterOutput(upd, bnd, rounds, relaxed_edges)
