"""Ad-hoc time-window queries over a snapshot range.

The triangular grid's intermediate common graphs (Fig. 1a) exist exactly
so that a query can be evaluated over *any* contiguous sub-window of the
history — the Tegra-style ad-hoc analysis the related-work section
discusses.  ``extract_window`` re-roots a unified CSR at the window's own
common graph: edges absent from every window snapshot are dropped, edges
present in all of them become common, and batch tags are re-based to the
window's local step indexing.  The result is a self-contained
:class:`~repro.evolving.unified_csr.UnifiedCSR`, so every workflow,
simulator and metric applies unchanged to the sub-window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evolving.snapshots import EvolvingScenario
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import CSRGraph
from repro.graph.edges import EdgeList, edge_keys

__all__ = ["extract_window", "window_scenario", "SlideResult", "slide_window"]


def extract_window(unified: UnifiedCSR, lo: int, hi: int) -> UnifiedCSR:
    """Unified CSR restricted to snapshots ``lo..hi`` (inclusive)."""
    if not 0 <= lo <= hi < unified.n_snapshots:
        raise IndexError(
            f"window [{lo}, {hi}] outside [0, {unified.n_snapshots - 1}]"
        )
    a, d = unified.add_step, unified.del_step

    # Edge fate within the window:
    #   * never present: added at/after hi, or deleted before lo -> drop;
    #   * present throughout: untouched, added before lo, deleted at/after
    #     hi -> common;
    #   * otherwise the batch step falls inside the window -> re-based tag.
    absent = ((a >= 0) & (a >= hi)) | ((d >= 0) & (d < lo))
    keep = ~absent

    new_add = np.where((a >= 0) & (a >= lo) & (a < hi), a - lo, -1)
    new_del = np.where((d >= 0) & (d >= lo) & (d < hi), d - lo, -1)

    graph = unified.graph
    counts = np.bincount(graph.src_of_edge[keep], minlength=graph.n_vertices)
    indptr = np.zeros(graph.n_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    sub = CSRGraph(
        graph.n_vertices, indptr, graph.dst[keep], graph.wt[keep]
    )
    return UnifiedCSR(
        sub,
        new_add[keep].astype(np.int32),
        new_del[keep].astype(np.int32),
        hi - lo + 1,
    )


@dataclass
class SlideResult:
    """Outcome of sliding a window forward by one transition.

    ``del_slots`` index the *old* union (for value repair against the
    pre-slide state); ``add_slots`` index the *new* union (for applying
    the additions once the rebuilt window is in place).
    """

    unified: UnifiedCSR
    del_slots: np.ndarray
    add_slots: np.ndarray


def slide_window(
    unified: UnifiedCSR,
    additions: EdgeList | None = None,
    deletions: list[tuple[int, int]] | None = None,
) -> SlideResult:
    """Advance a window ``[0..N-1]`` to ``[1..N]`` with one new transition.

    Pure function: validates the new batches against the CommonGraph
    one-change-per-edge rule, then rebuilds the union CSR with shifted
    batch tags — snapshot-0-only edges leave the union, additions that
    arrived at the first transition join the common graph, the new
    ``Δ+/Δ-`` arrive at the last transition.  Value maintenance is the
    caller's business (:class:`repro.core.window_server.WindowServer`
    repairs in place; the query service recomputes on demand).
    """
    graph = unified.graph
    n = unified.n_snapshots
    n_vertices = unified.n_vertices
    additions = additions or EdgeList.from_tuples(n_vertices, [])
    deletions = deletions or []
    if additions.n_vertices != n_vertices:
        raise ValueError("additions must share the window's vertex set")

    # CSR order sorts by (src, dst), so the union keys are sorted and
    # slot lookup is a binary search.
    union_keys = edge_keys(graph.src_of_edge, graph.dst, n_vertices)

    def slots_of(keys: np.ndarray) -> np.ndarray:
        """Union slot per key; -1 where the key is not in the union."""
        if union_keys.size == 0:
            # an edgeless window has no slots at all; numpy's fancy
            # indexing is eager (``&`` does not short-circuit), so the
            # general path below would fault on ``union_keys[pos]``
            return np.full(keys.shape, -1, dtype=np.int64)
        pos = np.searchsorted(union_keys, keys)
        pos = np.minimum(pos, union_keys.size - 1)
        found = union_keys[pos] == keys
        return np.where(found, pos, -1)

    # -- validate the new batches against the CommonGraph rule --------
    last_presence = unified.presence_mask(n - 1)
    del_pairs = np.asarray(deletions, dtype=np.int64).reshape(-1, 2)
    del_slot_arr = slots_of(del_pairs[:, 0] * n_vertices + del_pairs[:, 1])
    found_del = del_slot_arr >= 0
    alive = np.zeros(len(del_pairs), dtype=bool)
    alive[found_del] = last_presence[del_slot_arr[found_del]]
    bad = ~alive
    if np.any(bad):
        s, d = del_pairs[np.flatnonzero(bad)[0]]
        raise ValueError(
            f"cannot delete edge ({s}, {d}): not present in the "
            "latest snapshot"
        )
    internal = unified.add_step[del_slot_arr] >= 1
    if np.any(internal):
        s, d = del_pairs[np.flatnonzero(internal)[0]]
        raise ValueError(
            f"edge ({s}, {d}) was added inside the current window; "
            "one state change per edge per window — split the "
            "window before deleting it"
        )
    del_slots = del_slot_arr.tolist()

    add_key_arr = additions.keys
    if np.unique(add_key_arr).size != len(additions):
        raise ValueError("additions contain duplicate pairs")
    add_existing = slots_of(add_key_arr)
    known_slots = add_existing[add_existing >= 0]
    if np.any(last_presence[known_slots]):
        raise ValueError("additions duplicate a live edge")
    if np.any(unified.del_step[known_slots] >= 1):
        raise ValueError(
            "re-adding an edge deleted inside the current window; "
            "split the window first"
        )

    # -- rebuild the union with shifted tags ---------------------------
    keep = unified.del_step != 0  # snapshot-0-only edges leave the window
    add_step = unified.add_step[keep].astype(np.int64)
    del_step = unified.del_step[keep].astype(np.int64)
    add_step = np.where(add_step > 0, add_step - 1, -1)
    del_step = np.where(del_step > 0, del_step - 1, del_step)
    # deletions of the new transition: locate slots post-filter
    old_to_new = np.cumsum(keep) - 1
    for slot in del_slots:
        del_step[old_to_new[slot]] = n - 2

    pool = EdgeList(
        n_vertices,
        np.concatenate([graph.src_of_edge[keep], additions.src]),
        np.concatenate([graph.dst[keep], additions.dst]),
        np.concatenate([graph.wt[keep], additions.wt]),
    )
    add_step = np.concatenate(
        [add_step, np.full(len(additions), n - 2, dtype=np.int64)]
    )
    del_step = np.concatenate(
        [del_step, np.full(len(additions), -1, dtype=np.int64)]
    )
    order = np.lexsort((pool.dst, pool.src))
    new_unified = UnifiedCSR(
        CSRGraph.from_edges(pool),
        add_step[order].astype(np.int32),
        del_step[order].astype(np.int32),
        n,
    )
    new_keys = edge_keys(
        new_unified.graph.src_of_edge, new_unified.graph.dst, n_vertices
    )
    add_slots = np.searchsorted(new_keys, additions.keys)
    return SlideResult(
        new_unified,
        np.asarray(del_slots, dtype=np.int64),
        add_slots.astype(np.int64),
    )


def window_scenario(
    scenario: EvolvingScenario, lo: int, hi: int
) -> EvolvingScenario:
    """A scenario over the sub-window, preserving source and metadata."""
    unified = extract_window(scenario.unified, lo, hi)
    meta = dict(scenario.metadata)
    meta["window"] = (lo, hi)
    return EvolvingScenario(
        unified,
        source=scenario.source,
        name=f"{scenario.name}[{lo}:{hi}]",
        metadata=meta,
    )
