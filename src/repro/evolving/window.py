"""Ad-hoc time-window queries over a snapshot range.

The triangular grid's intermediate common graphs (Fig. 1a) exist exactly
so that a query can be evaluated over *any* contiguous sub-window of the
history — the Tegra-style ad-hoc analysis the related-work section
discusses.  ``extract_window`` re-roots a unified CSR at the window's own
common graph: edges absent from every window snapshot are dropped, edges
present in all of them become common, and batch tags are re-based to the
window's local step indexing.  The result is a self-contained
:class:`~repro.evolving.unified_csr.UnifiedCSR`, so every workflow,
simulator and metric applies unchanged to the sub-window.
"""

from __future__ import annotations

import numpy as np

from repro.evolving.snapshots import EvolvingScenario
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import CSRGraph

__all__ = ["extract_window", "window_scenario"]


def extract_window(unified: UnifiedCSR, lo: int, hi: int) -> UnifiedCSR:
    """Unified CSR restricted to snapshots ``lo..hi`` (inclusive)."""
    if not 0 <= lo <= hi < unified.n_snapshots:
        raise IndexError(
            f"window [{lo}, {hi}] outside [0, {unified.n_snapshots - 1}]"
        )
    a, d = unified.add_step, unified.del_step

    # Edge fate within the window:
    #   * never present: added at/after hi, or deleted before lo -> drop;
    #   * present throughout: untouched, added before lo, deleted at/after
    #     hi -> common;
    #   * otherwise the batch step falls inside the window -> re-based tag.
    absent = ((a >= 0) & (a >= hi)) | ((d >= 0) & (d < lo))
    keep = ~absent

    new_add = np.where((a >= 0) & (a >= lo) & (a < hi), a - lo, -1)
    new_del = np.where((d >= 0) & (d >= lo) & (d < hi), d - lo, -1)

    graph = unified.graph
    counts = np.bincount(graph.src_of_edge[keep], minlength=graph.n_vertices)
    indptr = np.zeros(graph.n_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    sub = CSRGraph(
        graph.n_vertices, indptr, graph.dst[keep], graph.wt[keep]
    )
    return UnifiedCSR(
        sub,
        new_add[keep].astype(np.int32),
        new_del[keep].astype(np.int32),
        hi - lo + 1,
    )


def window_scenario(
    scenario: EvolvingScenario, lo: int, hi: int
) -> EvolvingScenario:
    """A scenario over the sub-window, preserving source and metadata."""
    unified = extract_window(scenario.unified, lo, hi)
    meta = dict(scenario.metadata)
    meta["window"] = (lo, hi)
    return EvolvingScenario(
        unified,
        source=scenario.source,
        name=f"{scenario.name}[{lo}:{hi}]",
        metadata=meta,
    )
