"""Evolving-graph scenario synthesis.

The paper synthesizes 16 snapshots per input by "randomly creating batches
consisting of 1% of the edges (half additions and half deletions) to mimic
the evolution of the graph" (§5.1).  :func:`synthesize_scenario` reproduces
that workload generator, including the batch-size imbalance knob used by
Fig. 21, and packages the result as an :class:`EvolvingScenario` backed by
the unified CSR representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.evolving.batches import BatchId, BatchKind, EdgeBatch
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import CSRGraph
from repro.graph.edges import EdgeList

__all__ = ["EvolvingScenario", "synthesize_scenario", "batch_sizes"]


@dataclass
class EvolvingScenario:
    """A full evolving-graph workload: unified CSR + query source.

    ``unified`` holds the union graph and snapshot tags; helper accessors
    delegate to it so client code can treat the scenario as the single
    entry point.
    """

    unified: UnifiedCSR
    source: int = 0
    name: str = "scenario"
    metadata: dict = field(default_factory=dict)

    @property
    def n_vertices(self) -> int:
        return self.unified.n_vertices

    @property
    def n_snapshots(self) -> int:
        return self.unified.n_snapshots

    def snapshot_graph(self, k: int) -> CSRGraph:
        return self.unified.snapshot_graph(k)

    def common_graph(self) -> CSRGraph:
        return self.unified.common_graph()

    def batch(self, batch_id: BatchId) -> EdgeBatch:
        return self.unified.batch(batch_id)

    def addition_batch(self, j: int) -> EdgeBatch:
        return self.unified.batch(BatchId(BatchKind.ADDITION, j))

    def deletion_batch(self, j: int) -> EdgeBatch:
        return self.unified.batch(BatchId(BatchKind.DELETION, j))

    def all_batches(self) -> list[EdgeBatch]:
        return self.unified.deletion_batches() + self.unified.addition_batches()


def batch_sizes(
    total: int, n_batches: int, imbalance: float, rng: np.random.Generator
) -> np.ndarray:
    """Split ``total`` edges into ``n_batches`` batch sizes.

    ``imbalance`` is the paper's Fig. 21 knob: the ratio between the largest
    and smallest batch.  ``1.0`` produces equal batches; larger values draw
    sizes uniformly between ``s`` and ``imbalance * s`` and rescale so the
    batches still sum to ``total``.
    """
    if n_batches <= 0:
        return np.zeros(0, dtype=np.int64)
    if imbalance < 1.0:
        raise ValueError("imbalance must be >= 1.0")
    if n_batches == 0:
        return np.zeros(0, dtype=np.int64)
    if imbalance == 1.0:
        raw = np.full(n_batches, total / n_batches)
    else:
        raw = rng.uniform(1.0, imbalance, size=n_batches)
        raw = raw * (total / raw.sum())
    sizes = np.floor(raw).astype(np.int64)
    # distribute the rounding remainder deterministically
    remainder = total - int(sizes.sum())
    sizes[:remainder] += 1
    return sizes


def synthesize_scenario(
    pool: EdgeList,
    n_snapshots: int = 16,
    batch_pct: float = 0.01,
    add_fraction: float = 0.5,
    imbalance: float = 1.0,
    source: int = 0,
    seed: int = 0,
    name: str = "scenario",
) -> EvolvingScenario:
    """Synthesize an evolving-graph scenario from an edge pool.

    The pool is split into three disjoint groups:

    * *future additions* — absent from ``G_0``, each assigned to one
      addition batch ``Δ+_j``;
    * *future deletions* — present in ``G_0``, each assigned to one
      deletion batch ``Δ-_j``;
    * *common edges* — present in every snapshot (the CommonGraph).

    Each transition batch moves ``batch_pct`` of the initial snapshot's
    edges, split ``add_fraction`` additions / ``1 - add_fraction``
    deletions, mirroring the paper's §5.1 workload.
    """
    if not 0 < batch_pct <= 0.5:
        raise ValueError("batch_pct must be in (0, 0.5]")
    if not 0.0 <= add_fraction <= 1.0:
        raise ValueError("add_fraction must be in [0, 1]")
    if n_snapshots < 1:
        raise ValueError("a scenario needs at least one snapshot")
    if not pool.has_unique_pairs():
        raise ValueError("edge pool must not contain duplicate (src, dst) pairs")

    rng = np.random.default_rng(seed)
    n_transitions = n_snapshots - 1
    m_pool = len(pool)

    # |E_0| satisfies: pool = E_0 + total additions; additions and deletions
    # are each a fraction of |E_0| per transition.
    add_share = batch_pct * add_fraction * n_transitions
    m_initial = int(round(m_pool / (1.0 + add_share)))
    per_batch = batch_pct * m_initial
    total_adds = int(round(per_batch * add_fraction * n_transitions))
    total_dels = int(round(per_batch * (1 - add_fraction) * n_transitions))
    if total_adds + total_dels > m_pool:
        raise ValueError("edge pool too small for the requested batches")

    perm = rng.permutation(m_pool)
    add_edges = perm[:total_adds]
    del_edges = perm[total_adds: total_adds + total_dels]

    add_step = np.full(m_pool, -1, dtype=np.int32)
    del_step = np.full(m_pool, -1, dtype=np.int32)

    add_sz = batch_sizes(total_adds, n_transitions, imbalance, rng)
    del_sz = batch_sizes(total_dels, n_transitions, imbalance, rng)
    add_step[add_edges] = np.repeat(np.arange(n_transitions, dtype=np.int32), add_sz)
    del_step[del_edges] = np.repeat(np.arange(n_transitions, dtype=np.int32), del_sz)

    # Build the union CSR; tags must be permuted into CSR edge order.
    order = np.lexsort((pool.dst, pool.src))
    graph = CSRGraph.from_edges(pool)  # sorts identically
    unified = UnifiedCSR(graph, add_step[order], del_step[order], n_snapshots)

    # Pick a source with nonzero out-degree in the CommonGraph so every
    # workflow starts from a meaningful query.
    if source == 0:
        common = unified.common_graph()
        degrees = np.diff(common.indptr)
        if degrees[0] == 0 and degrees.max() > 0:
            source = int(np.argmax(degrees))

    return EvolvingScenario(
        unified,
        source=source,
        name=name,
        metadata={
            "batch_pct": batch_pct,
            "add_fraction": add_fraction,
            "imbalance": imbalance,
            "seed": seed,
            "initial_edges": m_initial,
        },
    )
