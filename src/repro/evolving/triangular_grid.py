"""The Triangular-Grid structure over intermediate common graphs (Fig. 1a).

Recursively bisecting the snapshot window yields a binary tree whose nodes
are intermediate common graphs ``ICG(lo, hi)`` (the edges common to
snapshots ``lo..hi``) and whose leaves are the snapshots themselves.  The
Work-Sharing workflow (Fig. 1c) walks this tree, applying each hop's edge
additions once per tree edge instead of once per snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.evolving.common_graph import range_common_mask
from repro.evolving.unified_csr import UnifiedCSR

__all__ = ["GridNode", "TriangularGrid"]


@dataclass
class GridNode:
    """One node of the triangular grid: the common graph of ``lo..hi``."""

    lo: int
    hi: int
    parent: "GridNode | None" = None
    children: list["GridNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.lo == self.hi

    @property
    def snapshot(self) -> int:
        if not self.is_leaf:
            raise ValueError("only leaves correspond to a single snapshot")
        return self.lo

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ICG[{self.lo},{self.hi}]" if not self.is_leaf else f"G_{self.lo}"


class TriangularGrid:
    """Bisection tree over a snapshot window with per-hop edge sets."""

    def __init__(self, unified: UnifiedCSR) -> None:
        self.unified = unified
        self.root = GridNode(0, unified.n_snapshots - 1)
        self._build(self.root)

    def _build(self, node: GridNode) -> None:
        if node.is_leaf:
            return
        mid = (node.lo + node.hi) // 2
        left = GridNode(node.lo, mid, parent=node)
        right = GridNode(mid + 1, node.hi, parent=node)
        node.children = [left, right]
        self._build(left)
        self._build(right)

    def mask_of(self, node: GridNode) -> np.ndarray:
        """Union-edge membership mask of the node's (common) graph."""
        return range_common_mask(self.unified, node.lo, node.hi)

    def hop_edges(self, parent: GridNode, child: GridNode) -> np.ndarray:
        """Union-edge indices added when hopping from parent to child.

        The child's common graph is a superset of the parent's: narrowing
        the snapshot range only *adds* edges (the CommonGraph invariant).
        """
        pmask = self.mask_of(parent)
        cmask = self.mask_of(child)
        return np.flatnonzero(cmask & ~pmask)

    def walk_preorder(self):
        """Yield ``(parent, child)`` tree edges in depth-first order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            for child in reversed(node.children):
                yield node, child
                stack.append(child)

    def leaves(self) -> list[GridNode]:
        out = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.append(node)
            else:
                stack.extend(reversed(node.children))
        return out

    def total_hop_edge_count(self) -> int:
        """Total edges applied across all hops (Work-Sharing's Fig. 3 cost)."""
        return sum(
            int(self.hop_edges(p, c).shape[0]) for p, c in self.walk_preorder()
        )
