"""Building evolving-graph windows from timestamped edge events.

Real deployments do not hand you pre-cut batches: they have a log of edge
events — ``(time, src, dst, weight, +/-)`` — and a time window to analyze.
:class:`EvolvingGraphBuilder` ingests such a log, cuts it into the
requested number of snapshots at equal-time (or explicit) boundaries, and
emits the :class:`~repro.evolving.snapshots.EvolvingScenario` the rest of
the library consumes.

CommonGraph semantics require each edge to change state at most once
inside the window (an edge that is added *and* later removed belongs to
neither pure chain — the paper's batches have this property by
construction).  The builder resolves repeated events per edge to their
*net* effect across each snapshot boundary and rejects windows where an
edge both appears and disappears, directing the user to split the window
(the same restriction CommonGraph imposes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evolving.snapshots import EvolvingScenario
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import CSRGraph
from repro.graph.edges import EdgeList, edge_keys

__all__ = ["EdgeEvent", "EvolvingGraphBuilder"]


@dataclass(frozen=True)
class EdgeEvent:
    """One timestamped mutation of the graph."""

    time: float
    src: int
    dst: int
    weight: float = 1.0
    add: bool = True


class EvolvingGraphBuilder:
    """Accumulates edge events and cuts them into a snapshot window."""

    def __init__(self, n_vertices: int, initial: EdgeList | None = None) -> None:
        self.n_vertices = int(n_vertices)
        if initial is not None and initial.n_vertices != n_vertices:
            raise ValueError("initial edges must match the vertex count")
        self._initial = initial
        self._events: list[EdgeEvent] = []

    def add_edge(self, time: float, src: int, dst: int, weight: float = 1.0) -> None:
        self.record(EdgeEvent(time, src, dst, weight, add=True))

    def remove_edge(self, time: float, src: int, dst: int) -> None:
        self.record(EdgeEvent(time, src, dst, add=False))

    def record(self, event: EdgeEvent) -> None:
        if not 0 <= event.src < self.n_vertices:
            raise ValueError(f"src {event.src} out of range")
        if not 0 <= event.dst < self.n_vertices:
            raise ValueError(f"dst {event.dst} out of range")
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    # -- window cutting ------------------------------------------------------

    def boundaries(self, n_snapshots: int) -> np.ndarray:
        """Equal-time snapshot boundaries over the recorded event span."""
        if not self._events:
            raise ValueError("no events recorded")
        times = np.array([e.time for e in self._events])
        lo, hi = float(times.min()), float(times.max())
        return np.linspace(lo, hi, n_snapshots)[1:]

    def build(
        self,
        n_snapshots: int,
        boundaries: np.ndarray | None = None,
        source: int = 0,
        name: str = "built",
    ) -> EvolvingScenario:
        """Cut the event log into an ``n_snapshots`` window.

        Snapshot 0 is the graph at the window start (the ``initial``
        edges); ``boundaries[j]`` is the observation time of snapshot
        ``j + 1``.  An edge's membership in snapshot ``j + 1`` is its net
        state after the last event at or before ``boundaries[j]``; events
        after the final boundary fall outside the window and are ignored.
        """
        if n_snapshots < 2:
            raise ValueError("a window needs at least two snapshots")
        if boundaries is None:
            boundaries = self.boundaries(n_snapshots)
        boundaries = np.asarray(boundaries, dtype=np.float64)
        if boundaries.shape[0] != n_snapshots - 1:
            raise ValueError(
                f"need {n_snapshots - 1} boundaries, got {boundaries.shape[0]}"
            )
        if np.any(np.diff(boundaries) < 0):
            raise ValueError("boundaries must be non-decreasing")

        # Net state change per edge per transition step.
        initial = self._initial or EdgeList.from_tuples(self.n_vertices, [])
        initial_keys = set(initial.keys.tolist())

        # last event per (edge, step) wins; then per edge, track the state
        # sequence across steps.
        per_edge: dict[int, list[EdgeEvent]] = {}
        for e in sorted(self._events, key=lambda ev: ev.time):
            key = int(
                edge_keys(
                    np.array([e.src]), np.array([e.dst]), self.n_vertices
                )[0]
            )
            per_edge.setdefault(key, []).append(e)

        src_list, dst_list, wt_list = list(initial.src), list(initial.dst), list(initial.wt)
        add_step = [-1] * len(initial)
        del_step = [-1] * len(initial)
        index_of = {int(k): i for i, k in enumerate(initial.keys)}

        for key, events in per_edge.items():
            initially_present = key in initial_keys
            # state after the last event at or before each boundary
            present = initially_present
            states = []
            ei = 0
            weight = None
            for b in boundaries:
                while ei < len(events) and events[ei].time <= b:
                    present = events[ei].add
                    if events[ei].add:
                        weight = events[ei].weight
                    ei += 1
                states.append(present)
            seq = [initially_present] + states
            changes = [
                (j, seq[j + 1]) for j in range(len(states)) if seq[j] != seq[j + 1]
            ]
            if len(changes) > 1:
                src = key // self.n_vertices
                dst = key % self.n_vertices
                raise ValueError(
                    f"edge ({src}, {dst}) changes state more than once in "
                    "the window; CommonGraph windows require one change per "
                    "edge — split the window"
                )
            if not changes:
                continue
            step, became_present = changes[0]
            if became_present:
                if initially_present:  # pragma: no cover - defensive
                    raise AssertionError
                src_list.append(key // self.n_vertices)
                dst_list.append(key % self.n_vertices)
                wt_list.append(weight if weight is not None else 1.0)
                add_step.append(step)
                del_step.append(-1)
            else:
                idx = index_of[key]
                del_step[idx] = step

        pool = EdgeList(
            self.n_vertices,
            np.asarray(src_list, dtype=np.int64),
            np.asarray(dst_list, dtype=np.int64),
            np.asarray(wt_list, dtype=np.float64),
        )
        order = np.lexsort((pool.dst, pool.src))
        graph = CSRGraph.from_edges(pool)
        unified = UnifiedCSR(
            graph,
            np.asarray(add_step, dtype=np.int32)[order],
            np.asarray(del_step, dtype=np.int32)[order],
            n_snapshots,
        )
        return EvolvingScenario(unified, source=source, name=name)
