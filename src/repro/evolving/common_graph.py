"""CommonGraph computations (paper §2.1, building on [Afarin et al., ASPLOS'23]).

The CommonGraph ``G_c`` of a snapshot window is the set of edges present in
*every* snapshot.  Starting from ``G_c``, any snapshot is reachable through
edge *additions only*: deletion batches are re-added to the older snapshots
that still contain them.  This module provides the set algebra over a
:class:`~repro.evolving.unified_csr.UnifiedCSR` — which batches are needed
to hop from (intermediate) common graphs to snapshots, and the operation
counts behind the paper's Fig. 3 motivation.
"""

from __future__ import annotations

import numpy as np

from repro.evolving.batches import BatchId, BatchKind
from repro.evolving.unified_csr import UnifiedCSR

__all__ = [
    "batches_for_snapshot",
    "common_graph_mask",
    "range_common_mask",
    "edges_to_reach",
]


def batches_for_snapshot(unified: UnifiedCSR, snapshot: int) -> list[BatchId]:
    """Batches (as additions) needed to hop from ``G_c`` to ``G_snapshot``.

    ``G_k = G_c ∪ {Δ-_j : j >= k} ∪ {Δ+_j : j < k}``.  Deletion batches are
    listed newest-first and addition batches oldest-first, matching the
    chain orders used by the execution workflows.
    """
    n = unified.n_snapshots
    dels = [
        BatchId(BatchKind.DELETION, j) for j in range(n - 2, snapshot - 1, -1)
    ]
    adds = [BatchId(BatchKind.ADDITION, j) for j in range(0, snapshot)]
    return dels + adds


def common_graph_mask(unified: UnifiedCSR) -> np.ndarray:
    """Mask over union edges for ``G_c`` — edges in every snapshot."""
    return unified.common_mask


def range_common_mask(unified: UnifiedCSR, lo: int, hi: int) -> np.ndarray:
    """Mask for the *intermediate* common graph of snapshots ``lo..hi``.

    These are the ``ICG`` nodes of the triangular grid (paper Fig. 1a).
    An edge is common to snapshots ``lo..hi`` iff it is present in all of
    them: never-touched edges, edges deleted at step ``j >= hi`` (still in
    snapshot ``hi``), and edges added at step ``j < lo`` (already in
    snapshot ``lo``).
    """
    if not 0 <= lo <= hi < unified.n_snapshots:
        raise IndexError("invalid snapshot range")
    a, d = unified.add_step, unified.del_step
    added_ok = (a == -1) | (a < lo)
    deleted_ok = (d == -1) | (d >= hi)
    return added_ok & deleted_ok


def edges_to_reach(
    unified: UnifiedCSR, from_mask: np.ndarray, to_mask: np.ndarray
) -> np.ndarray:
    """Union-edge indices to add when hopping ``from_mask`` → ``to_mask``.

    Raises if the hop would require deletions (the CommonGraph invariant is
    that every hop in every workflow is addition-only).
    """
    missing = to_mask & ~from_mask
    removed = from_mask & ~to_mask
    if np.any(removed):
        raise ValueError(
            "hop would delete edges — not a valid CommonGraph transition"
        )
    return np.flatnonzero(missing)
