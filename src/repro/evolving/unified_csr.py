"""Unified evolving-graph CSR representation (paper Fig. 6).

One CSR over the *union* of all snapshot edge sets, with a per-edge tag
array recording which snapshots each edge belongs to:

* common edges (``"-"`` in the paper's figure) are in every snapshot;
* an edge tagged as added at step ``j`` is in snapshots ``j+1 .. N-1``;
* an edge tagged as deleted at step ``j`` is in snapshots ``0 .. j``.

The paper stores the tag as a single label per edge; we keep two small
integer arrays (``add_step``/``del_step``, ``-1`` meaning "not applicable")
which encode exactly the same information and vectorize the per-snapshot
presence tests used by the multi-version engine.

Presence tests are served from a **bit-packed plane matrix** built lazily
via ``np.packbits``: plane ``p`` is a ``(n_union_edges,)`` ``uint8`` row
whose bit ``j`` says whether the edge is present in snapshot ``8p + j``.
One byte fetch per edge answers up to eight snapshots at once — the
software analogue of MEGA's §3.1 shared edge fetch — and the matrix is 8×
smaller than the dense ``n_snapshots × n_union_edges`` boolean form it
replaces.  ``mega-repro bench-kernels`` times the packed gather against
the dense path it replaced (kept as ``_presence_of_dense`` for parity
checks and benchmarking).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.evolving.batches import BatchId, BatchKind, EdgeBatch

__all__ = ["UnifiedCSR"]

NOT_APPLICABLE = -1


class UnifiedCSR:
    """Union CSR + snapshot tags; the default storage format of MEGA."""

    def __init__(
        self,
        graph: CSRGraph,
        add_step: np.ndarray,
        del_step: np.ndarray,
        n_snapshots: int,
        presence_planes: np.ndarray | None = None,
    ) -> None:
        self.graph = graph
        self.add_step = np.asarray(add_step, dtype=np.int32)
        self.del_step = np.asarray(del_step, dtype=np.int32)
        self.n_snapshots = int(n_snapshots)
        if self.add_step.shape[0] != graph.n_edges:
            raise ValueError("add_step must have one entry per union edge")
        if self.del_step.shape[0] != graph.n_edges:
            raise ValueError("del_step must have one entry per union edge")
        if n_snapshots < 1:
            raise ValueError("need at least one snapshot")
        both = (self.add_step >= 0) & (self.del_step >= 0)
        if np.any(both):
            raise ValueError(
                "an edge cannot be both an addition and a deletion within "
                "one CommonGraph window"
            )
        if np.any(self.add_step >= n_snapshots - 1) or np.any(
            self.del_step >= n_snapshots - 1
        ):
            raise ValueError("batch steps must lie in [0, n_snapshots-2]")
        self._snapshot_cache: dict[int, CSRGraph] = {}
        self._reverse: CSRGraph | None = None
        #: bit-packed presence planes; built lazily, or injected by a
        #: shared-memory attach so workers skip the packbits pass
        self._planes: np.ndarray | None = None
        if presence_planes is not None:
            planes = np.asarray(presence_planes, dtype=np.uint8)
            expect = ((self.n_snapshots + 7) // 8, graph.n_edges)
            if planes.shape != expect:
                raise ValueError(
                    f"presence_planes must have shape {expect}; "
                    f"got {planes.shape}"
                )
            self._planes = planes

    # -- structural views --------------------------------------------------

    @property
    def n_vertices(self) -> int:
        return self.graph.n_vertices

    @property
    def n_union_edges(self) -> int:
        return self.graph.n_edges

    @property
    def common_mask(self) -> np.ndarray:
        """Edges belonging to the CommonGraph ``G_c`` (all snapshots)."""
        return (self.add_step == NOT_APPLICABLE) & (self.del_step == NOT_APPLICABLE)

    def presence_planes(self) -> np.ndarray:
        """Bit-packed presence: ``(ceil(K/8), M)`` ``uint8``, lazy-cached.

        Bit ``j`` of plane ``p`` (little-endian bit order) says whether
        the edge is present in snapshot ``8p + j``.  The matrix is 8×
        smaller than the dense boolean form and read-only — shared-memory
        attaches publish it verbatim.
        """
        if self._planes is None:
            snaps = np.arange(self.n_snapshots, dtype=np.int32)[:, None]
            a = self.add_step[None, :]
            d = self.del_step[None, :]
            dense = ((a == NOT_APPLICABLE) | (a < snaps)) & (
                (d == NOT_APPLICABLE) | (d >= snaps)
            )
            planes = np.packbits(dense, axis=0, bitorder="little")
            planes.flags.writeable = False
            self._planes = planes
        return self._planes

    def presence_mask(self, snapshot: int) -> np.ndarray:
        """Boolean mask over union edges: present in ``G_snapshot``?"""
        self._check_snapshot(snapshot)
        plane = self.presence_planes()[snapshot >> 3]
        return ((plane >> (snapshot & 7)) & 1).view(bool)

    def presence_of(self, snapshot: int, edge_idx: np.ndarray) -> np.ndarray:
        """Presence test restricted to a set of union-edge slots.

        One byte gather per slot against the packed planes — the
        unpack-on-gather fast path ``bench-kernels`` measures against
        :meth:`_presence_of_dense`.
        """
        self._check_snapshot(snapshot)
        plane = self.presence_planes()[snapshot >> 3]
        return ((plane[edge_idx] >> (snapshot & 7)) & 1).view(bool)

    def presence_multi(self, edge_idx: np.ndarray | None = None) -> np.ndarray:
        """Presence of every snapshot at once: ``(K, E)`` bool.

        ``edge_idx`` restricts to a set of union-edge slots (the
        multi-version gather of the engine's inner loop); ``None`` yields
        the full ``(K, M)`` matrix.  Each edge's planes are fetched once
        and unpacked across all snapshots — MEGA's shared-fetch insight
        applied to the presence test itself.

        When a compiled kernel backend is active the restricted form
        fuses the gather and the unpack into one pass per edge (no
        intermediate gathered-plane matrix); the unpackbits path below
        stays as the parity reference.
        """
        planes = self.presence_planes()
        if edge_idx is not None:
            from repro.perf.backend import get_backend

            gather = get_backend().presence_gather
            if gather is not None:
                return gather(
                    planes, np.ascontiguousarray(edge_idx, dtype=np.int64),
                    self.n_snapshots,
                )
        gathered = planes if edge_idx is None else planes[:, edge_idx]
        return np.unpackbits(
            gathered, axis=0, count=self.n_snapshots, bitorder="little"
        ).view(bool)

    def _presence_of_dense(
        self, snapshot: int, edge_idx: np.ndarray
    ) -> np.ndarray:
        """The pre-packing dense presence test (tag compares per call).

        Kept as the reference implementation: parity tests check the
        packed planes against it, and ``bench-kernels`` reports the
        packed gather's speedup over it.
        """
        self._check_snapshot(snapshot)
        a = self.add_step[edge_idx]
        d = self.del_step[edge_idx]
        return ((a == NOT_APPLICABLE) | (a < snapshot)) & (
            (d == NOT_APPLICABLE) | (d >= snapshot)
        )

    def batch_mask(self, batch_id: BatchId) -> np.ndarray:
        if batch_id.kind is BatchKind.ADDITION:
            return self.add_step == batch_id.step
        return self.del_step == batch_id.step

    def batch(self, batch_id: BatchId) -> EdgeBatch:
        return EdgeBatch(batch_id, np.flatnonzero(self.batch_mask(batch_id)))

    def addition_batches(self) -> list[EdgeBatch]:
        return [
            self.batch(BatchId(BatchKind.ADDITION, j))
            for j in range(self.n_snapshots - 1)
        ]

    def deletion_batches(self) -> list[EdgeBatch]:
        return [
            self.batch(BatchId(BatchKind.DELETION, j))
            for j in range(self.n_snapshots - 1)
        ]

    # -- materialized graphs ------------------------------------------------

    def snapshot_graph(self, snapshot: int) -> CSRGraph:
        """Materialize ``G_snapshot`` as its own CSR (cached)."""
        self._check_snapshot(snapshot)
        if snapshot not in self._snapshot_cache:
            mask = self.presence_mask(snapshot)
            self._snapshot_cache[snapshot] = self._masked_graph(mask)
        return self._snapshot_cache[snapshot]

    def common_graph(self) -> CSRGraph:
        """Materialize the CommonGraph ``G_c``."""
        return self._masked_graph(self.common_mask)

    def reverse_graph(self) -> CSRGraph:
        """Transpose of the *union* graph (cached); used by deletion repair.

        Edge slot identity is lost in the transpose, so the reverse graph
        carries the union edge index as ``wt``-parallel metadata via
        :attr:`reverse_edge_origin`.
        """
        if self._reverse is None:
            self._reverse = self.graph.reverse()
            # Recover, for each reverse slot, the originating union slot by
            # sorting union slots into (dst, src) order the same way
            # CSRGraph.from_edges does.
            order = np.lexsort((self.graph.src_of_edge, self.graph.dst))
            self.reverse_edge_origin = order
        return self._reverse

    def _masked_graph(self, mask: np.ndarray) -> CSRGraph:
        counts = np.bincount(
            self.graph.src_of_edge[mask], minlength=self.n_vertices
        )
        indptr = np.zeros(self.n_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRGraph(
            self.n_vertices, indptr, self.graph.dst[mask], self.graph.wt[mask]
        )

    def _check_snapshot(self, snapshot: int) -> None:
        if not 0 <= snapshot < self.n_snapshots:
            raise IndexError(
                f"snapshot {snapshot} out of range [0, {self.n_snapshots})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UnifiedCSR(n_vertices={self.n_vertices}, "
            f"union_edges={self.n_union_edges}, snapshots={self.n_snapshots})"
        )
