"""Unified evolving-graph CSR representation (paper Fig. 6).

One CSR over the *union* of all snapshot edge sets, with a per-edge tag
array recording which snapshots each edge belongs to:

* common edges (``"-"`` in the paper's figure) are in every snapshot;
* an edge tagged as added at step ``j`` is in snapshots ``j+1 .. N-1``;
* an edge tagged as deleted at step ``j`` is in snapshots ``0 .. j``.

The paper stores the tag as a single label per edge; we keep two small
integer arrays (``add_step``/``del_step``, ``-1`` meaning "not applicable")
which encode exactly the same information and vectorize the per-snapshot
presence tests used by the multi-version engine.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.evolving.batches import BatchId, BatchKind, EdgeBatch

__all__ = ["UnifiedCSR"]

NOT_APPLICABLE = -1


class UnifiedCSR:
    """Union CSR + snapshot tags; the default storage format of MEGA."""

    def __init__(
        self,
        graph: CSRGraph,
        add_step: np.ndarray,
        del_step: np.ndarray,
        n_snapshots: int,
    ) -> None:
        self.graph = graph
        self.add_step = np.asarray(add_step, dtype=np.int32)
        self.del_step = np.asarray(del_step, dtype=np.int32)
        self.n_snapshots = int(n_snapshots)
        if self.add_step.shape[0] != graph.n_edges:
            raise ValueError("add_step must have one entry per union edge")
        if self.del_step.shape[0] != graph.n_edges:
            raise ValueError("del_step must have one entry per union edge")
        if n_snapshots < 1:
            raise ValueError("need at least one snapshot")
        both = (self.add_step >= 0) & (self.del_step >= 0)
        if np.any(both):
            raise ValueError(
                "an edge cannot be both an addition and a deletion within "
                "one CommonGraph window"
            )
        if np.any(self.add_step >= n_snapshots - 1) or np.any(
            self.del_step >= n_snapshots - 1
        ):
            raise ValueError("batch steps must lie in [0, n_snapshots-2]")
        self._snapshot_cache: dict[int, CSRGraph] = {}
        self._reverse: CSRGraph | None = None

    # -- structural views --------------------------------------------------

    @property
    def n_vertices(self) -> int:
        return self.graph.n_vertices

    @property
    def n_union_edges(self) -> int:
        return self.graph.n_edges

    @property
    def common_mask(self) -> np.ndarray:
        """Edges belonging to the CommonGraph ``G_c`` (all snapshots)."""
        return (self.add_step == NOT_APPLICABLE) & (self.del_step == NOT_APPLICABLE)

    def presence_mask(self, snapshot: int) -> np.ndarray:
        """Boolean mask over union edges: present in ``G_snapshot``?"""
        self._check_snapshot(snapshot)
        added_ok = (self.add_step == NOT_APPLICABLE) | (self.add_step < snapshot)
        deleted_ok = (self.del_step == NOT_APPLICABLE) | (self.del_step >= snapshot)
        return added_ok & deleted_ok

    def presence_of(self, snapshot: int, edge_idx: np.ndarray) -> np.ndarray:
        """Presence test restricted to a set of union-edge slots."""
        self._check_snapshot(snapshot)
        a = self.add_step[edge_idx]
        d = self.del_step[edge_idx]
        return ((a == NOT_APPLICABLE) | (a < snapshot)) & (
            (d == NOT_APPLICABLE) | (d >= snapshot)
        )

    def batch_mask(self, batch_id: BatchId) -> np.ndarray:
        if batch_id.kind is BatchKind.ADDITION:
            return self.add_step == batch_id.step
        return self.del_step == batch_id.step

    def batch(self, batch_id: BatchId) -> EdgeBatch:
        return EdgeBatch(batch_id, np.flatnonzero(self.batch_mask(batch_id)))

    def addition_batches(self) -> list[EdgeBatch]:
        return [
            self.batch(BatchId(BatchKind.ADDITION, j))
            for j in range(self.n_snapshots - 1)
        ]

    def deletion_batches(self) -> list[EdgeBatch]:
        return [
            self.batch(BatchId(BatchKind.DELETION, j))
            for j in range(self.n_snapshots - 1)
        ]

    # -- materialized graphs ------------------------------------------------

    def snapshot_graph(self, snapshot: int) -> CSRGraph:
        """Materialize ``G_snapshot`` as its own CSR (cached)."""
        self._check_snapshot(snapshot)
        if snapshot not in self._snapshot_cache:
            mask = self.presence_mask(snapshot)
            self._snapshot_cache[snapshot] = self._masked_graph(mask)
        return self._snapshot_cache[snapshot]

    def common_graph(self) -> CSRGraph:
        """Materialize the CommonGraph ``G_c``."""
        return self._masked_graph(self.common_mask)

    def reverse_graph(self) -> CSRGraph:
        """Transpose of the *union* graph (cached); used by deletion repair.

        Edge slot identity is lost in the transpose, so the reverse graph
        carries the union edge index as ``wt``-parallel metadata via
        :attr:`reverse_edge_origin`.
        """
        if self._reverse is None:
            self._reverse = self.graph.reverse()
            # Recover, for each reverse slot, the originating union slot by
            # sorting union slots into (dst, src) order the same way
            # CSRGraph.from_edges does.
            order = np.lexsort((self.graph.src_of_edge, self.graph.dst))
            self.reverse_edge_origin = order
        return self._reverse

    def _masked_graph(self, mask: np.ndarray) -> CSRGraph:
        counts = np.bincount(
            self.graph.src_of_edge[mask], minlength=self.n_vertices
        )
        indptr = np.zeros(self.n_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRGraph(
            self.n_vertices, indptr, self.graph.dst[mask], self.graph.wt[mask]
        )

    def _check_snapshot(self, snapshot: int) -> None:
        if not 0 <= snapshot < self.n_snapshots:
            raise IndexError(
                f"snapshot {snapshot} out of range [0, {self.n_snapshots})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UnifiedCSR(n_vertices={self.n_vertices}, "
            f"union_edges={self.n_union_edges}, snapshots={self.n_snapshots})"
        )
