"""Edge batches — the unit of change between consecutive snapshots.

Moving from snapshot ``G_j`` to ``G_{j+1}`` applies an addition batch
``Δ+_j`` and a deletion batch ``Δ-_j`` (paper §2.1).  A batch is an index
set into a scenario's union edge arrays plus its kind and step.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["BatchKind", "EdgeBatch", "BatchId"]


class BatchKind(enum.Enum):
    """Whether a batch adds edges going forward or removes them.

    Under the CommonGraph transformation *both* kinds are applied as edge
    additions: a ``DELETION`` batch at step ``j`` re-adds its edges to the
    snapshots ``0..j`` that still contain them.
    """

    ADDITION = "add"
    DELETION = "del"


@dataclass(frozen=True)
class BatchId:
    """Identity of a batch within a scenario: kind + step index ``j``."""

    kind: BatchKind
    step: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        sign = "+" if self.kind is BatchKind.ADDITION else "-"
        return f"Δ{sign}_{self.step}"


@dataclass
class EdgeBatch:
    """A batch of edges, referenced by index into a scenario's union arrays."""

    batch_id: BatchId
    edge_idx: np.ndarray  # indices into the scenario union edge arrays

    @property
    def kind(self) -> BatchKind:
        return self.batch_id.kind

    @property
    def step(self) -> int:
        return self.batch_id.step

    def __len__(self) -> int:
        return int(self.edge_idx.shape[0])

    def target_snapshots(self, n_snapshots: int) -> range:
        """Snapshots that contain this batch's edges (CommonGraph view).

        * ``Δ+_j`` edges exist in snapshots ``j+1 .. N-1``;
        * ``Δ-_j`` edges exist in snapshots ``0 .. j``.
        """
        if self.kind is BatchKind.ADDITION:
            return range(self.step + 1, n_snapshots)
        return range(0, self.step + 1)
