"""Splitting an event log into CommonGraph-valid windows.

A CommonGraph window requires each edge to change state at most once
(§2.1: every snapshot must be reachable from the window's common graph by
additions only).  Real event logs violate this — an edge may flap, or be
added early and removed late.  :func:`split_boundaries` partitions a
boundary sequence into the fewest contiguous windows such that no edge
changes state twice inside any one of them, so a long history can be
analyzed as a sequence of valid CommonGraph windows (the construction the
paper applies recursively in the Triangle-Grid discussion).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.evolving.builder import EdgeEvent
from repro.graph.edges import edge_keys

__all__ = ["change_steps", "split_boundaries"]


def change_steps(
    events: list[EdgeEvent],
    boundaries: np.ndarray,
    n_vertices: int,
    initially_present: set[int] | None = None,
) -> dict[int, list[int]]:
    """Per edge key, the transition steps at which its state flips.

    A "step" ``j`` means the flip becomes visible in snapshot ``j + 1``
    (matching the builder's convention).  Events after the last boundary
    are outside the window and ignored.
    """
    initially_present = initially_present or set()
    per_edge: dict[int, list[EdgeEvent]] = defaultdict(list)
    for e in sorted(events, key=lambda ev: ev.time):
        key = int(
            edge_keys(np.array([e.src]), np.array([e.dst]), n_vertices)[0]
        )
        per_edge[key].append(e)

    out: dict[int, list[int]] = {}
    for key, evs in per_edge.items():
        present = key in initially_present
        flips: list[int] = []
        ei = 0
        state = present
        for j, b in enumerate(boundaries):
            while ei < len(evs) and evs[ei].time <= b:
                state = evs[ei].add
                ei += 1
            if state != present:
                flips.append(j)
                present = state
        if flips:
            out[key] = flips
    return out


def split_boundaries(
    events: list[EdgeEvent],
    boundaries: np.ndarray,
    n_vertices: int,
    initially_present: set[int] | None = None,
) -> list[tuple[int, int]]:
    """Greedy minimal split of ``[0, len(boundaries)]`` snapshots into
    CommonGraph-valid windows.

    Returns inclusive snapshot ranges ``(lo, hi)`` over the
    ``len(boundaries) + 1`` snapshots the boundaries induce; within each
    range every edge flips at most once.  The greedy left-to-right scan is
    optimal for this interval-constraint problem: a window is extended
    until adding the next transition would give some edge its second flip
    inside the window.
    """
    n_snapshots = len(boundaries) + 1
    flips = change_steps(events, boundaries, n_vertices, initially_present)

    # For each transition step j, the set of edges flipping at j.
    flips_at: dict[int, list[int]] = defaultdict(list)
    for key, steps in flips.items():
        for j in steps:
            flips_at[j].append(key)

    windows: list[tuple[int, int]] = []
    lo = 0
    seen: set[int] = set()
    for j in range(n_snapshots - 1):
        doubled = any(key in seen for key in flips_at.get(j, ()))
        if doubled:
            windows.append((lo, j))
            lo = j
            seen = set()
        seen.update(flips_at.get(j, ()))
    windows.append((lo, n_snapshots - 1))
    return windows
