"""Evolving-graph substrate: batches, snapshots, CommonGraph, unified CSR."""

from repro.evolving.batches import BatchId, BatchKind, EdgeBatch
from repro.evolving.common_graph import (
    batches_for_snapshot,
    range_common_mask,
)
from repro.evolving.snapshots import EvolvingScenario, synthesize_scenario
from repro.evolving.triangular_grid import GridNode, TriangularGrid
from repro.evolving.unified_csr import UnifiedCSR
from repro.evolving.window import extract_window, window_scenario

__all__ = [
    "BatchId",
    "BatchKind",
    "EdgeBatch",
    "EvolvingScenario",
    "GridNode",
    "TriangularGrid",
    "UnifiedCSR",
    "extract_window",
    "window_scenario",
    "batches_for_snapshot",
    "range_common_mask",
    "synthesize_scenario",
]
