"""Reproducible microbenchmarks for the hot kernels.

``mega-repro bench-kernels`` (:mod:`repro.perf.kernels`) times the
multi-version presence gather, ``group_argbest``, coalesced plan
execution, and shared-memory scenario attach, and emits
``BENCH_kernels.json`` so successive PRs have a kernel-level perf
trajectory to beat.
"""

from repro.perf.kernels import KernelBenchReport, run_kernel_bench

__all__ = ["KernelBenchReport", "run_kernel_bench"]
