"""``mega-repro bench-kernels``: microbenchmarks of the hot kernels.

Everything here is seeded and deterministic in *work* (the timings vary
with the machine, the answers never do), and each timed kernel carries a
**parity check** against its reference implementation — the benchmark
doubles as a correctness gate, which is what CI smokes (timings are
reported, parity failures are fatal).

Timed kernels:

* ``multi_version_gather`` — the packed presence-plane gather
  (:meth:`~repro.evolving.unified_csr.UnifiedCSR.presence_multi`)
  against the dense per-snapshot tag-compare path it replaced;
* ``group_argbest`` — the engine's per-group reduction;
* ``plan_execution`` — a coalesced multi-source BOE plan end to end
  (the multi-version engine's round loop, post buffer-reuse);
* ``scenario_attach`` — cold and warm shared-memory attach against the
  from-scratch scenario build a plane-less worker pays.

Results land in ``BENCH_kernels.json`` (schema below) so successive PRs
have a kernel-level trajectory to beat.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = ["KernelBenchReport", "run_kernel_bench"]

KERNELS_SCHEMA_VERSION = 2


def _time(fn, iters: int, warmup: int = 1) -> dict:
    """Run ``fn`` ``iters`` times; report mean/p50/min wall milliseconds.

    ``warmup`` untimed calls run first (JIT compilation, lazy caches,
    branch warm-up) and are reported alongside ``iters`` so a reader of
    the JSON knows exactly how many calls produced the statistics.
    """
    for __ in range(warmup):
        fn()
    samples = []
    for __ in range(iters):
        t0 = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - t0) * 1e3)
    return {
        "mean_ms": float(np.mean(samples)),
        "p50_ms": float(np.median(samples)),
        "min_ms": float(np.min(samples)),
        "iters": int(iters),
        "warmup": int(warmup),
    }


@dataclass
class KernelBenchReport:
    """JSON-able result of one bench-kernels run."""

    config: dict
    results: dict
    parity: dict = field(default_factory=dict)
    #: repro.perf.backend.backend_info() provenance (schema v2)
    backend: dict = field(default_factory=dict)
    #: per-kernel numpy-vs-compiled timings (--compare-backends)
    compare: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Every kernel's answer matched its reference implementation."""
        return bool(self.parity) and all(self.parity.values())

    def to_json(self) -> str:
        doc = {
            "bench": "kernels",
            "schema_version": KERNELS_SCHEMA_VERSION,
            "config": self.config,
            "results": self.results,
            "parity": self.parity,
            "backend": self.backend,
        }
        if self.compare:
            doc["compare_backends"] = self.compare
        return json.dumps(doc, indent=2, sort_keys=True)

    def format_table(self) -> str:
        r = self.results
        g = r["multi_version_gather"]
        a = r["scenario_attach"]
        lines = [
            "== bench-kernels: hot-kernel microbenchmarks ==",
            f"scenario {self.config['graph']}/{self.config['scale']}: "
            f"{self.config['n_vertices']} vertices, "
            f"{self.config['n_union_edges']} union edges, "
            f"{self.config['n_snapshots']} snapshots",
            f"multi-version gather  packed {g['packed']['mean_ms']:.3f} ms  "
            f"dense {g['dense']['mean_ms']:.3f} ms  "
            f"speedup {g['speedup']:.2f}x  "
            f"(planes {g['planes_bytes']} B vs dense {g['dense_bytes']} B, "
            f"{g['memory_ratio']:.1f}x smaller)",
            f"group_argbest         {r['group_argbest']['mean_ms']:.3f} ms  "
            f"({r['group_argbest']['n_items']} items)",
            f"plan execution        {r['plan_execution']['mean_ms']:.2f} ms  "
            f"({self.config['n_sources']} sources, "
            f"algo {self.config['algo']})",
            f"scenario attach       cold {a['cold']['mean_ms']:.3f} ms  "
            f"warm {a['warm']['mean_ms']:.4f} ms  "
            f"rebuild {a['rebuild']['mean_ms']:.1f} ms  "
            f"(cold attach {a['rebuild_over_cold']:.0f}x faster "
            f"than rebuild)",
        ]
        if self.backend:
            lines.append(
                f"kernel backend        {self.backend.get('active', '?')} "
                f"(numba {self.backend.get('numba', '?')})"
            )
        if self.compare:
            compiled = self.compare.get("compiled", "?")
            for name in ("group_argbest", "daic_round", "presence_gather"):
                leg = self.compare.get(name)
                if leg is None:
                    continue
                lines.append(
                    f"  {name:<20} numpy {leg['numpy']['mean_ms']:.3f} ms  "
                    f"{compiled} {leg['compiled']['mean_ms']:.3f} ms  "
                    f"speedup {leg['speedup']:.2f}x"
                )
        for name, okay in sorted(self.parity.items()):
            lines.append(f"  parity {name:<22} {'ok' if okay else 'MISMATCH'}")
        lines.append(f"verdict: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def _gather_edge_idx(scenario, seed: int) -> np.ndarray:
    """A frontier-shaped union-edge gather set (what the engine fetches)."""
    from repro.graph.csr import gather_out_edges

    u = scenario.unified
    rng = np.random.default_rng(seed)
    n_front = max(1, u.n_vertices // 4)
    frontier = np.unique(rng.integers(0, u.n_vertices, size=n_front))
    edge_idx, __ = gather_out_edges(u.graph.indptr, frontier)
    if edge_idx.size == 0:  # pathological tiny graph: fall back to all edges
        edge_idx = np.arange(u.n_union_edges, dtype=np.int64)
    return edge_idx


def _dense_multi(unified, edge_idx: np.ndarray) -> np.ndarray:
    """Reference: per-snapshot tag compares stacked into (K, E)."""
    return np.stack(
        [
            unified._presence_of_dense(k, edge_idx)
            for k in range(unified.n_snapshots)
        ]
    )


def run_kernel_bench(
    graph: str = "Wen",
    scale: str = "small",
    n_snapshots: int = 8,
    algo: str = "sssp",
    n_sources: int = 4,
    iters: int = 20,
    seed: int = 0,
    compare_backends: bool = False,
) -> KernelBenchReport:
    """Run every kernel microbenchmark; see the module docstring.

    With ``compare_backends`` each backend-dispatched kernel
    (``group_argbest``, the fused DAIC round via plan execution, and the
    bit-plane presence gather) is additionally timed under both the
    numpy reference and the best compiled tier, with a bit-identical
    parity gate between the two legs.
    """
    from repro.algorithms import get_algorithm
    from repro.core.multi_query import evaluate_multi_query
    from repro.engines.daic import group_argbest
    from repro.perf.backend import backend_info
    from repro.service.shm import ScenarioPlane, attach_scenario
    from repro.workloads import load_scenario

    scenario = load_scenario(graph, scale, n_snapshots=n_snapshots)
    unified = scenario.unified
    algorithm = get_algorithm(algo)
    rng = np.random.default_rng(seed)
    parity: dict[str, bool] = {}
    results: dict[str, dict] = {}

    # -- multi-version presence gather: packed planes vs dense compares ----
    edge_idx = _gather_edge_idx(scenario, seed)
    unified.presence_planes()  # build outside the timed region
    packed = _time(lambda: unified.presence_multi(edge_idx), iters)
    dense = _time(lambda: _dense_multi(unified, edge_idx), iters)
    parity["multi_version_gather"] = bool(
        np.array_equal(
            unified.presence_multi(edge_idx), _dense_multi(unified, edge_idx)
        )
    )
    planes_bytes = int(unified.presence_planes().nbytes)
    dense_bytes = int(unified.n_snapshots * unified.n_union_edges)
    results["multi_version_gather"] = {
        "packed": packed,
        "dense": dense,
        "speedup": dense["mean_ms"] / max(packed["mean_ms"], 1e-9),
        "gathered_edges": int(edge_idx.size),
        "planes_bytes": planes_bytes,
        "dense_bytes": dense_bytes,
        "memory_ratio": dense_bytes / max(planes_bytes, 1),
    }

    # -- group_argbest ------------------------------------------------------
    n_items = int(edge_idx.size) * max(1, n_snapshots // 2)
    keys = rng.integers(0, unified.n_vertices, size=n_items).astype(np.int64)
    cands = rng.random(n_items)
    timing = _time(lambda: group_argbest(keys, cands, minimize=True), iters)
    timing["n_items"] = n_items
    results["group_argbest"] = timing
    uniq, best = group_argbest(keys, cands, minimize=True)
    order = np.argsort(keys, kind="stable")
    ref_ok = bool(np.array_equal(uniq, np.unique(keys)))
    if ref_ok:
        mins = np.minimum.reduceat(
            cands[order], np.searchsorted(keys[order], uniq)
        )
        ref_ok = bool(np.allclose(cands[best], mins))
    parity["group_argbest"] = ref_ok

    # -- coalesced plan execution ------------------------------------------
    degrees = np.diff(scenario.common_graph().indptr)
    sources = [int(v) for v in np.argsort(-degrees)[:n_sources]]
    plan_iters = max(3, iters // 4)
    results["plan_execution"] = _time(
        lambda: evaluate_multi_query(scenario, algorithm, sources),
        plan_iters,
    )
    mq = evaluate_multi_query(scenario, algorithm, sources)
    single = evaluate_multi_query(scenario, algorithm, [sources[0]])
    parity["plan_execution"] = bool(
        np.allclose(
            mq.values(0, n_snapshots - 1),
            single.values(0, n_snapshots - 1),
            equal_nan=True,
        )
    )

    # -- shared-memory attach: cold / warm / plane-less rebuild ------------
    plane = ScenarioPlane()
    try:
        manifest = plane.publish(scenario, graph, scale, epoch=0)

        def attach_cold() -> None:
            shm, __ = attach_scenario(manifest)
            shm.close()

        warm_shm, warm_scenario = attach_scenario(manifest)
        cache = {manifest.segment: warm_scenario}
        cold = _time(attach_cold, iters)
        warm = _time(lambda: cache[manifest.segment].unified, iters)
        rebuild = _time(
            lambda: load_scenario(graph, scale, n_snapshots=n_snapshots),
            max(2, iters // 10),
        )
        attached = cache[manifest.segment]
        parity["scenario_attach"] = bool(
            np.array_equal(attached.unified.graph.dst, unified.graph.dst)
            and np.array_equal(
                attached.unified.presence_planes(),
                unified.presence_planes(),
            )
            and attached.source == scenario.source
        )
        warm_shm.close()
    finally:
        plane.close_all()
    results["scenario_attach"] = {
        "cold": cold,
        "warm": warm,
        "rebuild": rebuild,
        "rebuild_over_cold": rebuild["mean_ms"] / max(cold["mean_ms"], 1e-9),
        "segment_bytes": manifest.nbytes,
    }

    # -- numpy vs compiled tier, per backend-dispatched kernel -------------
    compare: dict = {}
    if compare_backends:
        compare = _compare_backend_tiers(
            scenario, algorithm, sources, keys, cands, edge_idx,
            iters, plan_iters, parity,
        )

    config = {
        "graph": graph,
        "scale": scale,
        "n_snapshots": int(n_snapshots),
        "algo": algo,
        "n_sources": int(n_sources),
        "iters": int(iters),
        "seed": int(seed),
        "n_vertices": int(unified.n_vertices),
        "n_union_edges": int(unified.n_union_edges),
        "numpy": np.__version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    return KernelBenchReport(
        config=config, results=results, parity=parity,
        backend=backend_info(), compare=compare,
    )


def _speedup_leg(numpy_timing: dict, compiled_timing: dict) -> dict:
    return {
        "numpy": numpy_timing,
        "compiled": compiled_timing,
        "speedup": numpy_timing["mean_ms"]
        / max(compiled_timing["mean_ms"], 1e-9),
    }


def _compare_backend_tiers(
    scenario, algorithm, sources, keys, cands, edge_idx,
    iters: int, plan_iters: int, parity: dict,
) -> dict:
    """Time each backend-dispatched kernel under numpy and the best
    compiled tier; parity-gate the two legs bit-identically.

    Returns ``{"compiled": "unavailable", ...}`` (and records no parity
    entries) when no compiled tier can load, so the benchmark still runs
    on machines without numba or a C compiler.
    """
    from repro.core.multi_query import evaluate_multi_query
    from repro.perf.backend import backend_info, reference, resolve_backend

    requested = backend_info()["requested"]
    unified = scenario.unified
    try:
        try:
            compiled_be = resolve_backend("compiled")
        except RuntimeError as exc:
            return {"compiled": "unavailable", "error": str(exc)}
        compare: dict = {"compiled": compiled_be.name}

        # group_argbest: the raw reference against the guarded fast path
        leg_np = _time(
            lambda: reference.group_argbest(keys, cands, True), iters
        )
        leg_c = _time(
            lambda: compiled_be.group_argbest(keys, cands, True), iters
        )
        u_np, b_np = reference.group_argbest(keys, cands, True)
        u_c, b_c = compiled_be.group_argbest(keys, cands, True)
        parity["group_argbest_backends"] = bool(
            np.array_equal(u_np, u_c) and np.array_equal(b_np, b_c)
        )
        compare["group_argbest"] = _speedup_leg(leg_np, leg_c)

        # presence_gather: fused unpack-and-test vs unpackbits reference
        planes = unified.presence_planes()
        k = unified.n_snapshots
        idx64 = np.ascontiguousarray(edge_idx, dtype=np.int64)

        def presence_ref() -> np.ndarray:
            return np.unpackbits(
                planes[:, edge_idx], axis=0, count=k, bitorder="little"
            ).view(bool)

        leg_np = _time(presence_ref, iters)
        leg_c = _time(
            lambda: compiled_be.presence_gather(planes, idx64, k), iters
        )
        parity["presence_gather_backends"] = bool(
            np.array_equal(
                presence_ref(), compiled_be.presence_gather(planes, idx64, k)
            )
        )
        compare["presence_gather"] = _speedup_leg(leg_np, leg_c)

        # fused DAIC round, measured through the full coalesced plan (the
        # engine resolves the process-wide backend at construction, so
        # each leg pins it explicitly)
        resolve_backend("numpy")
        leg_np = _time(
            lambda: evaluate_multi_query(scenario, algorithm, sources),
            plan_iters,
        )
        res_np = evaluate_multi_query(scenario, algorithm, sources)
        resolve_backend(compiled_be.name)
        leg_c = _time(
            lambda: evaluate_multi_query(scenario, algorithm, sources),
            plan_iters,
        )
        res_c = evaluate_multi_query(scenario, algorithm, sources)
        parity["daic_round_backends"] = all(
            np.array_equal(
                res_np.values(q, s), res_c.values(q, s)
            )
            for q in range(len(sources))
            for s in range(scenario.n_snapshots)
        )
        compare["daic_round"] = _speedup_leg(leg_np, leg_c)
        return compare
    finally:
        resolve_backend(requested)
