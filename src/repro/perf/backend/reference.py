"""Pure-numpy reference kernels — the permanent parity baseline.

Like ``UnifiedCSR._presence_of_dense``, these implementations are never
removed: every compiled tier must reproduce them bit-for-bit (values,
parent tracking, and tie-break order), and the differential tests in
``tests/test_kernel_backends.py`` plus the ``bench-kernels`` parity gate
hold them to it.  ``group_argbest`` here is the original lexsort-based
engine reduction; the engine's own vectorized multi-sweep round body is
the reference for the fused ``daic_round`` (the numpy backend exposes no
``daic_round``, so the engine keeps using that path), and
``UnifiedCSR.presence_multi``'s unpackbits path is the reference for
``presence_gather``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["group_argbest"]


def group_argbest(
    keys: np.ndarray, candidates: np.ndarray, minimize: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Per-group best candidate: returns ``(unique_keys, argbest_index)``.

    ``argbest_index`` indexes the *input* arrays; ties break toward the
    lowest input index, which keeps parent tracking deterministic.
    """
    if keys.shape[0] == 0:
        return keys, np.empty(0, dtype=np.int64)
    order_val = candidates if minimize else -candidates
    order = np.lexsort((np.arange(keys.shape[0]), order_val, keys))
    sorted_keys = keys[order]
    first = np.empty(sorted_keys.shape[0], dtype=bool)
    first[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=first[1:])
    return sorted_keys[first], order[first]
