"""Kernel backend registry: compiled hot kernels behind the numpy API.

The serving engine's cycles go to three kernels — ``group_argbest``, the
DAIC round body, and the bit-plane presence gather.  Each has a compiled
single-pass implementation (numba when importable, else a tiny C library
compiled on first use and loaded via ctypes) and a pure-numpy reference
that is kept forever as the parity baseline, following the
``_presence_of_dense`` precedent.

Selection follows ``MEGA_KERNEL_BACKEND`` (resolved once per process):

* ``auto`` (default) — best available compiled tier, numpy otherwise;
* ``numpy`` — pin the reference implementations (CI keeps one leg here);
* ``compiled`` — require a compiled tier; raise if none is available;
* ``numba`` / ``cext`` — require that specific tier (tests, debugging).

Callers never import a tier directly: :func:`get_backend` returns a
:class:`KernelBackend` whose optional members (``daic_round``,
``presence_gather``) are ``None`` on the numpy tier, which tells the
engine and :class:`~repro.evolving.unified_csr.UnifiedCSR` to keep their
vectorized numpy paths.  ``group_argbest`` is always present.

The service's pool workers resolve the backend during warm-up (the ping
control op carries the configured name) and report the resolved tier
back, so a mixed-pool misconfiguration is visible in ``health`` and in
the ``mega_kernel_backend`` metric rather than silent.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.perf.backend import reference

__all__ = [
    "KernelBackend",
    "available_backends",
    "backend_info",
    "get_backend",
    "resolve_backend",
    "reset_backend",
]

#: Algorithm.kernel_op name -> opcode shared by the C and numba tiers
OPS = {"plus_wt": 0, "plus_one": 1, "min_wt": 2, "max_wt": 3, "div_wt": 4}

#: group_argbest falls back to the reference lexsort when the dense
#: per-key scratch would dwarf the item count (keys are flat (version,
#: vertex) cells in practice, so this is a safety valve, not a hot path)
_DENSE_DOMAIN_SLACK = 8


@dataclass(frozen=True)
class KernelBackend:
    """One resolved kernel tier.  Optional members are None on numpy."""

    name: str
    group_argbest: Callable
    daic_round: Callable | None = None
    presence_gather: Callable | None = None

    @property
    def compiled(self) -> bool:
        return self.daic_round is not None


def _dense_ok(keys: np.ndarray) -> bool:
    """Is the single-pass dense-domain strategy applicable/profitable?"""
    if keys.shape[0] == 0:
        return False
    lo = int(keys.min())
    if lo < 0:
        return False
    hi = int(keys.max())
    return hi < _DENSE_DOMAIN_SLACK * max(keys.shape[0], 1 << 14)

def _guarded_argbest(fast: Callable) -> Callable:
    def group_argbest(keys, candidates, minimize):
        if not _dense_ok(keys):
            return reference.group_argbest(keys, candidates, minimize)
        return fast(keys, candidates, minimize)

    return group_argbest


def _numpy_backend() -> KernelBackend:
    return KernelBackend(name="numpy",
                         group_argbest=reference.group_argbest)


def _cext_backend() -> KernelBackend | None:
    from repro.perf.backend import cext

    if cext.load_library() is None:
        return None
    return KernelBackend(
        name="cext",
        group_argbest=_guarded_argbest(cext.group_argbest),
        daic_round=cext.daic_round,
        presence_gather=cext.presence_gather,
    )


def _numba_backend() -> KernelBackend | None:
    try:
        import numba  # noqa: F401
    except ImportError:
        return None
    try:
        from repro.perf.backend import numba_jit
    except ImportError:  # pragma: no cover - broken numba install
        return None
    return KernelBackend(
        name="numba",
        group_argbest=_guarded_argbest(numba_jit.group_argbest),
        daic_round=numba_jit.daic_round,
        presence_gather=numba_jit.presence_gather,
    )


_TIERS = {
    "numpy": _numpy_backend,
    "cext": _cext_backend,
    "numba": _numba_backend,
}

_active: KernelBackend | None = None
_requested: str | None = None


def _resolve(request: str) -> KernelBackend:
    request = (request or "auto").strip().lower()
    if request in ("numpy", "numba", "cext"):
        backend = _TIERS[request]()
        if backend is None:
            raise RuntimeError(
                f"kernel backend {request!r} requested but unavailable"
            )
        return backend
    if request == "compiled":
        backend = _numba_backend() or _cext_backend()
        if backend is None:
            from repro.perf.backend import cext

            raise RuntimeError(
                "MEGA_KERNEL_BACKEND=compiled but no compiled tier is "
                "available (numba not importable; C tier: "
                f"{cext.build_error() or 'no compiler'})"
            )
        return backend
    if request == "auto":
        return _numba_backend() or _cext_backend() or _numpy_backend()
    raise ValueError(
        f"invalid MEGA_KERNEL_BACKEND {request!r}: expected "
        "auto|numpy|compiled|numba|cext"
    )


def resolve_backend(request: str | None = None) -> KernelBackend:
    """Resolve (once per process) and return the active backend.

    ``request`` overrides the environment; precedence is explicit
    argument > ``MEGA_KERNEL_BACKEND`` > ``auto``.  A second call with a
    *different* explicit request re-resolves (the service passes its
    configured backend through the worker ping), while argument-free
    calls keep returning the cached tier.
    """
    global _active, _requested
    if request is None:
        if _active is not None:
            return _active
        request = os.environ.get("MEGA_KERNEL_BACKEND", "auto")
    elif _active is not None and request == _requested:
        return _active
    _active = _resolve(request)
    _requested = request
    return _active


def get_backend() -> KernelBackend:
    """The process-wide active backend (resolving on first use)."""
    return resolve_backend()


def requested_tier(explicit: str = "") -> str:
    """The tier a surface should *report* as requested.

    Mirrors :func:`resolve_backend` precedence (explicit argument >
    ``MEGA_KERNEL_BACKEND`` > ``auto``) without resolving anything, so
    health/bench provenance blocks stay honest when the choice came
    from the environment rather than a config field.
    """
    return explicit or os.environ.get("MEGA_KERNEL_BACKEND", "") or "auto"


def reset_backend() -> None:
    """Forget the resolved tier (tests re-resolving under monkeypatch)."""
    global _active, _requested
    _active = None
    _requested = None


def available_backends() -> list[str]:
    """Names of every tier that would resolve on this machine."""
    names = ["numpy"]
    if _numba_backend() is not None:
        names.append("numba")
    if _cext_backend() is not None:
        names.append("cext")
    return names


def backend_info() -> dict:
    """Provenance block for benchmarks and health surfaces."""
    from repro.perf.backend import cext

    try:
        import numba

        numba_ver = numba.__version__
    except ImportError:
        numba_ver = "unavailable"
    active = get_backend()
    return {
        "active": active.name,
        "compiled": active.compiled,
        "requested": _requested or "auto",
        "available": available_backends(),
        "numba": numba_ver,
        "cext_error": cext.build_error(),
    }
