/* Compiled hot kernels behind the numpy API (ctypes tier).
 *
 * Three kernels, each the single-pass fusion of a numpy sweep sequence
 * whose answers it must reproduce bit-for-bit (the numpy implementations
 * stay in-tree as the parity reference, like _presence_of_dense):
 *
 *   group_argbest   — per-group best candidate with lowest-input-index
 *                     tie-breaks (replaces a lexsort + three temporaries);
 *   daic_round      — the DAIC engine's edge-gather -> relax -> better_into
 *                     round body fused into one pass over frontier edges;
 *   presence_gather — bit-plane presence test, unpack-and-test per edge
 *                     with no intermediate unpacked plane.
 *
 * Compiled once per machine into a content-addressed shared library by
 * repro.perf.backend.cext (cc -O2 -shared -fPIC); no Python.h — every
 * argument is a raw pointer into a numpy array, marshalled via ctypes.
 *
 * Candidate arithmetic must match numpy's vectorized double ops exactly,
 * so each edge function is the same IEEE-754 double expression numpy
 * evaluates; min/max reductions are order-insensitive, which keeps the
 * fused in-place pass bit-identical to numpy's gather-then-scatter form.
 */

#include <stdint.h>
#include <string.h>

/* Candidate ops (Algorithm.kernel_op): keep in sync with OPS in cext.py */
#define OP_PLUS_WT 0     /* sssp:    val + wt          */
#define OP_PLUS_ONE 1    /* bfs:     val + 1.0          */
#define OP_MIN_WT 2      /* sswp:    min(val, wt)       */
#define OP_MAX_WT 3      /* ssnp:    max(val, wt)       */
#define OP_DIV_WT 4      /* viterbi: val / wt           */

static inline double candidate_of(int op, double val, double wt)
{
    switch (op) {
    case OP_PLUS_WT:
        return val + wt;
    case OP_PLUS_ONE:
        return val + 1.0;
    case OP_MIN_WT:
        /* np.minimum: NaN on either side propagates (a NaN val must not
         * be silently replaced by the weight) */
        return (val < wt || val != val) ? val : wt;
    case OP_MAX_WT:
        return (val > wt || val != val) ? val : wt;
    default:
        return val / wt;
    }
}

/* Strictly better under the algorithm's order, with numpy-lexsort NaN
 * semantics: NaN sorts after every number, so any non-NaN candidate
 * beats a stored NaN and a NaN candidate never wins. */
static inline int strictly_better(double cand, double best, int minimize)
{
    if (best != best) /* stored NaN: any real candidate replaces it */
        return cand == cand;
    return minimize ? cand < best : cand > best;
}

/* group_argbest: per-group best over (keys, cands); groups are dense in
 * [0, max_key].  seen/best_val/best_idx are caller-zeroed/uninitialised
 * scratch of size max_key+1.  Writes ascending unique keys and the
 * winning *input index* per group; returns the group count. */
int64_t mega_group_argbest(
    const int64_t *keys, const double *cands, int64_t n, int minimize,
    int64_t max_key, uint8_t *seen, double *best_val, int64_t *best_idx,
    int64_t *out_keys, int64_t *out_best)
{
    int64_t i, k, u = 0;
    for (i = 0; i < n; i++) {
        k = keys[i];
        if (!seen[k]) {
            seen[k] = 1;
            best_val[k] = cands[i];
            best_idx[k] = i;
        } else if (strictly_better(cands[i], best_val[k], minimize)) {
            best_val[k] = cands[i];
            best_idx[k] = i;
        }
    }
    for (k = 0; k <= max_key; k++) {
        if (seen[k]) {
            out_keys[u] = k;
            out_best[u] = best_idx[k];
            u++;
        }
    }
    return u;
}

/* One DAIC round, fused: for every gathered edge j and version k,
 * gate on frontier membership of the edge's source and on per-version
 * edge presence, compute the candidate from the *pre-round* values
 * (old_vals, copied here), and min/max-reduce it into values[k][dst].
 * changed is fully rewritten; parent_best/parent_edge (optional) record
 * the per-(version, vertex) winning candidate and its union-edge id with
 * lowest-flat-index tie-breaks, matching group_argbest over the k-major
 * raveled candidate list.  Returns the number of (version, edge) active
 * pairs (the engine's version_events_generated counter).
 *
 * frontier may be NULL (batch-seed pass: every present edge is active).
 * counters[0] <- active pair count, counters[1] <- edges active in >= 1
 * version; both always written. */
void mega_daic_round(
    const int64_t *edge_idx, const int64_t *src_rep, int64_t n_edges,
    const int64_t *dst_all, const double *wt_all,
    const uint8_t *frontier, const uint8_t *presence,
    double *values, double *old_vals, uint8_t *changed,
    int64_t n_versions, int64_t n_vertices, int64_t n_union_edges,
    int op, int minimize, int track_parents,
    double *parent_best, int64_t *parent_edge,
    int64_t *counters)
{
    int64_t k, j, active_pairs = 0, active_edges = 0;
    memcpy(old_vals, values,
           (size_t)(n_versions * n_vertices) * sizeof(double));
    memset(changed, 0, (size_t)(n_versions * n_vertices));
    if (track_parents) {
        /* NaN marks "no candidate yet"; strictly_better treats it as
         * always-replaceable, giving first-seen-wins tie-breaks. */
        for (j = 0; j < n_versions * n_vertices; j++) {
            parent_best[j] = 0.0 / 0.0;
            parent_edge[j] = -1;
        }
    }
    for (j = 0; j < n_edges; j++) {
        const int64_t e = edge_idx[j];
        const int64_t src = src_rep[j];
        const int64_t v = dst_all[e];
        const double wt = wt_all[e];
        int edge_active = 0;
        for (k = 0; k < n_versions; k++) {
            if (frontier != NULL && !frontier[k * n_vertices + src])
                continue;
            if (!presence[k * n_union_edges + e])
                continue;
            active_pairs++;
            edge_active = 1;
            const double cand =
                candidate_of(op, old_vals[k * n_vertices + src], wt);
            const int64_t cell = k * n_vertices + v;
            /* np.minimum/maximum.at followed by better_into(values, old):
             * a NaN value is sticky, a NaN candidate poisons the cell but
             * is never "changed" (NaN fails the strict compare against
             * old), and min/max of reals is order-insensitive */
            const double cur = values[cell];
            if (cur == cur) {
                if (cand != cand) {
                    values[cell] = cand;
                    changed[cell] = 0;
                } else if (minimize ? cand < cur : cand > cur) {
                    values[cell] = cand;
                    changed[cell] = 1;
                }
            }
            if (track_parents
                && strictly_better(cand, parent_best[cell], minimize)) {
                parent_best[cell] = cand;
                parent_edge[cell] = e;
            }
        }
        active_edges += edge_active;
    }
    counters[0] = active_pairs;
    counters[1] = active_edges;
}

/* presence_gather: out[k][j] = bit k of the packed presence planes at
 * union edge edge_idx[j].  planes is (ceil(K/8), M) uint8, row-major;
 * out is (K, E) uint8 (viewed as bool by the caller). */
void mega_presence_gather(
    const uint8_t *planes, int64_t n_union_edges,
    const int64_t *edge_idx, int64_t n_edges,
    int64_t n_snapshots, uint8_t *out)
{
    const int64_t n_planes = (n_snapshots + 7) / 8;
    int64_t p, j, b;
    for (p = 0; p < n_planes; p++) {
        const uint8_t *plane = planes + p * n_union_edges;
        const int64_t k_hi =
            (n_snapshots - p * 8) < 8 ? (n_snapshots - p * 8) : 8;
        for (j = 0; j < n_edges; j++) {
            const uint8_t byte = plane[edge_idx[j]];
            for (b = 0; b < k_hi; b++)
                out[(p * 8 + b) * n_edges + j] = (byte >> b) & 1;
        }
    }
}
