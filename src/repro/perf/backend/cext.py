"""ctypes C tier of the kernel backend: compile once, dlopen forever.

``_kernels.c`` is plain C99 with no Python.h dependency, so the build is
one ``cc -O2 -shared -fPIC`` invocation and the artifact is cached under
``~/.cache/mega-repro/`` keyed by the source's SHA-256 — concurrent
processes (the service's pool workers all resolve the backend on warm-up)
compile into unique temp names and ``os.replace`` atomically, so the
worst case is a redundant compile, never a torn library.

Everything marshalled across the boundary is a raw pointer into a
C-contiguous numpy array; the wrappers own all shape/contiguity checks
and scratch allocation so the callers (engine, UnifiedCSR) stay oblivious
to the tier in use.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import pathlib
import subprocess
import tempfile

import numpy as np

__all__ = ["load_library", "build_error"]

_SRC = pathlib.Path(__file__).with_name("_kernels.c")

_lib: ctypes.CDLL | None = None
_build_error: str | None = None

_I64P = np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS")
_F64P = np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS")
_U8P = np.ctypeslib.ndpointer(np.uint8, flags="C_CONTIGUOUS")


def _cache_dir() -> pathlib.Path:
    root = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return pathlib.Path(root) / "mega-repro"


def _compiler() -> str | None:
    import shutil

    for cc in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cc and shutil.which(cc):
            return cc
    return None


def _compile(src: pathlib.Path, out: pathlib.Path) -> None:
    cc = _compiler()
    if cc is None:
        raise RuntimeError("no C compiler on PATH (tried $CC, cc, gcc, clang)")
    out.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(out.parent), prefix=out.stem + ".", suffix=".so.tmp"
    )
    os.close(fd)
    try:
        proc = subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", tmp, str(src)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"{cc} failed ({proc.returncode}): {proc.stderr.strip()[:500]}"
            )
        os.replace(tmp, out)  # atomic: racing builders converge on one .so
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _declare(lib: ctypes.CDLL) -> ctypes.CDLL:
    lib.mega_group_argbest.restype = ctypes.c_int64
    lib.mega_group_argbest.argtypes = [
        _I64P, _F64P, ctypes.c_int64, ctypes.c_int, ctypes.c_int64,
        _U8P, _F64P, _I64P, _I64P, _I64P,
    ]
    lib.mega_daic_round.restype = None
    lib.mega_daic_round.argtypes = [
        _I64P, _I64P, ctypes.c_int64,          # edge_idx, src_rep, E
        _I64P, _F64P,                          # dst_all, wt_all
        ctypes.c_void_p, _U8P,                 # frontier (nullable), presence
        _F64P, _F64P, _U8P,                    # values, old, changed
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,  # K, n, M
        ctypes.c_int, ctypes.c_int, ctypes.c_int,  # op, minimize, track
        ctypes.c_void_p, ctypes.c_void_p,      # parent_best/edge (nullable)
        _I64P,                                 # counters[2]
    ]
    lib.mega_presence_gather.restype = None
    lib.mega_presence_gather.argtypes = [
        _U8P, ctypes.c_int64, _I64P, ctypes.c_int64, ctypes.c_int64, _U8P,
    ]
    return lib


def load_library() -> ctypes.CDLL | None:
    """Compile (if needed) and load the kernel library; None on failure.

    The first failure is remembered so a broken toolchain costs one
    attempt per process, not one per call.
    """
    global _lib, _build_error
    if _lib is not None:
        return _lib
    if _build_error is not None:
        return None
    try:
        source = _SRC.read_bytes()
        digest = hashlib.sha256(source).hexdigest()[:16]
        so = _cache_dir() / f"mega_kernels_{digest}.so"
        if not so.exists():
            _compile(_SRC, so)
        _lib = _declare(ctypes.CDLL(str(so)))
        return _lib
    except (OSError, RuntimeError, subprocess.TimeoutExpired) as exc:
        _build_error = str(exc)
        return None


def build_error() -> str | None:
    """Why the C tier is unavailable (None while untried or loaded)."""
    return _build_error


def _ptr_or_null(arr: np.ndarray | None):
    if arr is None:
        return None
    return arr.ctypes.data_as(ctypes.c_void_p)


def group_argbest(
    keys: np.ndarray, candidates: np.ndarray, minimize: bool
) -> tuple[np.ndarray, np.ndarray]:
    """C single-pass group_argbest; same contract as the numpy reference."""
    lib = load_library()
    n = keys.shape[0]
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    candidates = np.ascontiguousarray(candidates, dtype=np.float64)
    max_key = int(keys.max())
    domain = max_key + 1
    seen = np.zeros(domain, dtype=np.uint8)
    best_val = np.empty(domain, dtype=np.float64)
    best_idx = np.empty(domain, dtype=np.int64)
    out_keys = np.empty(min(n, domain), dtype=np.int64)
    out_best = np.empty(min(n, domain), dtype=np.int64)
    u = lib.mega_group_argbest(
        keys, candidates, n, int(minimize), max_key,
        seen, best_val, best_idx, out_keys, out_best,
    )
    return out_keys[:u].copy(), out_best[:u].copy()


def daic_round(
    edge_idx: np.ndarray,
    src_rep: np.ndarray,
    dst_all: np.ndarray,
    wt_all: np.ndarray,
    frontier: np.ndarray | None,
    presence: np.ndarray,
    values: np.ndarray,
    old_vals: np.ndarray,
    changed: np.ndarray,
    op: int,
    minimize: bool,
    parent_best: np.ndarray | None = None,
    parent_edge: np.ndarray | None = None,
) -> tuple[int, int]:
    """Fused DAIC round; returns (active version-pairs, active edges)."""
    lib = load_library()
    k, n = values.shape
    m = dst_all.shape[0]
    counters = np.zeros(2, dtype=np.int64)
    track = parent_best is not None
    lib.mega_daic_round(
        edge_idx, src_rep, edge_idx.shape[0],
        dst_all, wt_all,
        _ptr_or_null(frontier), presence.view(np.uint8),
        values, old_vals, changed.view(np.uint8),
        k, n, m,
        int(op), int(minimize), int(track),
        _ptr_or_null(parent_best), _ptr_or_null(parent_edge),
        counters,
    )
    return int(counters[0]), int(counters[1])


def presence_gather(
    planes: np.ndarray, edge_idx: np.ndarray, n_snapshots: int
) -> np.ndarray:
    """(K, E) bool presence matrix gathered straight off the bit planes."""
    lib = load_library()
    edge_idx = np.ascontiguousarray(edge_idx, dtype=np.int64)
    out = np.empty((n_snapshots, edge_idx.shape[0]), dtype=np.uint8)
    lib.mega_presence_gather(
        np.ascontiguousarray(planes),
        planes.shape[1], edge_idx, edge_idx.shape[0], n_snapshots, out,
    )
    return out.view(bool)
