"""numba tier of the kernel backend (preferred when importable).

This module is only imported by the backend registry after a successful
``import numba`` probe — nothing outside :mod:`repro.perf.backend` may
import numba at module top level, so the whole suite keeps working on
interpreters without it (the registry falls back to the C tier or the
numpy reference).

The kernels are line-for-line the same single-pass algorithms as
``_kernels.c``; see that file for the parity contract (IEEE-754 candidate
expressions, lowest-input-index tie-breaks, NaN-as-unset parent
sentinel).  ``cache=True`` persists the JIT artifacts next to the
package so warm processes skip recompilation.
"""

from __future__ import annotations

import numpy as np
from numba import njit

__all__ = ["group_argbest", "daic_round", "presence_gather", "numba_version"]


def numba_version() -> str:
    import numba

    return numba.__version__


@njit(cache=True, nogil=True)
def _group_argbest(keys, cands, minimize, max_key, out_keys, out_best):
    domain = max_key + 1
    seen = np.zeros(domain, dtype=np.uint8)
    best_val = np.empty(domain, dtype=np.float64)
    best_idx = np.empty(domain, dtype=np.int64)
    for i in range(keys.shape[0]):
        k = keys[i]
        c = cands[i]
        if seen[k] == 0:
            seen[k] = 1
            best_val[k] = c
            best_idx[k] = i
        else:
            b = best_val[k]
            replace = (c == c) if b != b else (
                c < b if minimize else c > b
            )
            if replace:
                best_val[k] = c
                best_idx[k] = i
    u = 0
    for k in range(domain):
        if seen[k]:
            out_keys[u] = k
            out_best[u] = best_idx[k]
            u += 1
    return u


def group_argbest(keys, candidates, minimize):
    """Single-pass per-group reduction; see the numpy reference."""
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    candidates = np.ascontiguousarray(candidates, dtype=np.float64)
    max_key = int(keys.max())
    cap = min(keys.shape[0], max_key + 1)
    out_keys = np.empty(cap, dtype=np.int64)
    out_best = np.empty(cap, dtype=np.int64)
    u = _group_argbest(keys, candidates, minimize, max_key,
                       out_keys, out_best)
    return out_keys[:u].copy(), out_best[:u].copy()


@njit(cache=True, nogil=True)
def _daic_round(edge_idx, src_rep, dst_all, wt_all, frontier, has_frontier,
                presence, values, old_vals, changed, op, minimize,
                track_parents, parent_best, parent_edge):
    n_versions, n_vertices = values.shape
    old_vals[:, :] = values
    changed[:, :] = False
    if track_parents:
        parent_best[:, :] = np.nan
        parent_edge[:, :] = -1
    active_pairs = 0
    active_edges = 0
    for j in range(edge_idx.shape[0]):
        e = edge_idx[j]
        src = src_rep[j]
        v = dst_all[e]
        wt = wt_all[e]
        edge_active = 0
        for k in range(n_versions):
            if has_frontier and not frontier[k, src]:
                continue
            if not presence[k, e]:
                continue
            active_pairs += 1
            edge_active = 1
            val = old_vals[k, src]
            if op == 0:
                cand = val + wt
            elif op == 1:
                cand = val + 1.0
            elif op == 2:
                # np.minimum/maximum: a NaN val propagates into cand
                cand = val if (val < wt or val != val) else wt
            elif op == 3:
                cand = val if (val > wt or val != val) else wt
            else:
                cand = val / wt
            cur = values[k, v]
            # NaN value is sticky; NaN candidate poisons but is never
            # "changed" (matches minimum.at + better_into(values, old))
            if cur == cur:
                if cand != cand:
                    values[k, v] = cand
                    changed[k, v] = False
                elif cand < cur if minimize else cand > cur:
                    values[k, v] = cand
                    changed[k, v] = True
            if track_parents:
                b = parent_best[k, v]
                replace = (cand == cand) if b != b else (
                    cand < b if minimize else cand > b
                )
                if replace:
                    parent_best[k, v] = cand
                    parent_edge[k, v] = e
        active_edges += edge_active
    return active_pairs, active_edges


def daic_round(edge_idx, src_rep, dst_all, wt_all, frontier, presence,
               values, old_vals, changed, op, minimize,
               parent_best=None, parent_edge=None):
    """Fused DAIC round; returns (active version-pairs, active edges)."""
    track = parent_best is not None
    if not track:
        # numba needs concrete array types even down dead branches
        parent_best = np.empty((1, 1), dtype=np.float64)
        parent_edge = np.empty((1, 1), dtype=np.int64)
    has_frontier = frontier is not None
    if frontier is None:
        frontier = np.empty((1, 1), dtype=np.bool_)
    return _daic_round(
        edge_idx, src_rep, dst_all, wt_all, frontier, has_frontier,
        presence, values, old_vals, changed, int(op), bool(minimize),
        track, parent_best, parent_edge,
    )


@njit(cache=True, nogil=True)
def _presence_gather(planes, edge_idx, n_snapshots, out):
    for j in range(edge_idx.shape[0]):
        e = edge_idx[j]
        for k in range(n_snapshots):
            out[k, j] = (planes[k >> 3, e] >> (k & 7)) & 1 == 1
    return out


def presence_gather(planes, edge_idx, n_snapshots):
    """(K, E) bool presence matrix gathered straight off the bit planes."""
    edge_idx = np.ascontiguousarray(edge_idx, dtype=np.int64)
    out = np.empty((n_snapshots, edge_idx.shape[0]), dtype=np.bool_)
    return _presence_gather(np.ascontiguousarray(planes), edge_idx,
                            n_snapshots, out)
