"""KickStarter-style deletion repair for the streaming baseline.

MEGA's whole point is *avoiding* deletions, but the baselines it is
compared against (JetStream streaming, Fig. 2 and Table 4) must process
them.  This module implements the trimmed-approximation repair used by
KickStarter/JetStream:

1. the engine tracks, per vertex, the in-edge whose candidate produced its
   current value (the *approximation dependence tree*);
2. a deleted edge invalidates its dependent vertex, and invalidation
   cascades through the dependence tree — in hardware this is a wave of
   special delete events traversing out-edges, which is what makes
   deletions so much more expensive than additions (paper Fig. 2);
3. invalidated vertices are reset to the identity value and recomputed by
   re-propagating from the intact frontier around the invalidated region.

Values after repair equal a from-scratch evaluation on the reduced graph
(asserted by the integration tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engines.daic import MultiVersionEngine
from repro.engines.trace import RoundTrace
from repro.graph.csr import gather_out_edges

__all__ = ["DeletionRepair", "DeletionStats", "reconstruct_parents"]


def reconstruct_parents(
    engine: MultiVersionEngine,
    values: np.ndarray,
    presence: np.ndarray,
    source: int,
    parent_row: int = 0,
) -> None:
    """Rebuild a dependence tree from converged values (vectorized).

    At a fixpoint every reached non-root vertex has at least one in-edge
    whose candidate equals its value (docs/THEORY.md §3), but recording an
    *arbitrary* supporting edge could build cycles on value plateaus
    (mutually supporting equal values).  The reconstruction therefore
    grounds the forest: starting from the self-sufficient roots (the
    source, label-propagation roots, unreached vertices), it repeatedly
    anchors vertices whose value is supported by an already-anchored
    in-neighbour.  The result is an acyclic certificate forest equivalent
    to what live tracking would have produced — enabling deletion repair
    on values computed without parents (e.g. after a window slide
    re-indexes the union edge slots).
    """
    graph = engine.graph
    algo = engine.algorithm
    engine._ensure_parent_rows(parent_row + 1)
    parent = engine.parent_edge[parent_row]
    parent.fill(-1)

    live = np.flatnonzero(presence)
    src = graph.src_of_edge[live]
    dst = graph.dst[live]
    cand = algo.candidate(values[src], graph.wt[live])
    supports = cand == values[dst]
    live, src, dst, cand = (
        live[supports], src[supports], dst[supports], cand[supports]
    )

    # roots: vertices whose value needs no in-edge (their initial value)
    init = algo.initial_values(graph.n_vertices, source)
    anchored = values == init
    while True:
        usable = anchored[src] & ~anchored[dst]
        if not np.any(usable):
            break
        new_dst = dst[usable]
        new_edge = live[usable]
        # first supporting edge per destination wins
        uniq, first = np.unique(new_dst, return_index=True)
        parent[uniq] = new_edge[first]
        anchored[uniq] = True

    dangling = ~anchored & algo.reached(values[None, :])[0]
    if np.any(dangling):  # pragma: no cover - fixpoint guarantees none
        raise RuntimeError(
            "values are not a fixpoint: unsupported vertices found"
        )


@dataclass
class DeletionStats:
    """Cost breakdown of one deletion batch."""

    tagged_vertices: int
    tag_events: int
    tag_rounds: int
    recompute_rounds: int
    #: ``(n,)`` bool mask of the vertices the repair invalidated (post
    #: trim) — every vertex whose converged value depended, through the
    #: KickStarter parent forest, on a retired edge.  The complement is
    #: the batch's provably-stable set; sliding-window serving reuses it
    #: to seed incremental evaluation.  ``None`` only on legacy
    #: constructions that predate the field.
    tagged_mask: np.ndarray | None = None


class DeletionRepair:
    """Applies deletion batches against a single-version value array."""

    def __init__(self, engine: MultiVersionEngine) -> None:
        if not engine.track_parents:
            raise ValueError("deletion repair requires parent tracking")
        self.engine = engine

    def apply_deletions(
        self,
        values: np.ndarray,
        del_edge_idx: np.ndarray,
        presence_after: np.ndarray,
        source: int,
        parent_row: int = 0,
        tag: str = "del-batch",
    ) -> DeletionStats:
        """Remove a batch of edges and repair ``values`` in place.

        * ``values`` — ``(n,)`` value array for the affected version;
        * ``del_edge_idx`` — union-edge indices being deleted;
        * ``presence_after`` — ``(M,)`` bool mask of edges present *after*
          the deletion (the graph the repair propagates over).
        """
        engine = self.engine
        graph = engine.graph
        unified = engine.unified
        algo = engine.algorithm
        engine._ensure_parent_rows(parent_row + 1)
        parent = engine.parent_edge[parent_row]
        collector = engine.collector
        owns = collector is not None and not collector.active
        if owns:
            collector.begin(tag, "del", (parent_row,))

        n = graph.n_vertices
        del_edge_idx = np.asarray(del_edge_idx, dtype=np.int64)
        del_mask = np.zeros(graph.n_edges, dtype=bool)
        del_mask[del_edge_idx] = True
        if np.any(presence_after[del_edge_idx]):
            raise ValueError("presence_after must exclude the deleted edges")

        # Step 1: the batch reader emits one delete event per removed edge;
        # an event invalidates its destination iff the destination's value
        # was derived from exactly that edge.
        tagged = np.zeros(n, dtype=bool)
        victims = graph.dst[del_edge_idx]
        direct = parent[victims] == del_edge_idx
        tagged[victims[direct]] = True
        self._record(
            "del-tag",
            events_popped=0,
            events_generated=int(del_edge_idx.size),
            edge_idx=del_edge_idx,
            vertex_writes=int(direct.sum()),
            dst=np.unique(victims),
            src=np.unique(graph.src_of_edge[del_edge_idx]),
        )

        # Step 2: cascade invalidation along the dependence tree.  The
        # hardware broadcasts delete events along *all* out-edges of an
        # invalidated vertex; only true dependents invalidate further.
        tag_events = int(del_edge_idx.size)
        tag_rounds = 0
        frontier = np.flatnonzero(tagged)
        while frontier.size:
            edge_idx, src_rep = gather_out_edges(graph.indptr, frontier)
            if edge_idx.size == 0:
                break
            present = presence_after[edge_idx] | del_mask[edge_idx]
            edge_idx = edge_idx[present]
            if edge_idx.size == 0:
                break
            tag_rounds += 1
            tag_events += int(edge_idx.size)
            dst = graph.dst[edge_idx]
            dependent = (parent[dst] == edge_idx) & ~tagged[dst]
            newly = np.unique(dst[dependent])
            self._record(
                "del-tag",
                events_popped=int(frontier.size),
                events_generated=int(edge_idx.size),
                edge_idx=edge_idx,
                vertex_writes=int(newly.size),
                dst=np.unique(dst),
                src=frontier,
            )
            tagged[newly] = True
            frontier = newly

        # Step 3: trim — reset invalidated vertices and their parents.
        tagged[source] = False  # the source never depends on any edge
        n_tagged = int(tagged.sum())
        ident = algo.identity_values(n)
        values[tagged] = ident[tagged]
        parent[tagged] = -1

        # Step 4: recompute.  Pull the in-edges of the invalidated region to
        # find intact border vertices, then re-propagate from them over the
        # reduced graph.  The in-edge pull reads the transpose (CSC) edge
        # arrays — real off-chip traffic that makes deletions expensive.
        recompute_rounds = 0
        if n_tagged:
            rev = unified.reverse_graph()
            origin_of = unified.reverse_edge_origin
            tagged_vertices = np.flatnonzero(tagged)
            r_edge_idx, _ = gather_out_edges(rev.indptr, tagged_vertices)
            origin = origin_of[r_edge_idx]
            srcs = rev.dst[r_edge_idx]
            ok = (
                presence_after[origin]
                & ~tagged[srcs]
                & algo.reached(values)[srcs]
            )
            # Border vertices push back into the region; invalidated
            # vertices whose *reset* value still carries information (the
            # per-vertex identities of label-propagation extensions) must
            # re-propagate it themselves.  For the scalar Table 1
            # algorithms the reset value is pure identity, so this adds
            # nothing.
            self_info = tagged_vertices[
                algo.reached(values)[tagged_vertices]
            ]
            seeds = np.unique(np.concatenate([srcs[ok], self_info]))
            self._record(
                "del-pull",
                events_popped=int(tagged_vertices.size),
                events_generated=int(r_edge_idx.size),
                edge_idx=origin,
                vertex_writes=0,
                dst=seeds,
                src=tagged_vertices,
                block_ids=np.unique(
                    (r_edge_idx + self._reverse_block_offset())
                    // self.engine.edges_per_block
                ),
            )
            frontier2 = np.zeros((1, n), dtype=bool)
            frontier2[0, seeds] = True
            recompute_rounds = engine.propagate(
                values[None, :],
                frontier2,
                presence_after[None, :],
                phase="del-recompute",
                parent_rows=np.array([parent_row]),
            )

        if owns:
            collector.end()
        return DeletionStats(
            tagged_vertices=n_tagged,
            tag_events=tag_events,
            tag_rounds=tag_rounds,
            recompute_rounds=recompute_rounds,
            tagged_mask=tagged,
        )

    def _reverse_block_offset(self) -> int:
        """Block-id offset for the transpose (CSC) edge arrays, which live
        in their own memory region and must not alias the CSR blocks in
        the cache model."""
        epb = self.engine.edges_per_block
        return ((self.engine.graph.n_edges + epb - 1) // epb) * epb

    def _record(self, phase, events_popped, events_generated, edge_idx,
                vertex_writes, dst, src, block_ids=None) -> None:
        collector = self.engine.collector
        if collector is None or not collector.active:
            return
        blocks = (
            block_ids
            if block_ids is not None
            else np.unique(edge_idx // self.engine.edges_per_block)
        )
        collector.round(
            RoundTrace(
                phase=phase,
                events_popped=events_popped,
                events_generated=events_generated,
                edges_fetched=int(edge_idx.size),
                edge_blocks=blocks,
                vertex_reads=events_popped + events_generated,
                vertex_writes=vertex_writes,
                n_versions=1,
                dst_vertices=dst,
                src_vertices=src,
            ),
            edge_idx,
        )
