"""Delta-accumulative incremental computation (DAIC) engine.

This is the functional core shared by every workflow in the reproduction:
from-scratch evaluation, incremental edge additions, KickStarter-style
deletion repair, and — the MEGA-specific part — *multi-version* propagation
where one addition batch is applied to many snapshots simultaneously with
shared edge fetches (paper §3.1).

Execution is organized in asynchronous *rounds*: all currently-active
coalesced events are popped, candidates are pushed along out-edges, and
improved vertices become the next round's events.  Rounds correspond to the
iterations plotted in the paper's Fig. 10.  Because all five algorithms are
monotone, the final values are independent of event order (paper §3.2,
"Generality"), which the property tests exploit.

The engine operates on the *union* CSR of an evolving scenario.  Per-version
edge membership is supplied as a boolean presence matrix so one gather
serves all versions — the data-reuse effect MEGA's hardware exploits.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm
from repro.engines.trace import RoundTrace, TraceCollector
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import gather_out_edges
from repro.obs.profile import active_profiler
from repro.perf.backend import OPS, get_backend
from repro.resilience.budget import Budget, BudgetClock

__all__ = ["MultiVersionEngine", "group_argbest"]


def _sorted_unique(a: np.ndarray) -> np.ndarray:
    """``np.unique`` of an already-sorted array without the sort.

    The engine's edge gathers are ascending by construction (sorted
    frontiers over a monotone ``indptr``), so uniquing their derived
    block ids is a run-boundary scan; the guard keeps correctness for
    any caller that violates the precondition.
    """
    if a.shape[0] <= 1:
        return a.copy()
    keep = np.empty(a.shape[0], dtype=bool)
    keep[0] = True
    np.not_equal(a[1:], a[:-1], out=keep[1:])
    if np.any(a[1:] < a[:-1]):  # pragma: no cover - defensive
        return np.unique(a)
    return a[keep]


def _unique_vertices(idx: np.ndarray, n: int) -> np.ndarray:
    """Sorted unique vertex ids via a bounded bincount (no hash/sort).

    Bit-identical to ``np.unique(idx)`` for ids in ``[0, n)``; profiling
    showed the hash-based unique dominating recorded plan execution."""
    if idx.size == 0:
        return idx.astype(np.int64, copy=True)
    return np.flatnonzero(np.bincount(idx, minlength=n))


class _Scratch:
    """Grow-only flat buffer pools for the engine's round loop.

    Each named pool is a 1-D array that only ever grows (geometrically),
    handed out as a contiguous ``shape`` view over its prefix.  Because
    the views are prefixes of a flat buffer they stay C-contiguous for
    any requested 2-D shape, so ``ravel()`` on them is a view, not a
    copy.  Steady-state rounds therefore reuse the same memory instead
    of re-allocating ``(K, E)`` temporaries every round.
    """

    __slots__ = ("_pools",)

    def __init__(self) -> None:
        self._pools: dict[str, np.ndarray] = {}

    def get(self, name: str, dtype: type, shape: tuple[int, ...]) -> np.ndarray:
        size = 1
        for dim in shape:
            size *= int(dim)
        pool = self._pools.get(name)
        if pool is None or pool.size < size:
            cap = size if pool is None else max(size, 2 * pool.size)
            pool = np.empty(cap, dtype=dtype)
            self._pools[name] = pool
        return pool[:size].reshape(shape)


def group_argbest(
    keys: np.ndarray, candidates: np.ndarray, minimize: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Per-group best candidate: returns ``(unique_keys, argbest_index)``.

    ``argbest_index`` indexes the *input* arrays; ties break toward the
    lowest input index, which keeps parent tracking deterministic.
    Dispatches to the active kernel backend; the lexsort reference lives
    in :mod:`repro.perf.backend.reference`.
    """
    return get_backend().group_argbest(keys, candidates, minimize)


class MultiVersionEngine:
    """Round-based DAIC propagation over a unified evolving-graph CSR."""

    def __init__(
        self,
        algorithm: Algorithm,
        unified: UnifiedCSR,
        collector: TraceCollector | None = None,
        edges_per_block: int = 8,
        track_parents: bool = False,
        budget: Budget | None = None,
    ) -> None:
        self.algorithm = algorithm
        self.unified = unified
        self.graph = unified.graph
        self.collector = collector
        self.edges_per_block = int(edges_per_block)
        self.track_parents = track_parents
        #: optional watchdog over the engine's whole lifetime: caps total
        #: propagation rounds / generated events / wall clock and raises a
        #: structured BudgetExceeded instead of spinning on a
        #: non-converging (e.g. negative-cycle) workload
        self.budget = budget
        self._budget_clock: BudgetClock | None = None
        n = self.graph.n_vertices
        #: union-edge index whose candidate last set each vertex value,
        #: per version; -1 = no parent (source / unreached).  Only
        #: maintained when ``track_parents`` is set (deletion support).
        self.parent_edge: np.ndarray | None = None
        if track_parents:
            self.parent_edge = np.full((1, n), -1, dtype=np.int64)
        #: reusable round-loop buffers (see _Scratch); one set per engine,
        #: shared across propagate/apply_additions calls
        self._scratch = _Scratch()
        #: compiled kernel tier (repro.perf.backend): when the backend has
        #: a fused round kernel and the algorithm declares a kernel_op,
        #: rounds run as one compiled pass over the gathered edges instead
        #: of the five-sweep numpy body.  Algorithms without a kernel_op
        #: (extensions with custom orders) always take the numpy path.
        self._backend = get_backend()
        op_name = getattr(algorithm, "kernel_op", None)
        self._fused_op: int | None = (
            OPS[op_name]
            if self._backend.daic_round is not None and op_name in OPS
            else None
        )
        #: which scratch pool the last fused round's ``changed`` lives in;
        #: the fused kernel reads ``frontier`` while writing ``changed``,
        #: so consecutive rounds must ping-pong between two pools (the
        #: numpy path consumes ``frontier`` before its overwrite instead)
        self._changed_pool = "changed"

    def _changed_out(self, k: int, n: int) -> np.ndarray:
        self._changed_pool = (
            "changed2" if self._changed_pool == "changed" else "changed"
        )
        return self._scratch.get(self._changed_pool, bool, (k, n))

    def _can_fuse(self, *arrays: np.ndarray) -> bool:
        if self._fused_op is None:
            return False
        return all(a.flags["C_CONTIGUOUS"] for a in arrays)

    # -- state helpers -------------------------------------------------------

    def new_values(self, n_versions: int, source: int) -> np.ndarray:
        """Fresh ``(n_versions, n_vertices)`` value matrix."""
        one = self.algorithm.initial_values(self.graph.n_vertices, source)
        return np.tile(one, (n_versions, 1))

    def _ensure_parent_rows(self, n_versions: int) -> None:
        if self.parent_edge is not None and self.parent_edge.shape[0] < n_versions:
            extra = np.full(
                (n_versions - self.parent_edge.shape[0], self.graph.n_vertices),
                -1,
                dtype=np.int64,
            )
            self.parent_edge = np.vstack([self.parent_edge, extra])

    # -- core propagation ----------------------------------------------------

    def propagate(
        self,
        values: np.ndarray,
        frontier: np.ndarray,
        presence: np.ndarray,
        phase: str = "add",
        parent_rows: np.ndarray | None = None,
    ) -> int:
        """Run rounds until no value changes; returns rounds executed.

        * ``values`` — ``(K, n)`` value matrix, updated in place;
        * ``frontier`` — ``(K, n)`` bool matrix of active events;
        * ``presence`` — ``(K, M)`` bool matrix over union edges (which
          edges exist for each version);
        * ``parent_rows`` — rows of :attr:`parent_edge` corresponding to
          the ``K`` versions (only with ``track_parents``).
        """
        algo = self.algorithm
        graph = self.graph
        k, n = values.shape
        if frontier.shape != (k, n):
            raise ValueError("frontier must match the value matrix shape")
        if presence.shape != (k, graph.n_edges):
            raise ValueError("presence must be (n_versions, n_union_edges)")

        if self.budget is not None and self._budget_clock is None:
            self._budget_clock = self.budget.start()
        scratch = self._scratch
        # sampled kernel profiling (repro.obs.profile): one None-check per
        # round when disabled, two perf_counter pairs per sampled round
        prof = active_profiler()
        row_off = np.arange(k, dtype=np.int64)[:, None] * n
        rounds = 0
        while True:
            union_frontier = np.flatnonzero(frontier.any(axis=0))
            if union_frontier.size == 0:
                break
            rounds += 1
            recording = self._recording()
            timing = prof is not None and prof.sample()
            t0 = prof.now() if timing else 0.0
            # After the first round ``frontier`` aliases a ``changed``
            # scratch buffer, which is overwritten in the round body —
            # take its totals before any writes.  Only the budget clock
            # and the trace collector consume them.
            popped_versions = (
                int(frontier.sum())
                if recording or self._budget_clock is not None
                else 0
            )
            if self._budget_clock is not None:
                self._budget_clock.charge(
                    rounds=1,
                    events=popped_versions,
                    stats={"propagate_rounds": rounds},
                )
            edge_idx, src_rep = gather_out_edges(graph.indptr, union_frontier)
            if edge_idx.size == 0:
                if timing:
                    prof.add("edge_gather", prof.now() - t0)
                # frontier vertices with no out-edges still popped events
                self._record_round(
                    phase,
                    events_popped=int(union_frontier.size),
                    events_generated=0,
                    edge_idx=edge_idx,
                    vertex_writes=0,
                    n_versions=k,
                    dst=edge_idx,
                    src=union_frontier,
                    version_events_popped=popped_versions,
                )
                frontier[:] = False
                continue

            if self._can_fuse(frontier, presence, values):
                frontier = self._fused_round(
                    edge_idx, src_rep, frontier, presence, values,
                    parent_rows, phase, union_frontier, popped_versions,
                    recording, prof if timing else None, t0,
                )
                continue

            e = edge_idx.size
            # (K, E): does version k's frontier contain the edge's source,
            # and does the edge exist in version k's graph?  All round
            # temporaries are gathered into preallocated scratch views so
            # steady-state rounds run without fresh (K, E) allocations.
            active = np.take(
                frontier, src_rep, axis=1,
                out=scratch.get("active", bool, (k, e)),
            )
            active &= np.take(
                presence, edge_idx, axis=1,
                out=scratch.get("pres", bool, (k, e)),
            )
            vals = np.take(
                values, src_rep, axis=1,
                out=scratch.get("vals", np.float64, (k, e)),
            )
            wt = np.take(
                graph.wt, edge_idx, out=scratch.get("wt", np.float64, (e,))
            )
            cand = algo.candidate(vals, wt)
            inactive = np.logical_not(
                active, out=scratch.get("inactive", bool, (k, e))
            )
            np.copyto(cand, algo.mask_value, where=inactive)
            if timing:
                prof.add("edge_gather", prof.now() - t0)
                t0 = prof.now()

            dst = np.take(
                graph.dst, edge_idx, out=scratch.get("dst", np.int64, (e,))
            )
            old = scratch.get("old", np.float64, (k, n))
            np.copyto(old, values)
            flat_dst = np.add(
                row_off, dst[None, :],
                out=scratch.get("flat", np.int64, (k, e)),
            )
            sel = active.ravel()
            flat_idx = flat_dst.ravel()[sel]
            flat_cand = cand.ravel()[sel]
            algo.scatter_reduce(values.reshape(-1), flat_idx, flat_cand)

            changed = algo.better_into(
                values, old, out=self._changed_out(k, n)
            )
            if self.track_parents and parent_rows is not None:
                self._update_parents(
                    parent_rows, changed, flat_idx, flat_cand,
                    np.broadcast_to(edge_idx, (k, e)).ravel()[sel],
                    values,
                )
            if timing:
                prof.add("apply", prof.now() - t0)

            # The unified value array (§3.2) lets the datapath process all
            # versions of a vertex as one row-wide event, so the primary
            # counters are vertex-granular; the per-version scalar totals
            # ride along for analyses that need them.
            if recording:
                self._record_round(
                    phase,
                    events_popped=int(union_frontier.size),
                    events_generated=int(active.any(axis=0).sum()),
                    edge_idx=edge_idx,
                    vertex_writes=int(changed.any(axis=0).sum()),
                    n_versions=k,
                    dst=_unique_vertices(dst, n),
                    src=union_frontier,
                    version_events_popped=popped_versions,
                    version_events_generated=int(active.sum()),
                    version_vertex_writes=int(changed.sum()),
                )
            frontier = changed
        return rounds

    def _fused_round(
        self,
        edge_idx: np.ndarray,
        src_rep: np.ndarray,
        frontier: np.ndarray,
        presence: np.ndarray,
        values: np.ndarray,
        parent_rows: np.ndarray | None,
        phase: str,
        union_frontier: np.ndarray,
        popped_versions: int,
        recording: bool,
        prof,
        t0: float,
    ) -> np.ndarray:
        """One compiled round: gather→relax→better_into in a single pass.

        Returns the new frontier (the ``changed`` matrix).  Bit-identical
        to the numpy round body — candidates are computed from the
        pre-round value snapshot and min/max-reduced in edge order, with
        ``group_argbest``'s lowest-flat-index tie-breaks for parents.
        """
        graph = self.graph
        k, n = values.shape
        scratch = self._scratch
        if prof is not None:
            # the pre-kernel span is the out-edge gather; the kernel span
            # covers everything the numpy path calls relax + apply
            t1 = prof.now()
            prof.add("edge_gather", t1 - t0)
            t0 = t1
        old = scratch.get("old", np.float64, (k, n))
        changed = self._changed_out(k, n)
        track = self.track_parents and parent_rows is not None
        parent_best = (
            scratch.get("pbest", np.float64, (k, n)) if track else None
        )
        parent_edge = (
            scratch.get("pedge", np.int64, (k, n)) if track else None
        )
        pairs, active_edges = self._backend.daic_round(
            edge_idx, src_rep, graph.dst, graph.wt,
            frontier, presence, values, old, changed,
            self._fused_op, self.algorithm.minimize,
            parent_best, parent_edge,
        )
        if track:
            kv, vv = np.nonzero(changed)
            self.parent_edge[parent_rows[kv], vv] = parent_edge[kv, vv]
        if prof is not None:
            prof.add("fused_relax", prof.now() - t0)
        if recording:
            dst = np.take(
                graph.dst, edge_idx,
                out=scratch.get("dst", np.int64, (edge_idx.size,)),
            )
            self._record_round(
                phase,
                events_popped=int(union_frontier.size),
                events_generated=active_edges,
                edge_idx=edge_idx,
                vertex_writes=int(changed.any(axis=0).sum()),
                n_versions=k,
                dst=_unique_vertices(dst, n),
                src=union_frontier,
                version_events_popped=popped_versions,
                version_events_generated=pairs,
                version_vertex_writes=int(changed.sum()),
            )
        return changed

    def _update_parents(
        self,
        parent_rows: np.ndarray,
        changed: np.ndarray,
        flat_idx: np.ndarray,
        flat_cand: np.ndarray,
        flat_edge: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Record the winning in-edge of each changed ``(version, vertex)``."""
        if self.parent_edge is None:
            return
        uniq, best = group_argbest(flat_idx, flat_cand, self.algorithm.minimize)
        if uniq.size == 0:
            return
        n = values.shape[1]
        kv, vv = uniq // n, uniq % n
        is_changed = changed[kv, vv]
        rows = parent_rows[kv[is_changed]]
        self.parent_edge[rows, vv[is_changed]] = flat_edge[best[is_changed]]

    # -- public operations -----------------------------------------------------

    def evaluate_full(
        self,
        presence_row: np.ndarray,
        source: int,
        phase: str = "full",
        tag: str = "full-eval",
        parent_row: int | None = None,
    ) -> np.ndarray:
        """From-scratch evaluation on one graph; returns a ``(n,)`` array."""
        values = self.new_values(1, source)
        frontier = np.zeros((1, self.graph.n_vertices), dtype=bool)
        frontier[0, self.algorithm.initial_frontier(self.graph.n_vertices, source)] = True
        parent_rows = None
        if self.track_parents and parent_row is not None:
            self._ensure_parent_rows(parent_row + 1)
            self.parent_edge[parent_row, :] = -1
            parent_rows = np.array([parent_row])
        self._begin(tag, phase, (0,))
        self.propagate(values, frontier, presence_row[None, :], phase, parent_rows)
        self._end()
        return values[0]

    def apply_additions(
        self,
        values: np.ndarray,
        batch_edge_idx: np.ndarray,
        presence: np.ndarray,
        phase: str = "add",
        tag: str = "batch",
        targets: tuple[int, ...] = (0,),
        parent_rows: np.ndarray | None = None,
    ) -> int:
        """Incrementally apply an addition batch to ``K`` versions at once.

        ``values`` is ``(K, n)`` and updated in place; ``presence`` must
        already include the batch's edges for every target version.  The
        batch reader pass (round 0) scatters the batch edges' candidates,
        then propagation runs to a fixpoint.  Returns rounds executed
        (including the seeding round when it produced work).
        """
        algo = self.algorithm
        graph = self.graph
        k, n = values.shape
        self._begin(tag, phase, targets)
        recording = self._recording()

        prof = active_profiler()
        timing = prof is not None and prof.sample()
        t0 = prof.now() if timing else 0.0
        scratch = self._scratch
        edge_idx = np.ascontiguousarray(batch_edge_idx, dtype=np.int64)
        e = edge_idx.size
        src = np.take(
            graph.src_of_edge, edge_idx,
            out=scratch.get("src", np.int64, (e,)),
        )
        dst = np.take(
            graph.dst, edge_idx, out=scratch.get("dst", np.int64, (e,))
        )
        track = self.track_parents and parent_rows is not None
        old = scratch.get("old", np.float64, (k, n))
        if self._can_fuse(presence, values):
            # Fused batch-reader pass: same kernel as the round loop with
            # the frontier gate disabled (every present batch edge seeds).
            changed = self._changed_out(k, n)
            parent_best = (
                scratch.get("pbest", np.float64, (k, n)) if track else None
            )
            parent_edge = (
                scratch.get("pedge", np.int64, (k, n)) if track else None
            )
            pairs, active_edges = self._backend.daic_round(
                edge_idx, src, graph.dst, graph.wt,
                None, presence, values, old, changed,
                self._fused_op, algo.minimize, parent_best, parent_edge,
            )
            if track:
                kv, vv = np.nonzero(changed)
                self.parent_edge[parent_rows[kv], vv] = parent_edge[kv, vv]
            seed_any, seed_all = active_edges, pairs
        else:
            present = np.take(
                presence, edge_idx, axis=1,
                out=scratch.get("pres", bool, (k, e)),
            )
            vals = np.take(
                values, src, axis=1,
                out=scratch.get("vals", np.float64, (k, e)),
            )
            wt = np.take(
                graph.wt, edge_idx, out=scratch.get("wt", np.float64, (e,))
            )
            cand = algo.candidate(vals, wt)
            absent = np.logical_not(
                present, out=scratch.get("inactive", bool, (k, e))
            )
            np.copyto(cand, algo.mask_value, where=absent)

            np.copyto(old, values)
            flat_dst = np.add(
                np.arange(k, dtype=np.int64)[:, None] * n, dst[None, :],
                out=scratch.get("flat", np.int64, (k, e)),
            )
            sel = present.ravel()
            flat_idx = flat_dst.ravel()[sel]
            flat_cand = cand.ravel()[sel]
            algo.scatter_reduce(values.reshape(-1), flat_idx, flat_cand)
            changed = algo.better_into(
                values, old, out=self._changed_out(k, n)
            )
            if track:
                self._update_parents(
                    parent_rows, changed, flat_idx, flat_cand,
                    np.broadcast_to(edge_idx, (k, e)).ravel()[sel],
                    values,
                )
            seed_any = int(present.any(axis=0).sum())
            seed_all = int(present.sum())
        if timing:
            prof.add("batch_seed", prof.now() - t0)
        # Round 0: the batch reader fetches the batch edges and generates
        # one (row-wide) event per batch edge live in any target version.
        if recording:
            self._record_round(
                phase,
                events_popped=0,
                events_generated=seed_any,
                edge_idx=edge_idx,
                vertex_writes=int(changed.any(axis=0).sum()),
                n_versions=k,
                dst=_unique_vertices(dst, n),
                src=_unique_vertices(src, n),
                version_events_popped=0,
                version_events_generated=seed_all,
                version_vertex_writes=int(changed.sum()),
            )
        rounds = self.propagate(values, changed, presence, phase, parent_rows)
        self._end()
        return rounds + 1

    # -- trace plumbing ----------------------------------------------------------

    def _begin(self, tag: str, phase: str, targets: tuple[int, ...]) -> None:
        if self.collector is not None and not self.collector.active:
            self.collector.begin(tag, phase, targets)
            self._owns_execution = True
        else:
            self._owns_execution = False

    def _end(self) -> None:
        if self.collector is not None and self._owns_execution:
            self.collector.end()

    def _recording(self) -> bool:
        """Is a trace collector actively recording?  The hot round loop
        skips computing per-round statistics entirely when not."""
        return self.collector is not None and self.collector.active

    def _record_round(
        self,
        phase: str,
        events_popped: int,
        events_generated: int,
        edge_idx: np.ndarray,
        vertex_writes: int,
        n_versions: int,
        dst: np.ndarray,
        src: np.ndarray,
        version_events_popped: int | None = None,
        version_events_generated: int | None = None,
        version_vertex_writes: int | None = None,
    ) -> None:
        if self.collector is None or not self.collector.active:
            return
        # gathered edge ids are ascending, so run-boundary unique suffices
        blocks = _sorted_unique(edge_idx // self.edges_per_block)
        trace = RoundTrace(
            phase=phase,
            events_popped=events_popped,
            events_generated=events_generated,
            edges_fetched=int(edge_idx.size),
            edge_blocks=blocks,
            vertex_reads=events_popped + events_generated,
            vertex_writes=vertex_writes,
            n_versions=n_versions,
            dst_vertices=dst,
            src_vertices=src,
            version_events_popped=(
                events_popped
                if version_events_popped is None
                else version_events_popped
            ),
            version_events_generated=(
                events_generated
                if version_events_generated is None
                else version_events_generated
            ),
            version_vertex_writes=(
                vertex_writes
                if version_vertex_writes is None
                else version_vertex_writes
            ),
        )
        self.collector.round(trace, edge_idx)
