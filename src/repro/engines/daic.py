"""Delta-accumulative incremental computation (DAIC) engine.

This is the functional core shared by every workflow in the reproduction:
from-scratch evaluation, incremental edge additions, KickStarter-style
deletion repair, and — the MEGA-specific part — *multi-version* propagation
where one addition batch is applied to many snapshots simultaneously with
shared edge fetches (paper §3.1).

Execution is organized in asynchronous *rounds*: all currently-active
coalesced events are popped, candidates are pushed along out-edges, and
improved vertices become the next round's events.  Rounds correspond to the
iterations plotted in the paper's Fig. 10.  Because all five algorithms are
monotone, the final values are independent of event order (paper §3.2,
"Generality"), which the property tests exploit.

The engine operates on the *union* CSR of an evolving scenario.  Per-version
edge membership is supplied as a boolean presence matrix so one gather
serves all versions — the data-reuse effect MEGA's hardware exploits.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm
from repro.engines.trace import RoundTrace, TraceCollector
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import gather_out_edges
from repro.obs.profile import active_profiler
from repro.resilience.budget import Budget, BudgetClock

__all__ = ["MultiVersionEngine", "group_argbest"]


class _Scratch:
    """Grow-only flat buffer pools for the engine's round loop.

    Each named pool is a 1-D array that only ever grows (geometrically),
    handed out as a contiguous ``shape`` view over its prefix.  Because
    the views are prefixes of a flat buffer they stay C-contiguous for
    any requested 2-D shape, so ``ravel()`` on them is a view, not a
    copy.  Steady-state rounds therefore reuse the same memory instead
    of re-allocating ``(K, E)`` temporaries every round.
    """

    __slots__ = ("_pools",)

    def __init__(self) -> None:
        self._pools: dict[str, np.ndarray] = {}

    def get(self, name: str, dtype: type, shape: tuple[int, ...]) -> np.ndarray:
        size = 1
        for dim in shape:
            size *= int(dim)
        pool = self._pools.get(name)
        if pool is None or pool.size < size:
            cap = size if pool is None else max(size, 2 * pool.size)
            pool = np.empty(cap, dtype=dtype)
            self._pools[name] = pool
        return pool[:size].reshape(shape)


def group_argbest(
    keys: np.ndarray, candidates: np.ndarray, minimize: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Per-group best candidate: returns ``(unique_keys, argbest_index)``.

    ``argbest_index`` indexes the *input* arrays; ties break toward the
    lowest input index, which keeps parent tracking deterministic.
    """
    if keys.shape[0] == 0:
        return keys, np.empty(0, dtype=np.int64)
    order_val = candidates if minimize else -candidates
    order = np.lexsort((np.arange(keys.shape[0]), order_val, keys))
    sorted_keys = keys[order]
    first = np.empty(sorted_keys.shape[0], dtype=bool)
    first[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=first[1:])
    return sorted_keys[first], order[first]


class MultiVersionEngine:
    """Round-based DAIC propagation over a unified evolving-graph CSR."""

    def __init__(
        self,
        algorithm: Algorithm,
        unified: UnifiedCSR,
        collector: TraceCollector | None = None,
        edges_per_block: int = 8,
        track_parents: bool = False,
        budget: Budget | None = None,
    ) -> None:
        self.algorithm = algorithm
        self.unified = unified
        self.graph = unified.graph
        self.collector = collector
        self.edges_per_block = int(edges_per_block)
        self.track_parents = track_parents
        #: optional watchdog over the engine's whole lifetime: caps total
        #: propagation rounds / generated events / wall clock and raises a
        #: structured BudgetExceeded instead of spinning on a
        #: non-converging (e.g. negative-cycle) workload
        self.budget = budget
        self._budget_clock: BudgetClock | None = None
        n = self.graph.n_vertices
        #: union-edge index whose candidate last set each vertex value,
        #: per version; -1 = no parent (source / unreached).  Only
        #: maintained when ``track_parents`` is set (deletion support).
        self.parent_edge: np.ndarray | None = None
        if track_parents:
            self.parent_edge = np.full((1, n), -1, dtype=np.int64)
        #: reusable round-loop buffers (see _Scratch); one set per engine,
        #: shared across propagate/apply_additions calls
        self._scratch = _Scratch()

    # -- state helpers -------------------------------------------------------

    def new_values(self, n_versions: int, source: int) -> np.ndarray:
        """Fresh ``(n_versions, n_vertices)`` value matrix."""
        one = self.algorithm.initial_values(self.graph.n_vertices, source)
        return np.tile(one, (n_versions, 1))

    def _ensure_parent_rows(self, n_versions: int) -> None:
        if self.parent_edge is not None and self.parent_edge.shape[0] < n_versions:
            extra = np.full(
                (n_versions - self.parent_edge.shape[0], self.graph.n_vertices),
                -1,
                dtype=np.int64,
            )
            self.parent_edge = np.vstack([self.parent_edge, extra])

    # -- core propagation ----------------------------------------------------

    def propagate(
        self,
        values: np.ndarray,
        frontier: np.ndarray,
        presence: np.ndarray,
        phase: str = "add",
        parent_rows: np.ndarray | None = None,
    ) -> int:
        """Run rounds until no value changes; returns rounds executed.

        * ``values`` — ``(K, n)`` value matrix, updated in place;
        * ``frontier`` — ``(K, n)`` bool matrix of active events;
        * ``presence`` — ``(K, M)`` bool matrix over union edges (which
          edges exist for each version);
        * ``parent_rows`` — rows of :attr:`parent_edge` corresponding to
          the ``K`` versions (only with ``track_parents``).
        """
        algo = self.algorithm
        graph = self.graph
        k, n = values.shape
        if frontier.shape != (k, n):
            raise ValueError("frontier must match the value matrix shape")
        if presence.shape != (k, graph.n_edges):
            raise ValueError("presence must be (n_versions, n_union_edges)")

        if self.budget is not None and self._budget_clock is None:
            self._budget_clock = self.budget.start()
        scratch = self._scratch
        # sampled kernel profiling (repro.obs.profile): one None-check per
        # round when disabled, two perf_counter pairs per sampled round
        prof = active_profiler()
        row_off = np.arange(k, dtype=np.int64)[:, None] * n
        rounds = 0
        while True:
            union_frontier = np.flatnonzero(frontier.any(axis=0))
            if union_frontier.size == 0:
                break
            rounds += 1
            timing = prof is not None and prof.sample()
            t0 = prof.now() if timing else 0.0
            # After the first round ``frontier`` aliases the ``changed``
            # scratch buffer, which is overwritten at the end of the round
            # body — take its totals before any writes.
            popped_versions = int(frontier.sum())
            if self._budget_clock is not None:
                self._budget_clock.charge(
                    rounds=1,
                    events=popped_versions,
                    stats={"propagate_rounds": rounds},
                )
            edge_idx, src_rep = gather_out_edges(graph.indptr, union_frontier)
            if edge_idx.size == 0:
                if timing:
                    prof.add("edge_gather", prof.now() - t0)
                # frontier vertices with no out-edges still popped events
                self._record_round(
                    phase,
                    events_popped=int(union_frontier.size),
                    events_generated=0,
                    edge_idx=edge_idx,
                    vertex_writes=0,
                    n_versions=k,
                    dst=edge_idx,
                    src=union_frontier,
                    version_events_popped=popped_versions,
                )
                frontier[:] = False
                continue

            e = edge_idx.size
            # (K, E): does version k's frontier contain the edge's source,
            # and does the edge exist in version k's graph?  All round
            # temporaries are gathered into preallocated scratch views so
            # steady-state rounds run without fresh (K, E) allocations.
            active = np.take(
                frontier, src_rep, axis=1,
                out=scratch.get("active", bool, (k, e)),
            )
            active &= np.take(
                presence, edge_idx, axis=1,
                out=scratch.get("pres", bool, (k, e)),
            )
            vals = np.take(
                values, src_rep, axis=1,
                out=scratch.get("vals", np.float64, (k, e)),
            )
            wt = np.take(
                graph.wt, edge_idx, out=scratch.get("wt", np.float64, (e,))
            )
            cand = algo.candidate(vals, wt)
            inactive = np.logical_not(
                active, out=scratch.get("inactive", bool, (k, e))
            )
            np.copyto(cand, algo.mask_value, where=inactive)
            if timing:
                prof.add("edge_gather", prof.now() - t0)
                t0 = prof.now()

            dst = np.take(
                graph.dst, edge_idx, out=scratch.get("dst", np.int64, (e,))
            )
            old = scratch.get("old", np.float64, (k, n))
            np.copyto(old, values)
            flat_dst = np.add(
                row_off, dst[None, :],
                out=scratch.get("flat", np.int64, (k, e)),
            )
            sel = active.ravel()
            flat_idx = flat_dst.ravel()[sel]
            flat_cand = cand.ravel()[sel]
            algo.scatter_reduce(values.reshape(-1), flat_idx, flat_cand)

            changed = algo.better_into(
                values, old, out=scratch.get("changed", bool, (k, n))
            )
            if self.track_parents and parent_rows is not None:
                self._update_parents(
                    parent_rows, changed, flat_idx, flat_cand,
                    np.broadcast_to(edge_idx, (k, e)).ravel()[sel],
                    values,
                )
            if timing:
                prof.add("apply", prof.now() - t0)

            # The unified value array (§3.2) lets the datapath process all
            # versions of a vertex as one row-wide event, so the primary
            # counters are vertex-granular; the per-version scalar totals
            # ride along for analyses that need them.
            if self._recording():
                self._record_round(
                    phase,
                    events_popped=int(union_frontier.size),
                    events_generated=int(active.any(axis=0).sum()),
                    edge_idx=edge_idx,
                    vertex_writes=int(changed.any(axis=0).sum()),
                    n_versions=k,
                    dst=np.unique(dst),
                    src=union_frontier,
                    version_events_popped=popped_versions,
                    version_events_generated=int(active.sum()),
                    version_vertex_writes=int(changed.sum()),
                )
            frontier = changed
        return rounds

    def _update_parents(
        self,
        parent_rows: np.ndarray,
        changed: np.ndarray,
        flat_idx: np.ndarray,
        flat_cand: np.ndarray,
        flat_edge: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Record the winning in-edge of each changed ``(version, vertex)``."""
        if self.parent_edge is None:
            return
        uniq, best = group_argbest(flat_idx, flat_cand, self.algorithm.minimize)
        if uniq.size == 0:
            return
        n = values.shape[1]
        kv, vv = uniq // n, uniq % n
        is_changed = changed[kv, vv]
        rows = parent_rows[kv[is_changed]]
        self.parent_edge[rows, vv[is_changed]] = flat_edge[best[is_changed]]

    # -- public operations -----------------------------------------------------

    def evaluate_full(
        self,
        presence_row: np.ndarray,
        source: int,
        phase: str = "full",
        tag: str = "full-eval",
        parent_row: int | None = None,
    ) -> np.ndarray:
        """From-scratch evaluation on one graph; returns a ``(n,)`` array."""
        values = self.new_values(1, source)
        frontier = np.zeros((1, self.graph.n_vertices), dtype=bool)
        frontier[0, self.algorithm.initial_frontier(self.graph.n_vertices, source)] = True
        parent_rows = None
        if self.track_parents and parent_row is not None:
            self._ensure_parent_rows(parent_row + 1)
            self.parent_edge[parent_row, :] = -1
            parent_rows = np.array([parent_row])
        self._begin(tag, phase, (0,))
        self.propagate(values, frontier, presence_row[None, :], phase, parent_rows)
        self._end()
        return values[0]

    def apply_additions(
        self,
        values: np.ndarray,
        batch_edge_idx: np.ndarray,
        presence: np.ndarray,
        phase: str = "add",
        tag: str = "batch",
        targets: tuple[int, ...] = (0,),
        parent_rows: np.ndarray | None = None,
    ) -> int:
        """Incrementally apply an addition batch to ``K`` versions at once.

        ``values`` is ``(K, n)`` and updated in place; ``presence`` must
        already include the batch's edges for every target version.  The
        batch reader pass (round 0) scatters the batch edges' candidates,
        then propagation runs to a fixpoint.  Returns rounds executed
        (including the seeding round when it produced work).
        """
        algo = self.algorithm
        graph = self.graph
        k, n = values.shape
        self._begin(tag, phase, targets)

        prof = active_profiler()
        timing = prof is not None and prof.sample()
        t0 = prof.now() if timing else 0.0
        scratch = self._scratch
        edge_idx = np.asarray(batch_edge_idx, dtype=np.int64)
        e = edge_idx.size
        src = np.take(
            graph.src_of_edge, edge_idx,
            out=scratch.get("src", np.int64, (e,)),
        )
        dst = np.take(
            graph.dst, edge_idx, out=scratch.get("dst", np.int64, (e,))
        )
        present = np.take(
            presence, edge_idx, axis=1, out=scratch.get("pres", bool, (k, e))
        )
        vals = np.take(
            values, src, axis=1, out=scratch.get("vals", np.float64, (k, e))
        )
        wt = np.take(
            graph.wt, edge_idx, out=scratch.get("wt", np.float64, (e,))
        )
        cand = algo.candidate(vals, wt)
        absent = np.logical_not(
            present, out=scratch.get("inactive", bool, (k, e))
        )
        np.copyto(cand, algo.mask_value, where=absent)

        old = scratch.get("old", np.float64, (k, n))
        np.copyto(old, values)
        flat_dst = np.add(
            np.arange(k, dtype=np.int64)[:, None] * n, dst[None, :],
            out=scratch.get("flat", np.int64, (k, e)),
        )
        sel = present.ravel()
        flat_idx = flat_dst.ravel()[sel]
        flat_cand = cand.ravel()[sel]
        algo.scatter_reduce(values.reshape(-1), flat_idx, flat_cand)
        changed = algo.better_into(
            values, old, out=scratch.get("changed", bool, (k, n))
        )
        if self.track_parents and parent_rows is not None:
            self._update_parents(
                parent_rows, changed, flat_idx, flat_cand,
                np.broadcast_to(edge_idx, (k, edge_idx.size)).ravel()[sel],
                values,
            )
        if timing:
            prof.add("batch_seed", prof.now() - t0)
        # Round 0: the batch reader fetches the batch edges and generates
        # one (row-wide) event per batch edge live in any target version.
        self._record_round(
            phase,
            events_popped=0,
            events_generated=int(present.any(axis=0).sum()),
            edge_idx=edge_idx,
            vertex_writes=int(changed.any(axis=0).sum()),
            n_versions=k,
            dst=np.unique(dst),
            src=np.unique(src),
            version_events_popped=0,
            version_events_generated=int(present.sum()),
            version_vertex_writes=int(changed.sum()),
        )
        rounds = self.propagate(values, changed, presence, phase, parent_rows)
        self._end()
        return rounds + 1

    # -- trace plumbing ----------------------------------------------------------

    def _begin(self, tag: str, phase: str, targets: tuple[int, ...]) -> None:
        if self.collector is not None and not self.collector.active:
            self.collector.begin(tag, phase, targets)
            self._owns_execution = True
        else:
            self._owns_execution = False

    def _end(self) -> None:
        if self.collector is not None and self._owns_execution:
            self.collector.end()

    def _recording(self) -> bool:
        """Is a trace collector actively recording?  The hot round loop
        skips computing per-round statistics entirely when not."""
        return self.collector is not None and self.collector.active

    def _record_round(
        self,
        phase: str,
        events_popped: int,
        events_generated: int,
        edge_idx: np.ndarray,
        vertex_writes: int,
        n_versions: int,
        dst: np.ndarray,
        src: np.ndarray,
        version_events_popped: int | None = None,
        version_events_generated: int | None = None,
        version_vertex_writes: int | None = None,
    ) -> None:
        if self.collector is None or not self.collector.active:
            return
        blocks = np.unique(edge_idx // self.edges_per_block)
        trace = RoundTrace(
            phase=phase,
            events_popped=events_popped,
            events_generated=events_generated,
            edges_fetched=int(edge_idx.size),
            edge_blocks=blocks,
            vertex_reads=events_popped + events_generated,
            vertex_writes=vertex_writes,
            n_versions=n_versions,
            dst_vertices=dst,
            src_vertices=src,
            version_events_popped=(
                events_popped
                if version_events_popped is None
                else version_events_popped
            ),
            version_events_generated=(
                events_generated
                if version_events_generated is None
                else version_events_generated
            ),
            version_vertex_writes=(
                vertex_writes
                if version_vertex_writes is None
                else version_vertex_writes
            ),
        )
        self.collector.round(trace, edge_idx)
