"""Plan executor: runs any workflow plan on the DAIC engine.

The executor is the software realization of every workflow in the paper —
given a :class:`~repro.schedule.plan.Plan` it maintains the per-state value
arrays and graph-membership masks, drives the multi-version engine, and
returns the final query values of every snapshot.  The same execution
produces the round traces the accelerator timing models replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import Algorithm
from repro.engines.daic import MultiVersionEngine
from repro.engines.deletion import DeletionRepair, DeletionStats
from repro.engines.trace import TraceCollector
from repro.evolving.snapshots import EvolvingScenario
from repro.resilience import faults
from repro.resilience.budget import Budget
from repro.schedule.plan import (
    ApplyEdges,
    CopyState,
    DeleteEdges,
    EvalFull,
    MarkSnapshot,
    Plan,
)

__all__ = ["PlanExecutor", "WorkflowResult"]


@dataclass
class WorkflowResult:
    """Final values per snapshot plus the collected execution traces."""

    plan_name: str
    snapshot_values: dict[int, np.ndarray]
    collector: TraceCollector
    deletion_stats: list[DeletionStats] = field(default_factory=list)
    #: batch-composition bookkeeping mirrored from the run (None when the
    #: plan carries no batch ids); indexed by *state*, not snapshot
    version_table: object | None = None

    def values(self, snapshot: int) -> np.ndarray:
        return self.snapshot_values[snapshot]


class PlanExecutor:
    """Executes workflow plans over an evolving scenario."""

    def __init__(
        self,
        scenario: EvolvingScenario,
        algorithm: Algorithm,
        record_touched_edges: bool = False,
        edges_per_block: int = 8,
        budget: Budget | None = None,
    ) -> None:
        self.scenario = scenario
        self.algorithm = algorithm
        self.unified = scenario.unified
        self.record_touched_edges = record_touched_edges
        self.edges_per_block = edges_per_block
        self.budget = budget

    def run(self, plan: Plan) -> WorkflowResult:
        unified = self.unified
        n = unified.n_vertices
        m = unified.n_union_edges
        needs_deletion = any(isinstance(s, DeleteEdges) for s in plan.steps)

        collector = TraceCollector(
            m, self.record_touched_edges, n_vertices=n
        )
        engine = MultiVersionEngine(
            self.algorithm,
            unified,
            collector=collector,
            edges_per_block=self.edges_per_block,
            track_parents=needs_deletion,
            budget=self.budget,
        )
        repair = DeletionRepair(engine) if needs_deletion else None
        table = self._new_version_table(plan)

        n_states = max(plan.n_states, 1)
        values = np.full(
            (n_states, n), self.algorithm.identity, dtype=np.float64
        )
        presence = np.zeros((n_states, m), dtype=bool)
        initial_mask = (
            unified.common_mask
            if plan.initial_graph == "common"
            else unified.presence_mask(0)
        )

        result = WorkflowResult(plan.name, {}, collector, version_table=table)
        for step in plan.steps:
            if isinstance(step, EvalFull):
                presence[step.state] = initial_mask
                parent_row = step.state if needs_deletion else None
                source = (
                    self.scenario.source if step.source is None else step.source
                )
                values[step.state] = engine.evaluate_full(
                    presence[step.state],
                    source,
                    phase="full",
                    tag=step.label,
                    parent_row=parent_row,
                )
            elif isinstance(step, CopyState):
                values[step.dst] = values[step.src]
                presence[step.dst] = presence[step.src]
                if needs_deletion:
                    engine._ensure_parent_rows(step.dst + 1)
                    engine.parent_edge[step.dst] = engine.parent_edge[step.src]
                if table is not None:
                    table.entries[step.dst].applied = set(
                        table.entries[step.src].applied
                    )
            elif isinstance(step, ApplyEdges):
                if table is not None:
                    for b in step.batches:
                        table.begin_batch(b, list(step.targets))
                self._apply(engine, values, presence, step, needs_deletion)
                if table is not None:
                    for b in step.batches:
                        table.finish_batch(b, list(step.targets))
            elif isinstance(step, DeleteEdges):
                if table is not None:
                    for b in step.batches:
                        table.begin_batch(b, [step.state])
                presence[step.state, step.edge_idx] = False
                row = values[step.state]
                stats = repair.apply_deletions(
                    row,
                    step.edge_idx,
                    presence[step.state],
                    self.scenario.source,
                    parent_row=step.state,
                    tag=step.label,
                )
                values[step.state] = row
                result.deletion_stats.append(stats)
                if table is not None:
                    for b in step.batches:
                        table.finish_batch(b, [step.state])
            elif isinstance(step, MarkSnapshot):
                snap = values[step.state].copy()
                fire = faults.maybe_fire("executor.bitflip-value")
                if fire is not None:
                    self._bitflip(snap, fire, step.snapshot)
                result.snapshot_values[step.snapshot] = snap
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown plan step {step!r}")
        if table is not None:
            for entry in table.entries:
                table.mark_complete(entry.snapshot)
        return result

    def _new_version_table(self, plan: Plan):
        """Mirror the run's batch compositions in a hardware version table.

        Only built when the plan carries batch ids.  Executor states are
        physically separate value rows, so every entry is peeled up front
        (no chain aliasing); what the table tracks here is *which batches
        each state's values include* — the composition record the campaign
        cross-checks against the plan.
        """
        has_batches = any(
            getattr(s, "batches", ()) for s in plan.steps
        )
        if not has_batches or plan.n_states < 1:
            return None
        from repro.accel.version_table import VersionTable

        table = VersionTable(max(plan.n_states, 1))
        for entry in table.entries:
            table.peel(entry.snapshot)
        return table

    @staticmethod
    def _bitflip(snap: np.ndarray, fire: faults.Fire, snapshot: int) -> None:
        """Flip a high-mantissa bit of one (preferably finite) value."""
        finite = np.flatnonzero(np.isfinite(snap) & (snap != 0.0))
        pool = finite if finite.size else np.arange(snap.shape[0])
        vertex = int(pool[int(fire.rng.integers(pool.size))])
        bits = snap.view(np.uint64)
        bits[vertex] ^= np.uint64(1) << np.uint64(51)
        fire.note(snapshot=snapshot, vertex=vertex, bit=51,
                  value=float(snap[vertex]))

    def _apply(
        self,
        engine: MultiVersionEngine,
        values: np.ndarray,
        presence: np.ndarray,
        step: ApplyEdges,
        needs_deletion: bool,
    ) -> None:
        targets = list(step.targets)
        edge_idx = step.edge_idx
        if edge_idx.size > 1:
            fire = faults.maybe_fire("schedule.truncate-batch")
            if fire is not None:
                # batch delivery loses its tail: the plan is intact, but
                # this application sees only a prefix of the edges
                keep = int(fire.rng.integers(1, edge_idx.size))
                fire.note(step=step.label, batch_size=int(edge_idx.size),
                          dropped=int(edge_idx.size - keep))
                edge_idx = edge_idx[:keep]
        if len(targets) == 1:
            t = targets[0]
            presence[t, edge_idx] = True
            parent_rows = np.array([t]) if needs_deletion else None
            if needs_deletion:
                engine._ensure_parent_rows(t + 1)
            engine.apply_additions(
                values[t][None, :],
                edge_idx,
                presence[t][None, :],
                phase="add",
                tag=step.label,
                targets=(t,),
                parent_rows=parent_rows,
            )
            return
        # Multi-target (BOE): stack target rows, run one shared execution,
        # write results back.
        sub_values = values[targets]
        sub_presence = presence[targets]
        sub_presence[:, edge_idx] = True
        engine.apply_additions(
            sub_values,
            edge_idx,
            sub_presence,
            phase="add",
            tag=step.label,
            targets=tuple(targets),
        )
        values[targets] = sub_values
        presence[targets] = sub_presence
