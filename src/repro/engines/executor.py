"""Plan executor: runs any workflow plan on the DAIC engine.

The executor is the software realization of every workflow in the paper —
given a :class:`~repro.schedule.plan.Plan` it maintains the per-state value
arrays and graph-membership masks, drives the multi-version engine, and
returns the final query values of every snapshot.  The same execution
produces the round traces the accelerator timing models replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import Algorithm
from repro.engines.daic import MultiVersionEngine
from repro.engines.deletion import DeletionRepair, DeletionStats
from repro.engines.trace import TraceCollector
from repro.evolving.snapshots import EvolvingScenario
from repro.schedule.plan import (
    ApplyEdges,
    CopyState,
    DeleteEdges,
    EvalFull,
    MarkSnapshot,
    Plan,
)

__all__ = ["PlanExecutor", "WorkflowResult"]


@dataclass
class WorkflowResult:
    """Final values per snapshot plus the collected execution traces."""

    plan_name: str
    snapshot_values: dict[int, np.ndarray]
    collector: TraceCollector
    deletion_stats: list[DeletionStats] = field(default_factory=list)

    def values(self, snapshot: int) -> np.ndarray:
        return self.snapshot_values[snapshot]


class PlanExecutor:
    """Executes workflow plans over an evolving scenario."""

    def __init__(
        self,
        scenario: EvolvingScenario,
        algorithm: Algorithm,
        record_touched_edges: bool = False,
        edges_per_block: int = 8,
    ) -> None:
        self.scenario = scenario
        self.algorithm = algorithm
        self.unified = scenario.unified
        self.record_touched_edges = record_touched_edges
        self.edges_per_block = edges_per_block

    def run(self, plan: Plan) -> WorkflowResult:
        unified = self.unified
        n = unified.n_vertices
        m = unified.n_union_edges
        needs_deletion = any(isinstance(s, DeleteEdges) for s in plan.steps)

        collector = TraceCollector(
            m, self.record_touched_edges, n_vertices=n
        )
        engine = MultiVersionEngine(
            self.algorithm,
            unified,
            collector=collector,
            edges_per_block=self.edges_per_block,
            track_parents=needs_deletion,
        )
        repair = DeletionRepair(engine) if needs_deletion else None

        n_states = max(plan.n_states, 1)
        values = np.full(
            (n_states, n), self.algorithm.identity, dtype=np.float64
        )
        presence = np.zeros((n_states, m), dtype=bool)
        initial_mask = (
            unified.common_mask
            if plan.initial_graph == "common"
            else unified.presence_mask(0)
        )

        result = WorkflowResult(plan.name, {}, collector)
        for step in plan.steps:
            if isinstance(step, EvalFull):
                presence[step.state] = initial_mask
                parent_row = step.state if needs_deletion else None
                source = (
                    self.scenario.source if step.source is None else step.source
                )
                values[step.state] = engine.evaluate_full(
                    presence[step.state],
                    source,
                    phase="full",
                    tag=step.label,
                    parent_row=parent_row,
                )
            elif isinstance(step, CopyState):
                values[step.dst] = values[step.src]
                presence[step.dst] = presence[step.src]
                if needs_deletion:
                    engine._ensure_parent_rows(step.dst + 1)
                    engine.parent_edge[step.dst] = engine.parent_edge[step.src]
            elif isinstance(step, ApplyEdges):
                self._apply(engine, values, presence, step, needs_deletion)
            elif isinstance(step, DeleteEdges):
                presence[step.state, step.edge_idx] = False
                row = values[step.state]
                stats = repair.apply_deletions(
                    row,
                    step.edge_idx,
                    presence[step.state],
                    self.scenario.source,
                    parent_row=step.state,
                    tag=step.label,
                )
                values[step.state] = row
                result.deletion_stats.append(stats)
            elif isinstance(step, MarkSnapshot):
                result.snapshot_values[step.snapshot] = values[step.state].copy()
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown plan step {step!r}")
        return result

    def _apply(
        self,
        engine: MultiVersionEngine,
        values: np.ndarray,
        presence: np.ndarray,
        step: ApplyEdges,
        needs_deletion: bool,
    ) -> None:
        targets = list(step.targets)
        if len(targets) == 1:
            t = targets[0]
            presence[t, step.edge_idx] = True
            parent_rows = np.array([t]) if needs_deletion else None
            if needs_deletion:
                engine._ensure_parent_rows(t + 1)
            engine.apply_additions(
                values[t][None, :],
                step.edge_idx,
                presence[t][None, :],
                phase="add",
                tag=step.label,
                targets=(t,),
                parent_rows=parent_rows,
            )
            return
        # Multi-target (BOE): stack target rows, run one shared execution,
        # write results back.
        sub_values = values[targets]
        sub_presence = presence[targets]
        sub_presence[:, step.edge_idx] = True
        engine.apply_additions(
            sub_values,
            step.edge_idx,
            sub_presence,
            phase="add",
            tag=step.label,
            targets=tuple(targets),
        )
        values[targets] = sub_values
        presence[targets] = sub_presence
