"""Execution traces emitted by the propagation engines.

The accelerator simulators are *trace-driven*: the functional engines run
the actual graph computation and emit one :class:`RoundTrace` per
asynchronous round (a round = one wave of coalesced events, the unit the
paper plots in Fig. 10).  The timing models then replay the traces against
the modelled hardware (PEs, queues, NoC, caches, DRAM).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RoundTrace", "ExecutionTrace", "TraceCollector"]


@dataclass
class RoundTrace:
    """Aggregate activity of one asynchronous round.

    * ``events_popped`` — coalesced events executed (one per active
      ``(vertex, version)`` pair);
    * ``events_generated`` — outgoing delta messages produced (one per
      traversed ``(edge, version)`` pair);
    * ``edges_fetched`` — *union* edge slots gathered from memory; shared
      across versions, which is exactly BOE's reuse win;
    * ``edge_blocks`` — unique edge-block ids touched (cache-line granular);
    * ``vertex_reads`` / ``vertex_writes`` — value-array accesses;
    * ``n_versions`` — versions sharing this round's edge fetches;
    * ``dst_vertices`` — unique destination vertices touched (used by the
      partitioning model to estimate cross-partition traffic).
    """

    phase: str
    events_popped: int
    events_generated: int
    edges_fetched: int
    edge_blocks: np.ndarray
    vertex_reads: int
    vertex_writes: int
    n_versions: int
    dst_vertices: np.ndarray
    src_vertices: np.ndarray
    #: per-(vertex, version) scalar work, for analyses that need it.  In a
    #: multi-version round the datapath processes one row-wide event per
    #: vertex (the unified value array of §3.2), so the primary counters
    #: above are vertex-granular; these record the un-amortized totals.
    version_events_popped: int = 0
    version_events_generated: int = 0
    version_vertex_writes: int = 0


@dataclass
class ExecutionTrace:
    """All rounds of one logical execution (one batch application or one
    full evaluation), plus which versions it targeted."""

    tag: str
    phase: str
    targets: tuple[int, ...]
    rounds: list[RoundTrace] = field(default_factory=list)
    #: bool mask over union edges fetched at least once (reuse metrics)
    touched_edges: np.ndarray | None = None
    #: unique destination vertices touched across the whole execution —
    #: the coalesced event-queue cells, which bound partition spill traffic
    touched_dst_count: int = 0

    @property
    def events_popped(self) -> int:
        return sum(r.events_popped for r in self.rounds)

    @property
    def events_generated(self) -> int:
        return sum(r.events_generated for r in self.rounds)

    @property
    def edges_fetched(self) -> int:
        return sum(r.edges_fetched for r in self.rounds)

    @property
    def vertex_reads(self) -> int:
        return sum(r.vertex_reads for r in self.rounds)

    @property
    def vertex_writes(self) -> int:
        return sum(r.vertex_writes for r in self.rounds)

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    def events_per_round(self) -> list[int]:
        """The Fig. 10 series: coalesced events processed per round."""
        return [r.events_popped for r in self.rounds]


class TraceCollector:
    """Accumulates execution traces across a whole workflow run.

    ``record_touched_edges`` enables the per-execution union-edge masks
    needed by the reuse studies (Figs. 4/5); it costs one bool array per
    execution, so it is off by default.
    """

    def __init__(
        self,
        n_union_edges: int = 0,
        record_touched_edges: bool = False,
        n_vertices: int = 0,
    ) -> None:
        self.executions: list[ExecutionTrace] = []
        self.n_union_edges = n_union_edges
        self.n_vertices = n_vertices
        self.record_touched_edges = record_touched_edges
        self._current: ExecutionTrace | None = None
        self._dst_mask: np.ndarray | None = None

    def begin(self, tag: str, phase: str, targets: tuple[int, ...]) -> ExecutionTrace:
        if self._current is not None:
            raise RuntimeError("nested executions are not supported")
        touched = (
            np.zeros(self.n_union_edges, dtype=bool)
            if self.record_touched_edges
            else None
        )
        self._current = ExecutionTrace(tag, phase, targets, [], touched)
        if self.n_vertices:
            self._dst_mask = np.zeros(self.n_vertices, dtype=bool)
        return self._current

    def round(self, trace: RoundTrace, edge_idx: np.ndarray | None = None) -> None:
        if self._current is None:
            raise RuntimeError("round recorded outside an execution")
        self._current.rounds.append(trace)
        if self._current.touched_edges is not None and edge_idx is not None:
            self._current.touched_edges[edge_idx] = True
        if self._dst_mask is not None and trace.dst_vertices.size:
            self._dst_mask[trace.dst_vertices] = True

    def end(self) -> ExecutionTrace:
        if self._current is None:
            raise RuntimeError("no execution in progress")
        done, self._current = self._current, None
        if self._dst_mask is not None:
            done.touched_dst_count = int(self._dst_mask.sum())
            self._dst_mask = None
        self.executions.append(done)
        return done

    @property
    def active(self) -> bool:
        return self._current is not None

    # -- aggregates ---------------------------------------------------------

    def total(self, attr: str) -> int:
        return sum(getattr(e, attr) for e in self.executions)

    def by_phase(self, phase: str) -> list[ExecutionTrace]:
        return [e for e in self.executions if e.phase == phase]
