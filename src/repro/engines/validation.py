"""Reference evaluation and workflow validation.

The paper validates MEGA's final results against software baselines
(§5.1 "We validated the final results of MEGA executions against those of
the software baselines").  We go further: every workflow — software or
simulated — is checked against an independent from-scratch evaluation on
every snapshot.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm
from repro.engines.daic import MultiVersionEngine
from repro.engines.executor import WorkflowResult
from repro.evolving.snapshots import EvolvingScenario

__all__ = ["evaluate_reference", "validate_workflow"]


def evaluate_reference(
    scenario: EvolvingScenario, algorithm: Algorithm, snapshot: int
) -> np.ndarray:
    """From-scratch query values on one snapshot (ground truth)."""
    engine = MultiVersionEngine(algorithm, scenario.unified)
    presence = scenario.unified.presence_mask(snapshot)
    return engine.evaluate_full(presence, scenario.source)


def validate_workflow(
    scenario: EvolvingScenario,
    algorithm: Algorithm,
    result: WorkflowResult,
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> None:
    """Assert a workflow's snapshot values match ground truth everywhere."""
    n = scenario.n_snapshots
    missing = set(range(n)) - set(result.snapshot_values)
    if missing:
        raise AssertionError(
            f"workflow {result.plan_name!r} produced no values for "
            f"snapshots {sorted(missing)}"
        )
    for k in range(n):
        expected = evaluate_reference(scenario, algorithm, k)
        got = result.values(k)
        if not np.allclose(got, expected, rtol=rtol, atol=atol, equal_nan=True):
            bad = np.flatnonzero(
                ~np.isclose(got, expected, rtol=rtol, atol=atol, equal_nan=True)
            )
            raise AssertionError(
                f"workflow {result.plan_name!r} wrong on snapshot {k}: "
                f"{bad.size} vertices differ (first: v{bad[0]} "
                f"got {got[bad[0]]}, expected {expected[bad[0]]})"
            )
