"""Software execution engines: DAIC core, deletion repair, plan executor."""

from repro.engines.daic import MultiVersionEngine, group_argbest
from repro.engines.deletion import DeletionRepair, DeletionStats
from repro.engines.executor import PlanExecutor, WorkflowResult
from repro.engines.trace import ExecutionTrace, RoundTrace, TraceCollector
from repro.engines.validation import evaluate_reference, validate_workflow

__all__ = [
    "DeletionRepair",
    "DeletionStats",
    "ExecutionTrace",
    "MultiVersionEngine",
    "PlanExecutor",
    "RoundTrace",
    "TraceCollector",
    "WorkflowResult",
    "evaluate_reference",
    "group_argbest",
    "validate_workflow",
]
