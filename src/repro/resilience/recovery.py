"""Detect-and-recover: validation-driven repair by recomputation from G_c.

The recovery path is the paper's premise turned into a mechanism: because
every snapshot is common graph + addition batches (CommonGraph, ASPLOS'23),
any snapshot whose values are corrupted or lost can be re-derived cheaply —
evaluate once on ``G_c``, then incrementally apply the snapshot's extra
edges.  Detection reuses the existing validation machinery (an independent
from-scratch reference per snapshot); repair never trusts the corrupted
state, only the shared structural record.

Three layers can be repaired this way:

* **snapshot values** — :func:`recompute_snapshot_from_common`;
* **event-level state** — :func:`eventlevel_recompute_from_common` replays
  the per-event datapath from ``G_c``;
* **version-table composition** — :func:`rebuild_version_table` re-derives
  the batch bookkeeping from the immutable plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accel.eventsim import EventLevelSimulator
from repro.accel.version_table import BatchStatus, VersionTable
from repro.algorithms.base import Algorithm
from repro.engines.executor import PlanExecutor, WorkflowResult
from repro.engines.validation import evaluate_reference
from repro.evolving.batches import BatchId
from repro.evolving.snapshots import EvolvingScenario
from repro.resilience.budget import Budget
from repro.schedule.plan import (
    ApplyEdges,
    CopyState,
    DeleteEdges,
    EvalFull,
    MarkSnapshot,
    Plan,
)

__all__ = [
    "RecoveryReport",
    "SnapshotRepair",
    "detect_and_recover",
    "eventlevel_recompute_from_common",
    "expected_state_batches",
    "rebuild_version_table",
    "recompute_snapshot_from_common",
    "verify_version_table",
]


def recompute_snapshot_from_common(
    scenario: EvolvingScenario,
    algorithm: Algorithm,
    snapshot: int,
    budget: Budget | None = None,
) -> np.ndarray:
    """Re-derive one snapshot's values from the common graph.

    Runs a minimal two-step plan — full evaluation on ``G_c``, then one
    incremental application of the snapshot's extra edges (every snapshot
    is a superset of the common graph, so the delta is additions only).
    Must run *outside* any active fault-injection context.
    """
    u = scenario.unified
    extra = np.flatnonzero(u.presence_mask(snapshot) & ~u.common_mask)
    plan = Plan(
        name=f"recover-G{snapshot}", n_states=1, initial_graph="common"
    )
    plan.steps.append(EvalFull(0, label="recover-eval-Gc"))
    if extra.size:
        plan.steps.append(ApplyEdges((0,), extra, label="recover-apply"))
    plan.steps.append(MarkSnapshot(0, snapshot))
    result = PlanExecutor(scenario, algorithm, budget=budget).run(plan)
    return result.snapshot_values[snapshot]


def eventlevel_recompute_from_common(
    algorithm: Algorithm,
    unified,
    snapshot: int,
    source: int,
    budget: Budget | None = None,
) -> np.ndarray:
    """Event-granular recovery: replay the datapath from ``G_c``.

    A fresh :class:`EventLevelSimulator` converges on the common graph,
    then the batch reader seeds the snapshot's extra edges and the queue
    drains again — the per-event analogue of the plan-level recovery.
    """
    sim = EventLevelSimulator(algorithm, unified)
    sim.set_graph(0, unified.common_mask.copy())
    sim.set_source(source)
    sim.run(budget=budget)
    extra = np.flatnonzero(
        unified.presence_mask(snapshot) & ~unified.common_mask
    )
    if extra.size:
        sim.seed_batch(extra, versions=[0])
        sim.run(budget=budget)
    return sim.values[0].copy()


# -- version-table integrity ---------------------------------------------------


def expected_state_batches(plan: Plan) -> dict[int, set[BatchId]]:
    """Replay a plan structurally: which batches land in each state."""
    comp: dict[int, set[BatchId]] = {s: set() for s in range(plan.n_states)}
    for step in plan.steps:
        if isinstance(step, CopyState):
            comp[step.dst] = set(comp[step.src])
        elif isinstance(step, ApplyEdges):
            for t in step.targets:
                comp[t].update(step.batches)
        elif isinstance(step, DeleteEdges):
            comp[step.state].update(step.batches)
    return comp


def verify_version_table(plan: Plan, table: VersionTable | None) -> list[int]:
    """States whose recorded composition disagrees with the plan."""
    if table is None:
        return []
    expected = expected_state_batches(plan)
    return [
        s
        for s in range(min(plan.n_states, table.n_snapshots))
        if table.composition(s) != expected[s]
    ]


def rebuild_version_table(plan: Plan) -> VersionTable:
    """Re-derive the version table from the plan alone (the shared,
    immutable record) — recovery for corrupted composition entries."""
    table = VersionTable(max(plan.n_states, 1))
    for entry in table.entries:
        table.peel(entry.snapshot)
    for state, batches in expected_state_batches(plan).items():
        table.entries[state].applied = set(batches)
    for step in plan.steps:
        for b in getattr(step, "batches", ()):
            table.batch_status[b] = BatchStatus.COMPLETE
    for entry in table.entries:
        table.mark_complete(entry.snapshot)
    return table


# -- the combined detect-and-recover pass -------------------------------------


@dataclass
class SnapshotRepair:
    """One corrupted snapshot and the outcome of its recomputation."""

    snapshot: int
    corrupted_vertices: int
    recovered: bool


@dataclass
class RecoveryReport:
    """What a detect-and-recover pass found and fixed."""

    plan_name: str
    repairs: list[SnapshotRepair] = field(default_factory=list)
    table_corrupt_states: list[int] = field(default_factory=list)
    table_rebuilt: bool = False

    @property
    def corrupted_snapshots(self) -> list[int]:
        return [r.snapshot for r in self.repairs]

    @property
    def detected(self) -> bool:
        return bool(self.repairs) or bool(self.table_corrupt_states)

    @property
    def ok(self) -> bool:
        """Everything detected was also repaired."""
        values_ok = all(r.recovered for r in self.repairs)
        table_ok = not self.table_corrupt_states or self.table_rebuilt
        return values_ok and table_ok


def detect_and_recover(
    scenario: EvolvingScenario,
    algorithm: Algorithm,
    result: WorkflowResult,
    plan: Plan | None = None,
    rtol: float = 1e-9,
    atol: float = 1e-12,
    budget: Budget | None = None,
) -> RecoveryReport:
    """Validate a workflow result and repair what validation rejects.

    Detection is the existing validation machinery — an independent
    from-scratch reference per snapshot.  Every rejected snapshot is
    recomputed from the common graph (in place, in ``result``) and
    re-checked.  With ``plan`` given, the version table's composition is
    cross-checked too and rebuilt from the plan on mismatch.
    """
    report = RecoveryReport(result.plan_name)
    for k in sorted(result.snapshot_values):
        expected = evaluate_reference(scenario, algorithm, k)
        got = result.values(k)
        close = np.isclose(got, expected, rtol=rtol, atol=atol, equal_nan=True)
        if close.all():
            continue
        repaired = recompute_snapshot_from_common(
            scenario, algorithm, k, budget=budget
        )
        ok = bool(
            np.allclose(repaired, expected, rtol=rtol, atol=atol, equal_nan=True)
        )
        result.snapshot_values[k] = repaired
        report.repairs.append(
            SnapshotRepair(k, int((~close).sum()), ok)
        )
    if plan is not None and result.version_table is not None:
        bad = verify_version_table(plan, result.version_table)
        if bad:
            report.table_corrupt_states = bad
            result.version_table = rebuild_version_table(plan)
            report.table_rebuilt = not verify_version_table(
                plan, result.version_table
            )
    return report
