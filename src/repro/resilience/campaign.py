"""Fault-injection campaigns: inject, detect, recover, summarize.

A campaign arms each registered fault point in turn, runs the workload
with the fault live, and classifies the outcome:

* **detected** — validation (independent reference per snapshot, version
  table cross-check, or a budget watchdog) rejected the corrupted run;
* **recovered** — the rejected state was repaired by recomputing from the
  common graph / the immutable plan, and the repair re-validated;
* **masked** — the fault fired but the datapath absorbed it (e.g. a
  duplicated event coalesced away) and the full-state check confirms the
  output is still exactly right;
* **escaped** — the fault fired, validation passed, and the output is
  wrong.  The acceptance bar for the harness is **zero** escapes.

Trials are seeded and deterministic: the same (scenario, algorithm, seed)
reproduces the same corruptions and the same verdicts.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import Algorithm
from repro.engines.executor import PlanExecutor
from repro.engines.validation import evaluate_reference
from repro.evolving.snapshots import EvolvingScenario
from repro.resilience import faults
from repro.resilience.budget import Budget, BudgetExceeded
from repro.resilience.recovery import (
    detect_and_recover,
    eventlevel_recompute_from_common,
)
from repro.schedule import boe_plan

__all__ = ["CampaignResult", "TrialOutcome", "run_campaign", "run_trial"]

#: fault points exercised on the per-event simulator rather than the
#: plan executor
EVENTSIM_POINTS = ("eventsim.drop-event", "eventsim.duplicate-event")

#: fault points that live in the serving layer (repro.service.pool);
#: their workload is a tiny end-to-end service burst, not the executor
SERVICE_POINTS = ("service.worker-fault", "service.plan-poison")

#: fault points in the durable-ingest path (repro.service.wal / core);
#: their workload is a WAL write-crash-recover cycle on a temp directory
WAL_POINTS = (
    "service.wal-torn-write",
    "service.wal-corrupt-record",
    "service.crash-on-ingest",
)

#: fault points inside the replica tailer (repro.service.replica); their
#: workload is a primary + follower pair replicating over a temp WAL dir
REPLICA_POINTS = ("replica.stale-read", "replica.tail-gap")

#: fault points in the cluster supervisor (repro.service.cluster); their
#: workload is a manually-ticked primary + follower group on an injected
#: clock, so suspicion and election rounds are deterministic
CLUSTER_POINTS = ("cluster.heartbeat-drop", "cluster.split-fence")

#: default watchdog for campaign trials — generous for the workloads the
#: campaign runs, tight enough that a corrupted stream cannot hang it
TRIAL_BUDGET = Budget(max_rounds=200_000, max_events=20_000_000,
                      wall_clock_s=120.0)


@dataclass
class TrialOutcome:
    """Verdict of one armed fault point."""

    point: str
    injected: bool
    detected: bool
    recovered: bool
    masked: bool
    escaped: bool
    elapsed: float
    detail: dict = field(default_factory=dict)

    @property
    def verdict(self) -> str:
        if not self.injected:
            return "not-triggered"
        if self.escaped:
            return "ESCAPED"
        if self.detected:
            return "recovered" if self.recovered else "detected-only"
        return "masked"


@dataclass
class CampaignResult:
    """All trial verdicts plus the aggregate counts."""

    scenario: str
    algorithm: str
    seed: int
    trials: list[TrialOutcome] = field(default_factory=list)

    def count(self, attr: str) -> int:
        return sum(1 for t in self.trials if getattr(t, attr))

    @property
    def injected(self) -> int:
        return self.count("injected")

    @property
    def detected(self) -> int:
        return self.count("detected")

    @property
    def recovered(self) -> int:
        return self.count("recovered")

    @property
    def masked(self) -> int:
        return self.count("masked")

    @property
    def escaped(self) -> int:
        return self.count("escaped")

    def summary_line(self) -> str:
        return (
            f"injected {self.injected}  detected {self.detected}  "
            f"recovered {self.recovered}  masked {self.masked}  "
            f"escaped {self.escaped}"
        )

    def format_table(self) -> str:
        rows = [("fault point", "site", "verdict", "detail")]
        for t in self.trials:
            spec = faults.FAULT_POINTS[t.point]
            detail = ", ".join(
                f"{k}={v}" for k, v in sorted(t.detail.items())
            )
            rows.append((t.point, spec.site, t.verdict, detail))
        widths = [
            max(len(r[i]) for r in rows) for i in range(3)
        ]
        lines = [
            f"== fault campaign: {self.scenario} / {self.algorithm} "
            f"(seed {self.seed}) =="
        ]
        for i, r in enumerate(rows):
            lines.append(
                "  ".join(c.ljust(w) for c, w in zip(r[:3], widths))
                + ("  " + r[3] if r[3] else "")
            )
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        lines.append(self.summary_line())
        return "\n".join(lines)


def _eventsim_trial(
    scenario: EvolvingScenario,
    algorithm: Algorithm,
    plan: faults.FaultPlan,
    budget: Budget,
) -> tuple[bool, bool, dict]:
    """Run the per-event datapath with the fault live on snapshot 0.

    Returns ``(detected, recovered, detail)``.
    """
    from repro.accel.eventsim import EventLevelSimulator

    unified = scenario.unified
    presence = unified.presence_mask(0)
    sim = EventLevelSimulator(algorithm, unified)
    sim.set_graph(0, presence.copy())
    sim.set_source(scenario.source)
    detail: dict = {}
    values = None
    with faults.inject(plan):
        try:
            values = sim.run(budget=budget)[0]
        except BudgetExceeded as exc:
            detail["watchdog"] = exc.resource
    expected = evaluate_reference(scenario, algorithm, 0)
    detected = values is None or not np.allclose(
        values, expected, rtol=1e-9, atol=1e-12, equal_nan=True
    )
    recovered = False
    if detected:
        if values is not None:
            bad = ~np.isclose(
                values, expected, rtol=1e-9, atol=1e-12, equal_nan=True
            )
            detail["corrupted_vertices"] = int(bad.sum())
        repaired = eventlevel_recompute_from_common(
            algorithm, unified, 0, scenario.source, budget=budget
        )
        recovered = bool(
            np.allclose(repaired, expected, rtol=1e-9, atol=1e-12,
                        equal_nan=True)
        )
    return detected, recovered, detail


def _executor_trial(
    scenario: EvolvingScenario,
    algorithm: Algorithm,
    plan: faults.FaultPlan,
    budget: Budget,
) -> tuple[bool, bool, dict]:
    """Run the BOE workflow with the fault live, then detect-and-recover."""
    schedule = boe_plan(scenario.unified)
    detail: dict = {}
    result = None
    with faults.inject(plan):
        try:
            result = PlanExecutor(scenario, algorithm, budget=budget).run(
                schedule
            )
        except BudgetExceeded as exc:
            detail["watchdog"] = exc.resource
    if result is None:
        return True, False, detail
    report = detect_and_recover(
        scenario, algorithm, result, plan=schedule, budget=budget
    )
    if report.corrupted_snapshots:
        detail["corrupted_snapshots"] = report.corrupted_snapshots
    if report.table_corrupt_states:
        detail["table_corrupt_states"] = report.table_corrupt_states
        detail["table_rebuilt"] = report.table_rebuilt
    return report.detected, report.detected and report.ok, detail


def _service_trial(
    point: str, seed: int, budget: Budget
) -> tuple[bool, bool, bool, dict]:
    """Drive a one-worker query-service burst with ``point`` armed.

    The service points fire inside pool workers, so the trial runs the
    real serving path end to end: a transient fault must be recovered by
    the in-worker retry, a poisoned plan must be degraded into singleton
    retries by the coordinator — either way every query must still get
    an ``ok`` response.  Returns ``(injected, detected, recovered,
    detail)``; the injection offset (``skip``) does not apply here — the
    service arms the fault on its first plan.
    """
    from repro.service import QueryRequest, QueryService, ServiceConfig

    config = ServiceConfig(
        scale="tiny",
        n_snapshots=4,
        workers=1,
        inject_fault=(point,),
        fault_seed=seed,
        budget_s=budget.wall_clock_s or 120.0,
    )
    service = QueryService(config)
    handles = [
        service.submit(QueryRequest("PK", "sssp", s)) for s in (1, 2, 3)
    ]
    with service:  # submitted pre-start: one coalesced (armed) plan
        responses = [h.wait(timeout=budget.wall_clock_s or 120.0)
                     for h in handles]
    stats = service.service_stats()
    detail = {
        "faults_recovered": stats["faults_recovered"],
        "plan_retries": stats["retries"],
        "errored": stats["errored"],
    }
    injected = bool(
        stats["faults_recovered"] or stats["retries"] or stats["errored"]
    )
    recovered = injected and all(r is not None and r.ok for r in responses)
    return injected, injected, recovered, detail


def _wal_trial(
    point: str, seed: int, skip: int, budget: Budget
) -> tuple[bool, bool, bool, dict]:
    """Exercise the durable-ingest path with ``point`` armed.

    Each trial is a write → damage → recover cycle on a throwaway WAL
    directory; detection means recovery *noticed* the damage (truncation
    warning, quarantine entry, or surfaced crash) and recovered means no
    acknowledged record was lost and nothing raised out of recovery.
    Returns ``(injected, detected, recovered, detail)``.
    """
    from repro.service.wal import (
        WalWriteError,
        WriteAheadLog,
        recover_wal,
    )

    detail: dict = {}
    with tempfile.TemporaryDirectory(prefix="mega-wal-trial-") as wal_dir:
        if point == "service.crash-on-ingest":
            from repro.service import QueryService, ServiceConfig, SimulatedCrash

            config = ServiceConfig(
                scale="tiny", n_snapshots=4, workers=1,
                wal_dir=wal_dir, inject_fault=(point,), fault_seed=seed,
            )
            service = QueryService(config).start()
            crashed = False
            try:
                try:
                    service.ingest("PK", seed=1)
                except SimulatedCrash:
                    # the record hit the WAL, the ack never went out, and
                    # the in-memory epoch never advanced — worst case
                    crashed = True
                epoch_before_restart = service.epoch("PK")
            finally:
                service.stop(drain=False)
            revived = QueryService(
                ServiceConfig(scale="tiny", n_snapshots=4, workers=1,
                              wal_dir=wal_dir)
            ).start()
            try:
                recovered_epoch = revived.epoch("PK")
            finally:
                revived.stop(drain=False)
            detail = {
                "epoch_at_crash": epoch_before_restart,
                "recovered_epoch": recovered_epoch,
            }
            # the committed-but-unacknowledged delta may legally be
            # replayed; losing it would also be legal, going backwards not
            recovered = crashed and recovered_epoch >= epoch_before_restart
            return crashed, crashed, recovered, detail

        acknowledged = []
        wal = WriteAheadLog(wal_dir, fsync="always")
        plan = faults.FaultPlan([point], seed=seed, skip=skip)
        with faults.inject(plan):
            for k in range(1, 5):
                record = {"op": "ingest", "graph": "PK", "epoch": k,
                          "delta": {"adds": [[0, k, 1.0]], "dels": []}}
                try:
                    wal.append(record)
                    acknowledged.append(record)
                except WalWriteError:
                    # torn write: the writer "died" before acknowledging
                    pass
        wal.close()
        injected = bool(plan.fired)
        for record in plan.fired:
            detail.update(record.detail)
        recovery = recover_wal(wal_dir)
        detail["warnings"] = len(recovery.warnings)
        detail["quarantined"] = recovery.quarantined
        detected = injected and not recovery.clean
        # zero acknowledged loss is required for torn writes (the torn
        # record was never acknowledged); a corrupted record *was*
        # acknowledged, so recovery must surface exactly that one as
        # quarantined and keep every other acknowledged record
        survivors = [r for r in acknowledged if r in recovery.records]
        if point == "service.wal-torn-write":
            recovered = detected and survivors == acknowledged
        else:
            lost = len(acknowledged) - len(survivors)
            recovered = detected and lost == recovery.quarantined
    return injected, detected, recovered, detail


def _replica_trial(
    point: str, seed: int, skip: int, budget: Budget
) -> tuple[bool, bool, bool, dict]:
    """Drive a primary -> follower replication loop with ``point`` armed.

    A real :class:`~repro.service.replica.ReplicaServer` tails a live
    primary's WAL with the fault plan wired into its poller; the trial
    steps ``poll_once()`` by hand so the injection point is
    deterministic.  A stale read must surface as nonzero replication lag
    before the replica converges; a dropped tail record must trip gap
    detection and force a snapshot re-sync.  Either way the replica must
    end the trial exactly caught up with the primary.  Returns
    ``(injected, detected, recovered, detail)``.
    """
    from repro.service import QueryService, ServiceConfig
    from repro.service.replica import ReplicaServer

    detail: dict = {}
    plan = faults.FaultPlan([point], seed=seed, skip=skip)
    with tempfile.TemporaryDirectory(prefix="mega-replica-trial-") as root:
        wal_dir = f"{root}/wal"
        primary = QueryService(ServiceConfig(
            scale="tiny", n_snapshots=4, workers=1, wal_dir=wal_dir,
        )).start()
        replica = ReplicaServer(
            wal_dir,
            ServiceConfig(scale="tiny", n_snapshots=4, workers=1),
            follower_id="trial-follower",
            fault_hook=plan.maybe_fire,
        )
        detected = False
        try:
            primary.ingest("PK", seed=1)
            replica.start(tail_thread=False)  # initial sync lands epoch 1
            for k in range(2, 2 + max(4, skip + 2)):
                primary.ingest("PK", seed=k)
                replica.poll_once()
                if plan.fired and not detected:
                    # damage is *detected* when it is observable: lag on a
                    # withheld batch, or the forced re-sync after a gap
                    lag = replica.lag_epochs()
                    detected = lag > 0 or replica.resyncs > 1
                    detail["lag_after_fire"] = lag
            # a dropped record needs a successor to trip gap detection;
            # one extra epoch plus drain polls must converge the replica
            primary.ingest("PK", seed=99)
            for _ in range(4):
                replica.poll_once()
            final_lag = replica.lag_epochs()
            detail.update(
                resyncs=replica.resyncs,
                final_lag_epochs=final_lag,
                primary_epoch=primary.epoch("PK"),
                replica_epoch=replica.service.epoch("PK"),
            )
            for record in plan.fired:
                detail.update(record.detail)
            injected = bool(plan.fired)
            recovered = (
                injected and detected and final_lag == 0
                and replica.service.epoch("PK") == primary.epoch("PK")
            )
        finally:
            replica.stop(drain=False)
            primary.stop(drain=False)
    return injected, detected, recovered, detail


def _cluster_trial(
    point: str, seed: int, skip: int, budget: Budget
) -> tuple[bool, bool, bool, dict]:
    """Drive a manually-ticked two-node cluster with ``point`` armed.

    Both members run on a :class:`ManualClock`, so every suspicion value
    and election round is deterministic.  ``cluster.heartbeat-drop``
    eats one primary beacon: the follower's phi must *spike* (detected)
    and the hysteresis must absorb the blip once beacons resume — no
    election, suspicion back down (recovered).  ``cluster.split-fence``
    kills the primary (it simply stops beating) and injects a rival
    fence claim just before the elector's CAS: the elector must lose
    cleanly (detected) and win the *next* token after its election
    grace, promoting with every applied epoch intact (recovered).
    Returns ``(injected, detected, recovered, detail)``.
    """
    from repro.service import QueryService, ServiceConfig
    from repro.service.cluster import ClusterNode, ManualClock
    from repro.service.replica import ReplicaServer

    detail: dict = {}
    interval = 0.1
    clk = ManualClock()
    plan = faults.FaultPlan([point], seed=seed, skip=skip)
    with tempfile.TemporaryDirectory(prefix="mega-cluster-trial-") as root:
        wal_dir = f"{root}/wal"
        primary = QueryService(ServiceConfig(
            scale="tiny", n_snapshots=4, workers=1, wal_dir=wal_dir,
        )).start()
        replica = ReplicaServer(
            wal_dir,
            ServiceConfig(scale="tiny", n_snapshots=4, workers=1),
            follower_id="trial-follower",
        )
        drop = point == "cluster.heartbeat-drop"
        pnode = ClusterNode(
            wal_dir, "trial-primary",
            service=primary,
            cluster_size=2,
            heartbeat_interval_s=interval,
            clock=clk.now,
        )
        fnode = ClusterNode(
            wal_dir, "trial-follower",
            replica=replica,
            cluster_size=2,
            heartbeat_interval_s=interval,
            fault_hook=None if drop else plan.maybe_fire,
            clock=clk.now,
        )
        detected = recovered = False
        try:
            primary.ingest("PK", seed=1)
            primary.ingest("PK", seed=2)
            replica.start(tail_thread=False)
            # priming rounds: the follower's EWMA learns the cadence and
            # both sides see each other's beacons
            for _ in range(6):
                pnode.tick()
                clk.advance(interval)
                fnode.tick()
                replica.poll_once()
            if drop:
                # arm only after priming: the drop must land on a beat
                # the follower's learned cadence actually expects
                pnode._fault_hook = plan.maybe_fire
                injected, detected, recovered = _heartbeat_drop_rounds(
                    plan, pnode, fnode, clk, interval, skip, detail
                )
                detail["primary_role"] = primary.role
            else:
                injected, detected, recovered = _split_fence_rounds(
                    plan, pnode, fnode, clk, interval, detail
                )
                detail["replica_epoch"] = replica.service.epoch("PK")
                detail["primary_epoch"] = primary.epoch("PK")
                recovered = recovered and (
                    replica.service.epoch("PK") == primary.epoch("PK")
                )
            for record in plan.fired:
                detail.update(record.detail)
        finally:
            replica.stop(drain=False)
            primary.stop(drain=False)
    return injected, detected, recovered, detail


def _heartbeat_drop_rounds(
    plan, pnode, fnode, clk, interval: float, skip: int, detail: dict
) -> tuple[bool, bool, bool]:
    """Tick until the drop fires; assert spike-then-hysteresis."""
    for _ in range(skip + 8):
        pnode.tick()
        if plan.fired:
            break
        clk.advance(interval)
        fnode.tick()
    if not plan.fired:
        return False, False, False
    # the eaten beat leaves a two-interval beacon gap: the follower's
    # next observation lands near the end of it and phi must spike
    clk.advance(interval * 1.9)
    fnode.tick()
    spike = fnode.monitor.suspicion("trial-primary")
    detected = spike > 1.5
    # beacons resume; the blip must be absorbed, never escalated
    clk.advance(interval * 0.1)
    for _ in range(6):
        pnode.tick()
        clk.advance(interval)
        fnode.tick()
    calm = fnode.monitor.suspicion("trial-primary")
    detail.update(
        suspicion_spike=round(spike, 3),
        suspicion_after=round(calm, 3),
        elections=fnode.elections,
        heartbeats_dropped=pnode.heartbeats_dropped,
    )
    recovered = (
        detected
        and calm < spike
        and not fnode.monitor.suspects()
        and fnode.elections == 0
        and pnode.role == "primary"
    )
    return True, detected, recovered


def _split_fence_rounds(
    plan, pnode, fnode, clk, interval: float, detail: dict
) -> tuple[bool, bool, bool]:
    """Primary goes dark; the elector must survive a burned CAS round."""
    actions: list[str] = []
    for _ in range(120):
        clk.advance(interval)
        actions.append(fnode.tick())
        if actions[-1] == "promoted":
            break
    detail.update(
        actions={a: actions.count(a) for a in sorted(set(actions))},
        claims_lost=fnode.claims_lost,
        elections=fnode.elections,
        fence_token=fnode.replica.service._fencing_token()
        if fnode.replica is not None else None,
    )
    injected = bool(plan.fired)
    detected = injected and "claim-lost" in actions
    recovered = (
        detected
        and "promoted" in actions
        and fnode.role == "primary"
        and fnode.elections == 1
    )
    return injected, detected, recovered


def run_trial(
    scenario: EvolvingScenario,
    algorithm: Algorithm,
    point: str,
    seed: int = 0,
    skip: int = 0,
    budget: Budget | None = None,
) -> TrialOutcome:
    """Arm one fault point, run the workload, classify the outcome."""
    if point not in faults.FAULT_POINTS:
        raise KeyError(
            f"unknown fault point {point!r}; choose from "
            f"{sorted(faults.FAULT_POINTS)}"
        )
    budget = budget if budget is not None else TRIAL_BUDGET
    if point in WAL_POINTS:
        t0 = time.perf_counter()
        injected, detected, recovered, detail = _wal_trial(
            point, seed, skip, budget
        )
        return TrialOutcome(
            point=point,
            injected=injected,
            detected=detected,
            recovered=recovered,
            masked=False,
            escaped=False,
            elapsed=time.perf_counter() - t0,
            detail=detail,
        )
    if point in CLUSTER_POINTS:
        t0 = time.perf_counter()
        injected, detected, recovered, detail = _cluster_trial(
            point, seed, skip, budget
        )
        return TrialOutcome(
            point=point,
            injected=injected,
            detected=detected,
            recovered=recovered,
            masked=False,
            escaped=False,
            elapsed=time.perf_counter() - t0,
            detail=detail,
        )
    if point in REPLICA_POINTS:
        t0 = time.perf_counter()
        injected, detected, recovered, detail = _replica_trial(
            point, seed, skip, budget
        )
        return TrialOutcome(
            point=point,
            injected=injected,
            detected=detected,
            recovered=recovered,
            masked=False,
            escaped=False,
            elapsed=time.perf_counter() - t0,
            detail=detail,
        )
    if point in SERVICE_POINTS:
        t0 = time.perf_counter()
        injected, detected, recovered, detail = _service_trial(
            point, seed, budget
        )
        return TrialOutcome(
            point=point,
            injected=injected,
            detected=detected,
            recovered=recovered,
            masked=False,
            escaped=False,
            elapsed=time.perf_counter() - t0,
            detail=detail,
        )
    plan = faults.FaultPlan([point], seed=seed, skip=skip)
    t0 = time.perf_counter()
    if point in EVENTSIM_POINTS:
        detected, recovered, detail = _eventsim_trial(
            scenario, algorithm, plan, budget
        )
    else:
        detected, recovered, detail = _executor_trial(
            scenario, algorithm, plan, budget
        )
    elapsed = time.perf_counter() - t0
    injected = bool(plan.fired)
    for record in plan.fired:
        detail.update(record.detail)
    # Detection is a full-state comparison against an independent
    # reference, so "not detected" certifies the output is exactly right:
    # the fault was absorbed, not missed.  An escape would require the
    # validation itself to pass on wrong values.
    masked = injected and not detected
    escaped = False
    return TrialOutcome(
        point=point,
        injected=injected,
        detected=injected and detected,
        recovered=injected and recovered,
        masked=masked,
        escaped=escaped,
        elapsed=elapsed,
        detail=detail,
    )


def run_campaign(
    scenario: EvolvingScenario,
    algorithm: Algorithm,
    points: list[str] | None = None,
    seed: int = 0,
    budget: Budget | None = None,
) -> CampaignResult:
    """One trial per fault point; retries with ``skip=0`` if a late
    injection offset never triggered the site."""
    if points is None:
        # the serving layer registers its points on import (pool, WAL,
        # ingest); pull the package in so a default campaign drills the
        # whole surface
        import repro.service  # noqa: F401

    names = sorted(faults.FAULT_POINTS) if points is None else list(points)
    rng = np.random.default_rng(seed)
    out = CampaignResult(scenario.name, algorithm.name, seed)
    for point in names:
        skip = int(rng.integers(0, 6))
        outcome = run_trial(
            scenario, algorithm, point, seed=seed, skip=skip, budget=budget
        )
        if not outcome.injected and skip:
            outcome = run_trial(
                scenario, algorithm, point, seed=seed, skip=0, budget=budget
            )
        out.trials.append(outcome)
    return out
