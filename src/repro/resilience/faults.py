"""Seeded fault injection for the simulation datapath.

The paper's premise — CommonGraph + BOE make recomputation cheap enough to
re-derive any snapshot from shared state — is exactly the property a
recovery path should exploit, and the way to *prove* it is systematic fault
injection: corrupt the datapath at a named point, check that validation
catches the damage, and repair by recomputing from ``G_c``.

This module provides the registry of named fault points and the seeded
:class:`FaultPlan` that arms them.  Instrumented sites (the event
simulator, the plan executor, the version table) call :func:`maybe_fire`
at each corruption opportunity; when no plan is active the call is a cheap
``None`` check, so production runs pay nothing.

Usage::

    plan = FaultPlan(["eventsim.drop-event"], seed=7)
    with inject(plan):
        sim.run()            # the armed site misbehaves once
    assert plan.fired        # what was corrupted, and where
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = [
    "FAULT_POINTS",
    "FaultPoint",
    "FaultPlan",
    "Fire",
    "FaultRecord",
    "inject",
    "maybe_fire",
    "register_fault_point",
]


@dataclass(frozen=True)
class FaultPoint:
    """A named site in the datapath where a fault can be injected."""

    name: str
    site: str
    description: str


#: registry: fault-point name -> specification
FAULT_POINTS: dict[str, FaultPoint] = {}


def register_fault_point(name: str, site: str, description: str) -> FaultPoint:
    """Register a named fault point (idempotent for identical specs)."""
    point = FaultPoint(name, site, description)
    existing = FAULT_POINTS.get(name)
    if existing is not None and existing != point:
        raise ValueError(f"fault point {name!r} already registered differently")
    FAULT_POINTS[name] = point
    return point


# The canonical fault points of the datapath.  Sites are repo-relative
# module paths under src/repro/.
register_fault_point(
    "eventsim.drop-event",
    "accel/eventsim.py",
    "an inserted event is silently discarded before reaching the queue",
)
register_fault_point(
    "eventsim.duplicate-event",
    "accel/eventsim.py",
    "an inserted event is delivered twice (queue coalescing must absorb it)",
)
register_fault_point(
    "version-table.corrupt-entry",
    "accel/version_table.py",
    "a version-table entry's applied-batch composition is corrupted",
)
register_fault_point(
    "executor.bitflip-value",
    "engines/executor.py",
    "one vertex value suffers a bit flip as a snapshot is marked final",
)
register_fault_point(
    "schedule.truncate-batch",
    "engines/executor.py",
    "an ApplyEdges batch is truncated in delivery (tail edges lost)",
)


@dataclass
class FaultRecord:
    """One fault that actually fired: where, plus site-supplied detail."""

    point: str
    detail: dict = field(default_factory=dict)


class Fire:
    """Handle given to a site when its fault point fires.

    ``rng`` lets the site pick *what* to corrupt deterministically;
    :meth:`note` records what it did for the campaign report.
    """

    def __init__(self, record: FaultRecord, rng: np.random.Generator) -> None:
        self._record = record
        self.rng = rng

    def note(self, **detail) -> None:
        self._record.detail.update(detail)


class FaultPlan:
    """A seeded plan of which fault points fire, and when.

    Each armed point counts its *opportunities* (calls to
    :func:`maybe_fire`); it fires on the ``skip``-th opportunity and then
    at most ``max_fires`` times total.  Everything downstream of the seed
    is deterministic, so a campaign trial is exactly reproducible.
    """

    def __init__(
        self,
        points: list[str] | tuple[str, ...],
        seed: int = 0,
        skip: int = 0,
        max_fires: int = 1,
    ) -> None:
        for p in points:
            if p not in FAULT_POINTS:
                raise KeyError(
                    f"unknown fault point {p!r}; choose from "
                    f"{sorted(FAULT_POINTS)}"
                )
        self.points = tuple(points)
        self.seed = int(seed)
        self.skip = int(skip)
        self.max_fires = int(max_fires)
        self._opportunities: dict[str, int] = {p: 0 for p in self.points}
        self._fires: dict[str, int] = {p: 0 for p in self.points}
        #: faults that actually fired, in order
        self.fired: list[FaultRecord] = []

    def maybe_fire(self, point: str) -> Fire | None:
        if point not in self._opportunities:
            return None
        k = self._opportunities[point]
        self._opportunities[point] = k + 1
        if k < self.skip or self._fires[point] >= self.max_fires:
            return None
        self._fires[point] += 1
        record = FaultRecord(point, {"opportunity": k})
        self.fired.append(record)
        rng = np.random.default_rng((self.seed, hash(point) & 0xFFFF, k))
        return Fire(record, rng)


_ACTIVE: FaultPlan | None = None


def maybe_fire(point: str) -> Fire | None:
    """Site-side hook: does the active plan (if any) fire this point now?"""
    if _ACTIVE is None:
        return None
    return _ACTIVE.maybe_fire(point)


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the duration of the block (non-reentrant)."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a fault plan is already active")
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = None
