"""Checkpoint/resume for experiment sweeps.

``mega-repro run all`` persists every completed
:class:`~repro.experiments.runner.ExperimentResult` as JSON under a run
directory; a restart with ``--resume`` loads the finished ones instead of
recomputing them, so a killed sweep costs only the experiment that was in
flight.  Failures are recorded alongside (exception type, message, elapsed
time) and retried on resume.

Writes are atomic (temp file + rename): a kill mid-write leaves either the
previous state or the complete new file, never a torn checkpoint.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import time

__all__ = ["RunCheckpoint", "atomic_write"]

_SAFE = re.compile(r"[^A-Za-z0-9._-]")


def atomic_write(path: pathlib.Path, text: str) -> None:
    """Write whole-or-nothing: a kill mid-write leaves the previous state.

    Shared by the sweep checkpoints below and the WAL's compaction
    snapshots (:mod:`repro.service.wal`).
    """
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


#: backwards-compatible alias (pre-WAL name)
_atomic_write = atomic_write


class RunCheckpoint:
    """One sweep's durable state: results, failures, manifest."""

    def __init__(self, run_dir: str | pathlib.Path) -> None:
        self.run_dir = pathlib.Path(run_dir)
        self.results_dir = self.run_dir / "results"
        self.failures_dir = self.run_dir / "failures"
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.failures_dir.mkdir(parents=True, exist_ok=True)

    @staticmethod
    def _safe(name: str) -> str:
        return _SAFE.sub("_", name)

    def result_path(self, name: str) -> pathlib.Path:
        return self.results_dir / f"{self._safe(name)}.json"

    def failure_path(self, name: str) -> pathlib.Path:
        return self.failures_dir / f"{self._safe(name)}.json"

    # -- results ----------------------------------------------------------

    def has_result(self, name: str) -> bool:
        return self.result_path(name).exists()

    def save_result(self, name: str, result) -> pathlib.Path:
        path = self.result_path(name)
        _atomic_write(path, result.to_json())
        self.clear_failure(name)
        return path

    def load_result(self, name: str):
        from repro.experiments.runner import ExperimentResult

        return ExperimentResult.from_json(self.result_path(name).read_text())

    def completed(self) -> list[str]:
        return sorted(p.stem for p in self.results_dir.glob("*.json"))

    # -- failures ---------------------------------------------------------

    def record_failure(
        self,
        name: str,
        error: BaseException,
        elapsed: float,
        fault_point: str | None = None,
    ) -> pathlib.Path:
        payload = {
            "experiment": name,
            "error_type": type(error).__name__,
            "message": str(error),
            "elapsed_s": round(float(elapsed), 3),
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        }
        if fault_point is not None:
            payload["fault_point"] = fault_point
        path = self.failure_path(name)
        _atomic_write(path, json.dumps(payload, indent=2))
        return path

    def clear_failure(self, name: str) -> None:
        path = self.failure_path(name)
        if path.exists():
            path.unlink()

    def failures(self) -> dict[str, dict]:
        out = {}
        for p in sorted(self.failures_dir.glob("*.json")):
            out[p.stem] = json.loads(p.read_text())
        return out

    # -- manifest / summary ----------------------------------------------

    def write_manifest(self, **fields) -> pathlib.Path:
        path = self.run_dir / "manifest.json"
        _atomic_write(path, json.dumps(fields, indent=2, default=str))
        return path

    def manifest(self) -> dict:
        path = self.run_dir / "manifest.json"
        return json.loads(path.read_text()) if path.exists() else {}

    def write_summary(self, statuses: dict[str, str]) -> pathlib.Path:
        """Persist the sweep verdict: experiment -> ok/failed/restored."""
        path = self.run_dir / "summary.json"
        _atomic_write(
            path,
            json.dumps(
                {
                    "statuses": statuses,
                    "n_ok": sum(
                        1 for s in statuses.values() if s in ("ok", "restored")
                    ),
                    "n_failed": sum(
                        1 for s in statuses.values() if s == "failed"
                    ),
                },
                indent=2,
            ),
        )
        return path
