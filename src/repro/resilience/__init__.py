"""Resilience layer: fault injection, budgets, checkpoint/resume, recovery.

The subsystem has four pieces (docs/RESILIENCE.md):

* :mod:`repro.resilience.faults` — a registry of named fault points in the
  datapath plus the seeded :class:`FaultPlan` that arms them;
* :mod:`repro.resilience.budget` — execution budgets and watchdogs
  (:class:`BudgetExceeded` instead of a hang) and the
  :class:`TransientError`/:class:`FatalError` retry taxonomy;
* :mod:`repro.resilience.checkpoint` — durable per-experiment results for
  ``mega-repro run all --resume``;
* :mod:`repro.resilience.recovery` / :mod:`repro.resilience.campaign` —
  the detect-and-recover path (recompute from ``G_c``) and the fault
  campaign that proves it (``mega-repro faults``).

Only the leaf modules (``budget``, ``faults``, ``checkpoint``) are
imported eagerly — the instrumented sites in ``engines``/``accel`` import
this package, so the heavier modules resolve lazily to keep the import
graph acyclic.
"""

from repro.resilience.budget import (
    Budget,
    BudgetClock,
    BudgetExceeded,
    FatalError,
    TransientError,
    retry_with_backoff,
)
from repro.resilience.checkpoint import RunCheckpoint
from repro.resilience.faults import (
    FAULT_POINTS,
    FaultPlan,
    FaultPoint,
    inject,
    maybe_fire,
    register_fault_point,
)

__all__ = [
    "Budget",
    "BudgetClock",
    "BudgetExceeded",
    "CampaignResult",
    "FAULT_POINTS",
    "FatalError",
    "FaultPlan",
    "FaultPoint",
    "RecoveryReport",
    "RunCheckpoint",
    "TransientError",
    "TrialOutcome",
    "detect_and_recover",
    "eventlevel_recompute_from_common",
    "inject",
    "maybe_fire",
    "rebuild_version_table",
    "recompute_snapshot_from_common",
    "register_fault_point",
    "retry_with_backoff",
    "run_campaign",
    "run_trial",
    "verify_version_table",
]

#: symbols resolved on first access (their modules import the engines and
#: accelerator packages, which themselves import this package)
_LAZY = {
    "CampaignResult": "campaign",
    "TrialOutcome": "campaign",
    "run_campaign": "campaign",
    "run_trial": "campaign",
    "RecoveryReport": "recovery",
    "detect_and_recover": "recovery",
    "eventlevel_recompute_from_common": "recovery",
    "rebuild_version_table": "recovery",
    "recompute_snapshot_from_common": "recovery",
    "verify_version_table": "recovery",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(f"repro.resilience.{_LAZY[name]}")
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
