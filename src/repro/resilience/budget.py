"""Execution budgets, watchdogs, and the retry taxonomy.

The simulators are exact fixpoint computations: on a well-formed monotone
workload they terminate, but a corrupted or adversarial event stream (e.g.
a negative cycle handed to SSSP) improves values forever and the run spins
unboundedly.  A :class:`Budget` bounds a run along three axes — rounds,
events, wall-clock — and a breach raises :class:`BudgetExceeded` carrying
the partial statistics gathered so far, so callers get a structured
diagnosis instead of a hang.

The retry taxonomy separates :class:`TransientError` (environment hiccups:
worth retrying with backoff) from :class:`FatalError` (deterministic
failures: retrying reproduces them).  :func:`retry_with_backoff` implements
the policy used by the experiment runner.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

__all__ = [
    "Budget",
    "BudgetClock",
    "BudgetExceeded",
    "FatalError",
    "TransientError",
    "retry_with_backoff",
]

T = TypeVar("T")


class TransientError(RuntimeError):
    """A failure caused by the environment; a retry may succeed."""


class FatalError(RuntimeError):
    """A deterministic failure; retrying would reproduce it."""


class BudgetExceeded(RuntimeError):
    """A bounded computation hit one of its limits before converging.

    Subclasses :class:`RuntimeError` so legacy callers that guarded the old
    ``max_rounds`` overflow keep working.  ``stats`` carries whatever
    partial counters the breached computation had accumulated.
    """

    def __init__(
        self,
        message: str,
        *,
        resource: str,
        limit: float,
        spent: float,
        stats: object | None = None,
    ) -> None:
        super().__init__(message)
        self.resource = resource
        self.limit = limit
        self.spent = spent
        self.stats = stats


@dataclass(frozen=True)
class Budget:
    """Caps for one bounded computation; ``None`` disables an axis."""

    max_rounds: int | None = None
    max_events: int | None = None
    wall_clock_s: float | None = None

    def start(self, clock: Callable[[], float] = time.monotonic) -> "BudgetClock":
        """Begin metering against this budget (starts the deadline)."""
        return BudgetClock(self, clock)


class BudgetClock:
    """Running meter for one :class:`Budget`.

    Call :meth:`charge` as work happens; it raises :class:`BudgetExceeded`
    the moment any axis goes over, attaching the caller's partial stats.
    """

    def __init__(self, budget: Budget, clock: Callable[[], float]) -> None:
        self.budget = budget
        self._clock = clock
        self._t0 = clock()
        self.rounds = 0
        self.events = 0

    def elapsed(self) -> float:
        return self._clock() - self._t0

    def charge(
        self, *, rounds: int = 0, events: int = 0, stats: object | None = None
    ) -> None:
        self.rounds += rounds
        self.events += events
        b = self.budget
        if b.max_rounds is not None and self.rounds > b.max_rounds:
            raise BudgetExceeded(
                f"round budget exceeded: {self.rounds} > {b.max_rounds} "
                "(computation did not converge)",
                resource="rounds",
                limit=b.max_rounds,
                spent=self.rounds,
                stats=stats,
            )
        if b.max_events is not None and self.events > b.max_events:
            raise BudgetExceeded(
                f"event budget exceeded: {self.events} > {b.max_events}",
                resource="events",
                limit=b.max_events,
                spent=self.events,
                stats=stats,
            )
        if b.wall_clock_s is not None:
            elapsed = self.elapsed()
            if elapsed > b.wall_clock_s:
                raise BudgetExceeded(
                    f"wall-clock deadline exceeded: "
                    f"{elapsed:.3f}s > {b.wall_clock_s:.3f}s",
                    resource="wall_clock",
                    limit=b.wall_clock_s,
                    spent=elapsed,
                    stats=stats,
                )


def retry_with_backoff(
    fn: Callable[[], T],
    *,
    retries: int = 2,
    base_delay: float = 0.1,
    factor: float = 2.0,
    transient: tuple[type[BaseException], ...] = (
        TransientError,
        OSError,
        TimeoutError,
    ),
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn``, retrying transient failures with exponential backoff.

    ``retries`` is the number of *additional* attempts after the first.
    :class:`FatalError` and :class:`BudgetExceeded` (and anything else not
    listed in ``transient``) propagate immediately — they are deterministic
    and a retry would only burn time reproducing them.
    """
    delay = base_delay
    for attempt in range(retries + 1):
        try:
            return fn()
        except (FatalError, BudgetExceeded):
            raise
        except transient:
            if attempt == retries:
                raise
            sleep(delay)
            delay *= factor
    raise AssertionError("unreachable")  # pragma: no cover
