"""Fig. 3 — number of applied additions per workflow (SSSP scenario).

Direct-Hop applies ~``N/2`` times the edges streaming does (8x at 16
snapshots); Work-Sharing lands around twice streaming.  The counts are
structural properties of the schedules (the paper plots them for SSSP, but
they do not depend on the algorithm).
"""

from __future__ import annotations

from repro.experiments.runner import (
    GRAPHS,
    ExperimentResult,
    default_scale,
    scenario_cache,
)
from repro.metrics import applied_edge_counts

__all__ = ["run"]


def run(scale: str | None = None) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "Fig. 3",
        "edges applied per workflow (millions at paper scale; raw here)",
        [
            "graph",
            "direct-hop",
            "work-sharing",
            "streaming",
            "dh/stream",
            "ws/stream",
        ],
    )
    for graph in GRAPHS:
        scenario = scenario_cache(graph, scale)
        counts = applied_edge_counts(scenario)
        result.add(
            graph,
            counts["direct-hop"],
            counts["work-sharing"],
            counts["streaming"],
            counts["direct-hop"] / counts["streaming"],
            counts["work-sharing"] / counts["streaming"],
        )
    result.notes.append(
        "paper: direct hop ~8x streaming (16 snapshots), work sharing ~2x"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run())
