"""Table 5 — power and area of the MEGA components.

An analytical CACTI-7 stand-in (see ``repro.accel.power``), reporting each
component's static/dynamic power and area plus MEGA's overhead over the
JetStream design point (wider events, version table, batch scheduler).
"""

from __future__ import annotations

from repro.accel import PowerAreaModel, mega_config
from repro.experiments.runner import ExperimentResult

__all__ = ["run"]


def run(scale: str | None = None) -> ExperimentResult:
    model = PowerAreaModel(mega_config())
    over = model.overhead_over_jetstream()
    result = ExperimentResult(
        "Table 5",
        "power and area of MEGA components (22nm)",
        [
            "component",
            "static_mW",
            "dynamic_mW",
            "total_mW",
            "area_mm2",
            "power_overhead_%",
            "area_overhead_%",
        ],
    )
    for comp in model.components() + [model.total()]:
        key = comp.name.split()[0]
        p_over, a_over = over.get(key, (0.0, 0.0))
        result.add(
            comp.name,
            comp.static_mw,
            comp.dynamic_mw,
            comp.total_mw,
            comp.area_mm2,
            p_over,
            a_over,
        )
    result.notes.append(
        "paper totals: 9532 mW, 203 mm^2; +6.8% power, +2% area vs JetStream"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run())
