"""Table 4 — JetStream time and MEGA workflow speedups, all graphs/algos.

For each of the six graphs and five algorithms: the JetStream streaming
time for the 16-snapshot window, and the speedup of MEGA running the
Direct-Hop, Work-Sharing, BOE, and BOE+BP workflows over it.
"""

from __future__ import annotations

from repro.experiments.runner import (
    ALGOS,
    GRAPHS,
    ExperimentResult,
    default_scale,
    scenario_cache,
    simulate_all_workflows,
)

__all__ = ["run"]

WORKFLOW_COLUMNS = ("direct-hop", "work-sharing", "boe", "boe+bp")


def run(scale: str | None = None) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "Table 4",
        "JetStream time and MEGA speedups (16 snapshots, 1% batches)",
        ["graph", "algorithm", "jetstream_ms"]
        + [f"{w}_speedup" for w in WORKFLOW_COLUMNS],
    )
    for graph in GRAPHS:
        scenario = scenario_cache(graph, scale)
        for algo_name in ALGOS:
            reports = simulate_all_workflows(scenario, algo_name)
            js = reports["jetstream"]
            result.add(
                graph,
                algo_name,
                js.update_time_ms,
                *[reports[w].speedup_over(js) for w in WORKFLOW_COLUMNS],
            )
    result.notes.append(
        "paper: DH 1.04-2.26x, WS 1.52-2.26x, BOE 3.74-4.95x, "
        "BOE+BP 4.08-5.98x"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run())
