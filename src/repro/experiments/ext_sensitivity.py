"""Extension experiments: compute-vs-bandwidth sensitivity (§5.2 claim).

The paper states: "We configured MEGA with 8 PEs; adding additional PEs
did not improve performance without increasing the memory bandwidth as
well as internal bandwidth of the NoC and event queues."  These sweeps
reproduce that claim quantitatively:

* ``pe_sweep`` — scale only the PE count: BOE runtime barely moves
  (the datapath is bandwidth-bound);
* ``scaled_sweep`` — scale PEs *and* DRAM channels *and* NoC ports *and*
  queue bins together: runtime now improves.
"""

from __future__ import annotations

from dataclasses import replace

from repro.accel import MegaSimulator, mega_config
from repro.algorithms import get_algorithm
from repro.experiments.runner import (
    ExperimentResult,
    default_scale,
    scenario_cache,
)

__all__ = ["run", "PE_COUNTS"]

PE_COUNTS = (4, 8, 16, 32)


def run(
    scale: str | None = None, graph: str = "Wen", algo_name: str = "SSSP"
) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "Ext. PE sweep",
        f"BOE cycles vs PE count, compute-only vs balanced scaling "
        f"({graph}/{algo_name})",
        ["n_pes", "pes_only_cycles", "balanced_cycles"],
    )
    scenario = scenario_cache(graph, scale)
    algo = get_algorithm(algo_name)
    base = mega_config()
    for n_pes in PE_COUNTS:
        pes_only = replace(base, n_pes=n_pes)
        factor = n_pes / base.n_pes
        balanced = replace(
            base,
            n_pes=n_pes,
            dram_channels=max(1, int(base.dram_channels * factor)),
            noc_ports=max(1, int(base.noc_ports * factor)),
            n_queue_bins=max(1, int(base.n_queue_bins * factor)),
        )
        a = MegaSimulator("boe", config=pes_only).run(scenario, algo)
        b = MegaSimulator("boe", config=balanced).run(scenario, algo)
        result.add(n_pes, a.update_cycles, b.update_cycles)
    result.notes.append(
        "paper §5.2: more PEs alone do not help; bandwidth must scale too"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run())
