"""Fig. 10 — events per round: the long tail that batch pipelining fills.

The paper plots, for four algorithms on the Wen graph under JetStream, the
number of live events per asynchronous round: a fast ramp, an early peak,
and a long decaying tail.  We reproduce the series from the JetStream run's
largest execution (the paper's run covers an entire query evaluation).
"""

from __future__ import annotations

from repro.experiments.runner import (
    ExperimentResult,
    default_scale,
    scenario_cache,
    simulate_all_workflows,
)

__all__ = ["run", "FIG10_ALGOS"]

FIG10_ALGOS = ("SSWP", "SSSP", "SSNP", "BFS")


def run(scale: str | None = None, graph: str = "Wen") -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "Fig. 10",
        f"events per round ({graph} graph, JetStream)",
        ["algorithm", "round", "events"],
    )
    scenario = scenario_cache(graph, scale)
    for algo_name in FIG10_ALGOS:
        reports = simulate_all_workflows(scenario, algo_name)
        # the initial query evaluation: a full run of the event engine,
        # matching the paper's per-round trace of one execution
        series = reports["jetstream"].round_series[0]
        for i, events in enumerate(series):
            result.add(algo_name, i, events)
    result.notes.append(
        "paper: events ramp to an early peak then decay through a long tail"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run())
