"""One-shot reproduction summary: the EXPERIMENTS.md table, regenerated.

Runs the key experiments and condenses each to its headline comparison —
useful as a single command (``mega-repro run summary``) to sanity-check a
fresh checkout against the paper.
"""

from __future__ import annotations

import statistics

import numpy as np

from repro.experiments import fig02_deletion_cost, fig03_additions
from repro.experiments import fig04_fig05_reuse, fig14_software
from repro.experiments import table4_speedups, table5_power
from repro.experiments.runner import ExperimentResult, default_scale

__all__ = ["run"]


def _gmean(values: list[float]) -> float:
    return float(np.exp(np.mean(np.log(np.maximum(values, 1e-12)))))


#: (metric, acceptance predicate over the measured value)
_BANDS = {
    "median del/add cost": lambda v: v > 2.0,
    "DH / streaming ops": lambda v: 6.0 <= v <= 10.0,
    "WS / streaming ops": lambda v: 1.5 <= v <= 3.5,
    "same-snapshot reuse": lambda v: v < 0.1,
    "cross-snapshot reuse": lambda v: v > 0.9,
    "direct-hop gmean": lambda v: 0.7 <= v <= 2.5,
    "work-sharing gmean": lambda v: 1.5 <= v <= 4.0,
    "boe gmean": lambda v: 3.0 <= v <= 7.0,
    "boe+bp gmean": lambda v: 3.5 <= v <= 8.0,
    "vs kickstarter-ws": lambda v: 25 <= v <= 90,
    "vs risgraph-ws": lambda v: 15 <= v <= 55,
    "vs risgraph-boe": lambda v: 8 <= v <= 30,
    "vs subway-ws": lambda v: 6 <= v <= 25,
    "total power (mW)": lambda v: abs(v - 9532) / 9532 < 0.05,
    "total area (mm^2)": lambda v: abs(v - 203) / 203 < 0.05,
}


def run(scale: str | None = None) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "Summary",
        f"headline reproduction numbers at scale={scale}",
        ["experiment", "metric", "paper", "measured", "in_band"],
    )

    def emit(experiment, metric, paper, measured):
        check = _BANDS.get(metric)
        in_band = "-" if check is None else ("yes" if check(measured) else "NO")
        result.add(experiment, metric, paper, measured, in_band)

    fig2 = fig02_deletion_cost.run(scale)
    emit(
        "Fig. 2", "median del/add cost", "several x",
        round(statistics.median(fig2.column("del/add")), 2),
    )

    fig3 = fig03_additions.run(scale)
    emit(
        "Fig. 3", "DH / streaming ops", "~8x (16 snaps)",
        round(statistics.mean(fig3.column("dh/stream")), 2),
    )
    emit(
        "Fig. 3", "WS / streaming ops", "~2x",
        round(statistics.mean(fig3.column("ws/stream")), 2),
    )

    fig4 = fig04_fig05_reuse.run_fig04(scale)
    fig5 = fig04_fig05_reuse.run_fig05(scale)
    emit(
        "Fig. 4", "same-snapshot reuse", "<= ~0.06",
        round(statistics.mean(fig4.column("reused_fraction")), 3),
    )
    emit(
        "Fig. 5", "cross-snapshot reuse", "~0.98",
        round(statistics.mean(fig5.column("reused_fraction")), 3),
    )

    t4 = table4_speedups.run(scale)
    for col, paper in [
        ("direct-hop_speedup", "1.04-2.26x"),
        ("work-sharing_speedup", "1.52-2.26x"),
        ("boe_speedup", "3.74-4.95x"),
        ("boe+bp_speedup", "4.08-5.98x"),
    ]:
        emit(
            "Table 4", col.replace("_speedup", " gmean"), paper,
            round(_gmean(t4.column(col)), 2),
        )

    f14 = fig14_software.run(scale)
    gmean_row = f14.rows[-1]
    for name, paper in zip(
        f14.headers[2:], ("51.2x", "29.1x", "15.9x", "12.3x")
    ):
        idx = f14.headers.index(name)
        emit("Fig. 14", f"vs {name}", paper, round(gmean_row[idx], 1))

    t5 = table5_power.run()
    total = t5.rows[-1]
    emit("Table 5", "total power (mW)", 9532, round(total[3], 0))
    emit("Table 5", "total area (mm^2)", 203, round(total[4], 1))
    result.notes.append("full per-configuration tables: benchmarks/results/")
    if scale != "small":
        result.notes.append(
            f"bands are calibrated at scale=small; at scale={scale} the "
            "speedup ratios compress (tiny proxies) or stretch (medium) — "
            "see EXPERIMENTS.md"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run())
