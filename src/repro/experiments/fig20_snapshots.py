"""Fig. 20 — sensitivity to the number of snapshots (Wen graph, SSWP).

The paper varies the snapshot count within a fixed change window — more
snapshots mean smaller batches (8 snapshots at 0.9% down to 24 at 0.1%).
MEGA's BOE wins below ~20 snapshots; at 24 the partitioning overhead of
keeping many concurrent versions resident erodes its advantage.
"""

from __future__ import annotations

from repro.experiments.runner import (
    ExperimentResult,
    default_scale,
    scenario_cache,
    simulate_all_workflows,
)

__all__ = ["run", "SNAPSHOT_POINTS"]

#: (snapshots, batch percent) pairs from the paper's x-axis
SNAPSHOT_POINTS = ((8, 0.009), (12, 0.007), (16, 0.005), (20, 0.003), (24, 0.001))
WORKFLOWS = ("direct-hop", "work-sharing", "boe")


def run(
    scale: str | None = None, graph: str = "Wen", algo_name: str = "SSWP"
) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "Fig. 20",
        f"speedup vs JetStream by snapshot count ({graph}/{algo_name})",
        ["snapshots", "batch_pct"] + list(WORKFLOWS) + ["boe_partitions"],
    )
    for n_snapshots, pct in SNAPSHOT_POINTS:
        scenario = scenario_cache(
            graph, scale, n_snapshots=n_snapshots, batch_pct=pct
        )
        reports = simulate_all_workflows(scenario, algo_name)
        js = reports["jetstream"]
        result.add(
            n_snapshots,
            pct * 100,
            *[reports[w].speedup_over(js) for w in WORKFLOWS],
            reports["boe"].n_partitions,
        )
    result.notes.append(
        "paper: BOE ahead below 20 snapshots; partitioning overhead bites "
        "at 24"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run())
