"""Fig. 14 — MEGA (BOE+BP) speedup over software/GPU CommonGraph systems.

KickStarter (Work-Sharing), RisGraph (Work-Sharing and software BOE) and
Subway on a K80 GPU (Work-Sharing), modelled per DESIGN.md's substitution
table.  The per-graph/algorithm variation is emergent from real event
counts; the platform constants are calibrated to the paper's geomeans.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import get_algorithm
from repro.baselines import run_baseline
from repro.experiments.runner import (
    ALGOS,
    GRAPHS,
    ExperimentResult,
    default_scale,
    scenario_cache,
    simulate_all_workflows,
)

__all__ = ["run", "BASELINE_ORDER"]

BASELINE_ORDER = ("kickstarter-ws", "risgraph-ws", "risgraph-boe", "subway-ws")


def run(scale: str | None = None) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "Fig. 14",
        "MEGA (BOE+BP) speedup over software CommonGraph systems",
        ["graph", "algorithm"] + list(BASELINE_ORDER),
    )
    speedups: dict[str, list[float]] = {b: [] for b in BASELINE_ORDER}
    for graph in GRAPHS:
        scenario = scenario_cache(graph, scale)
        for algo_name in ALGOS:
            algo = get_algorithm(algo_name)
            mega = simulate_all_workflows(scenario, algo_name)["boe+bp"]
            mega_ms = mega.update_cycles / 1e6
            row = [graph, algo_name]
            for name in BASELINE_ORDER:
                baseline = run_baseline(scenario, algo, name)
                s = baseline.update_time_ms / mega_ms
                speedups[name].append(s)
                row.append(s)
            result.add(*row)
    gmeans = [
        float(np.exp(np.mean(np.log(np.maximum(speedups[b], 1e-12)))))
        for b in BASELINE_ORDER
    ]
    result.add("GMean", "-", *gmeans)
    result.notes.append(
        "paper geomeans: KickStarter(WS) 51.2x, RisGraph(WS) 29.1x, "
        "RisGraph(BOE) 15.9x, Subway(WS) 12.3x"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run())
