"""Fig. 19 — sensitivity to batch size (Wen graph, SSWP).

Batches from 0.1% to 1% of the edges: MEGA outperforms across the range,
with the advantage growing for larger batches.
"""

from __future__ import annotations

from repro.experiments.runner import (
    ExperimentResult,
    default_scale,
    scenario_cache,
    simulate_all_workflows,
)

__all__ = ["run", "BATCH_PCTS"]

BATCH_PCTS = (0.001, 0.002, 0.005, 0.008, 0.01)
WORKFLOWS = ("direct-hop", "work-sharing", "boe")


def run(
    scale: str | None = None, graph: str = "Wen", algo_name: str = "SSWP"
) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "Fig. 19",
        f"speedup vs JetStream by batch size ({graph}/{algo_name})",
        ["batch_pct"] + list(WORKFLOWS),
    )
    for pct in BATCH_PCTS:
        scenario = scenario_cache(graph, scale, batch_pct=pct)
        reports = simulate_all_workflows(scenario, algo_name)
        js = reports["jetstream"]
        result.add(
            pct * 100, *[reports[w].speedup_over(js) for w in WORKFLOWS]
        )
    result.notes.append(
        "paper: BOE advantage increases with batch size; consistent win"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run())
