"""Fig. 2 — the high cost of deletions in JetStream.

For every graph and algorithm, process one batch of edge additions and one
equally-sized batch of edge deletions on the JetStream model, starting from
converged results.  The paper's point: deletions are several times more
expensive, which is what CommonGraph's deletion-free execution removes.
"""

from __future__ import annotations

import numpy as np

from repro.accel.config import jetstream_config
from repro.accel.simulate import simulate_plan
from repro.algorithms import get_algorithm
from repro.evolving.batches import BatchId, BatchKind
from repro.experiments.runner import (
    ALGOS,
    GRAPHS,
    ExperimentResult,
    default_scale,
    scenario_cache,
)
from repro.schedule.plan import ApplyEdges, DeleteEdges, EvalFull, Plan

__all__ = ["run"]


def _single_batch_plan(unified, kind: BatchKind) -> Plan:
    """Evaluate on snapshot 0, then process exactly one batch."""
    plan = Plan(name=f"one-{kind.value}", n_states=1, initial_graph="snapshot0")
    plan.steps.append(EvalFull(0, label="eval-G0"))
    batch = BatchId(kind, 0)
    idx = np.flatnonzero(unified.batch_mask(batch))
    if kind is BatchKind.ADDITION:
        plan.steps.append(ApplyEdges((0,), idx, (batch,), label=str(batch)))
    else:
        plan.steps.append(DeleteEdges(0, idx, (batch,), label=str(batch)))
    return plan


def run(scale: str | None = None) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "Fig. 2",
        "addition vs deletion batch cost on JetStream (ms)",
        ["algorithm", "graph", "add_ms", "del_ms", "del/add"],
    )
    for algo_name in ALGOS:
        for graph in GRAPHS:
            scenario = scenario_cache(graph, scale)
            algo = get_algorithm(algo_name)
            times = {}
            for kind in (BatchKind.ADDITION, BatchKind.DELETION):
                plan = _single_batch_plan(scenario.unified, kind)
                report, __ = simulate_plan(
                    scenario, algo, plan, jetstream_config(), concurrent=False
                )
                times[kind] = report.update_time_ms
            ratio = (
                times[BatchKind.DELETION] / times[BatchKind.ADDITION]
                if times[BatchKind.ADDITION]
                else float("inf")
            )
            result.add(
                algo_name,
                graph,
                times[BatchKind.ADDITION],
                times[BatchKind.DELETION],
                ratio,
            )
    result.notes.append(
        "paper: deletions are substantially more expensive than additions "
        "across all algorithms and graphs"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run())
