"""Fig. 21 — effect of batch-size imbalance (Wen graph, SSWP).

Batches whose sizes differ by up to 4x dent BOE's speedup by only ~10%:
the batch-oriented schedule tolerates uneven batches because every batch
is still shared across all its target snapshots.  The paper normalizes
against RisGraph running Work-Sharing.
"""

from __future__ import annotations

from repro.algorithms import get_algorithm
from repro.baselines import run_baseline
from repro.experiments.runner import (
    ExperimentResult,
    default_scale,
    scenario_cache,
    simulate_all_workflows,
)

__all__ = ["run", "IMBALANCE_FACTORS"]

IMBALANCE_FACTORS = (1.0, 1.5, 4.0)


def run(
    scale: str | None = None, graph: str = "Wen", algo_name: str = "SSWP"
) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "Fig. 21",
        f"BOE+BP speedup vs RisGraph(WS) under batch imbalance "
        f"({graph}/{algo_name})",
        ["imbalance", "speedup", "relative_to_balanced"],
    )
    algo = get_algorithm(algo_name)
    baseline_speedups = []
    for factor in IMBALANCE_FACTORS:
        scenario = scenario_cache(graph, scale, imbalance=factor)
        mega = simulate_all_workflows(scenario, algo_name)["boe+bp"]
        baseline = run_baseline(scenario, algo, "risgraph-ws")
        speedup = baseline.update_time_ms / (mega.update_cycles / 1e6)
        baseline_speedups.append(speedup)
        result.add(factor, speedup, speedup / baseline_speedups[0])
    result.notes.append(
        "paper: ~10% dip even at 4x imbalance"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run())
