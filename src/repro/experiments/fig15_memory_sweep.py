"""Fig. 15 — sensitivity to on-chip memory size (Wen graph).

Sweeping the queue memory from 16 MB to 256 MB (nominal, proxy-scaled):
more on-chip capacity means fewer graph partitions for the 16 concurrent
snapshots and a higher BOE speedup over JetStream.
"""

from __future__ import annotations

from repro.accel import JetStreamSimulator, MegaSimulator, mega_config
from repro.algorithms import get_algorithm
from repro.experiments.runner import (
    ALGOS,
    ExperimentResult,
    default_scale,
    scenario_cache,
)

__all__ = ["run", "MEMORY_SIZES_MB"]

MEMORY_SIZES_MB = (16, 32, 64, 128, 256)


def run(scale: str | None = None, graph: str = "Wen") -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "Fig. 15",
        f"BOE speedup vs JetStream by on-chip memory size ({graph})",
        ["algorithm", "onchip_mb", "speedup", "n_partitions"],
    )
    scenario = scenario_cache(graph, scale)
    for algo_name in ALGOS:
        algo = get_algorithm(algo_name)
        js = JetStreamSimulator().run(scenario, algo)
        for mb in MEMORY_SIZES_MB:
            cfg = mega_config().with_onchip_mb(mb)
            report = MegaSimulator("boe", config=cfg).run(scenario, algo)
            result.add(
                algo_name, mb, report.speedup_over(js), report.n_partitions
            )
    result.notes.append(
        "paper: speedup grows with memory as partition overheads shrink"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run())
