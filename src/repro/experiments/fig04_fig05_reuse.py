"""Figs. 4 and 5 — the edge-reuse asymmetry motivating BOE.

Fig. 4: different batches applied to the same snapshot share almost no
fetched edges (a few percent).  Fig. 5: the same batch applied to different
snapshots shares nearly all of them (~98%+).
"""

from __future__ import annotations

from repro.algorithms import get_algorithm
from repro.experiments.runner import (
    ALGOS,
    GRAPHS,
    ExperimentResult,
    default_scale,
    scenario_cache,
)
from repro.metrics import (
    edge_reuse_across_snapshots,
    edge_reuse_same_snapshot,
)

__all__ = ["run", "run_fig04", "run_fig05"]


def _run(metric, name: str, title: str, expectation: str, scale: str | None):
    scale = scale or default_scale()
    result = ExperimentResult(
        name, title, ["algorithm", "graph", "reused_fraction"]
    )
    for algo_name in ALGOS:
        algo = get_algorithm(algo_name)
        for graph in GRAPHS:
            scenario = scenario_cache(graph, scale)
            result.add(algo_name, graph, metric(scenario, algo))
    result.notes.append(expectation)
    return result


def run_fig04(scale: str | None = None) -> ExperimentResult:
    return _run(
        edge_reuse_same_snapshot,
        "Fig. 4",
        "edge reuse: different batches, same snapshot",
        "paper: below ~0.06 everywhere",
        scale,
    )


def run_fig05(scale: str | None = None) -> ExperimentResult:
    return _run(
        edge_reuse_across_snapshots,
        "Fig. 5",
        "edge reuse: same batch, different snapshots",
        "paper: ~0.98 on average",
        scale,
    )


def run(scale: str | None = None) -> tuple[ExperimentResult, ExperimentResult]:
    return run_fig04(scale), run_fig05(scale)


if __name__ == "__main__":  # pragma: no cover
    for r in run():
        print(r)
        print()
