"""Experiment harness shared by all table/figure drivers.

Each experiment module exposes ``run(scale=...) -> ExperimentResult``; the
result carries paper-style rows and can render itself as a fixed-width
table.  ``REPRO_SCALE`` (tiny/small/medium) selects the proxy-graph scale
for the whole harness.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.accel import JetStreamSimulator, MegaSimulator
from repro.accel.stats import SimReport
from repro.algorithms import get_algorithm
from repro.evolving.snapshots import EvolvingScenario
from repro.workloads import load_scenario

__all__ = [
    "ExperimentResult",
    "LRUCache",
    "default_scale",
    "GRAPHS",
    "ALGOS",
    "simulate_all_workflows",
    "scenario_cache",
    "clear_caches",
]

#: paper order (Table 4 lists PK, LJ, DL, OR, UK, Wen)
GRAPHS = ("PK", "LJ", "OR", "DL", "UK", "Wen")
ALGOS = ("BFS", "SSSP", "SSWP", "SSNP", "Viterbi")


class LRUCache:
    """A size-bounded mapping with least-recently-used eviction.

    The module-level caches below used to grow without bound, which is
    fine for one ``mega-repro run`` invocation but leaks in a long-lived
    process sweeping many scenarios; the bound plus :meth:`clear` makes
    them safe to keep warm indefinitely.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = int(maxsize)
        self._data: OrderedDict = OrderedDict()

    def __contains__(self, key) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, key):
        value = self._data[key]
        self._data.move_to_end(key)
        return value

    def __setitem__(self, key, value) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def keys(self) -> list:
        """Current keys, least-recently-used first."""
        return list(self._data)

    def pop(self, key, default=None):
        return self._data.pop(key, default)

    def clear(self) -> None:
        self._data.clear()


#: scenario construction is the expensive part of an experiment; a few
#: dozen cover a full sweep at one scale
_scenarios: LRUCache = LRUCache(48)
_reports: LRUCache = LRUCache(96)


def clear_caches() -> None:
    """Drop every cached scenario and simulation report.

    The caches are **process-local** module state.  Service workers
    (:mod:`repro.service.pool`) call this between epochs so a long-lived
    worker's memory stays bounded by the LRU limits above rather than by
    the lifetime of the pool; see :func:`scenario_cache` for the fork /
    spawn semantics.
    """
    _scenarios.clear()
    _reports.clear()


def default_scale() -> str:
    """Proxy scale for experiments: ``REPRO_SCALE`` env var or ``small``."""
    return os.environ.get("REPRO_SCALE", "small")


def scenario_cache(name: str, scale: str, **kwargs) -> EvolvingScenario:
    """Scenario construction cached across experiments in one process.

    **Process semantics** (the cache is plain module state, not shared
    memory): a *forked* worker inherits a copy-on-write snapshot of
    whatever the parent had cached at fork time — warm, but updates never
    propagate in either direction; a *spawned* worker starts empty and
    fills its own copy on first use.  Either way each process pays for and
    owns its entries independently, so callers must never mutate a cached
    scenario in place (the service ingest path derives *new* scenarios via
    :func:`repro.evolving.window.slide_window` for exactly this reason).
    Long-lived workers bound their footprint with the LRU limits plus
    :func:`clear_caches`.
    """
    key = (name, scale, tuple(sorted(kwargs.items())))
    if key not in _scenarios:
        _scenarios[key] = load_scenario(name, scale, **kwargs)
    return _scenarios[key]


def simulate_all_workflows(
    scenario: EvolvingScenario, algo_name: str
) -> dict[str, SimReport]:
    """JetStream + the four MEGA variants on one scenario (cached)."""
    key = (
        scenario.name,
        scenario.n_snapshots,
        scenario.metadata.get("seed"),
        scenario.metadata.get("batch_pct"),
        scenario.metadata.get("imbalance"),
        algo_name,
    )
    if key in _reports:
        return _reports[key]
    algo = get_algorithm(algo_name)
    out = {"jetstream": JetStreamSimulator().run(scenario, algo)}
    for wf, bp in [
        ("direct-hop", False),
        ("work-sharing", False),
        ("boe", False),
        ("boe", True),
    ]:
        label = wf + ("+bp" if bp else "")
        out[label] = MegaSimulator(wf, pipeline=bp).run(scenario, algo)
    _reports[key] = out
    return out


@dataclass
class ExperimentResult:
    """One reproduced table/figure: headers + rows + provenance notes."""

    name: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *row) -> None:
        self.rows.append(list(row))

    def column(self, header: str) -> list:
        i = self.headers.index(header)
        return [r[i] for r in self.rows]

    def format_table(self) -> str:
        def fmt(x) -> str:
            if isinstance(x, float):
                return f"{x:.3f}" if abs(x) < 100 else f"{x:.1f}"
            return str(x)

        table = [self.headers] + [[fmt(x) for x in r] for r in self.rows]
        widths = [max(len(r[i]) for r in table) for i in range(len(self.headers))]
        lines = [f"== {self.name}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(table[0], widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in table[1:]:
            lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_records(self) -> list[dict]:
        """Rows as dictionaries keyed by header."""
        return [dict(zip(self.headers, row)) for row in self.rows]

    def to_json(self) -> str:
        """Machine-readable form: name, title, rows, notes."""
        import json

        return json.dumps(
            {
                "name": self.name,
                "title": self.title,
                "headers": self.headers,
                "rows": self.rows,
                "notes": self.notes,
            },
            indent=2,
            default=lambda x: x.item() if hasattr(x, "item") else str(x),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json` (checkpoint/resume round-trip)."""
        import json

        payload = json.loads(text)
        return cls(
            name=payload["name"],
            title=payload["title"],
            headers=list(payload["headers"]),
            rows=[list(r) for r in payload["rows"]],
            notes=list(payload.get("notes", [])),
        )

    def to_csv(self) -> str:
        """The rows as CSV (header line first)."""
        import csv
        import io

        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buf.getvalue()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.format_table()
