"""Extension experiment: multi-query throughput on the accelerator.

Evaluating Q sources one at a time costs roughly Q times one run; the
multi-query plan shares every batch's fetches across all (query, snapshot)
rows, so per-query cost falls as Q grows — until the extra resident
versions raise partitioning pressure.  This is the snapshot-sharing idea
of MEGA composed with the concurrent-query line of work the related-work
section cites (Krill, GraphM, Glign).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import get_algorithm
from repro.core.multi_query import simulate_multi_query
from repro.experiments.runner import (
    ExperimentResult,
    default_scale,
    scenario_cache,
)

__all__ = ["run", "QUERY_COUNTS"]

QUERY_COUNTS = (1, 2, 4, 8)


def run(
    scale: str | None = None, graph: str = "PK", algo_name: str = "SSSP"
) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "Ext. multi-query",
        f"multi-query BOE throughput ({graph}/{algo_name})",
        ["n_queries", "update_cycles", "cycles_per_query", "n_partitions"],
    )
    scenario = scenario_cache(graph, scale)
    algo = get_algorithm(algo_name)
    degrees = np.diff(scenario.common_graph().indptr)
    ranked = np.argsort(-degrees)
    for q in QUERY_COUNTS:
        sources = [int(v) for v in ranked[:q]]
        report, __ = simulate_multi_query(scenario, algo, sources)
        result.add(
            q,
            report.update_cycles,
            report.update_cycles / q,
            report.n_partitions,
        )
    result.notes.append(
        "per-query cost drops with query count (shared fetches) while "
        "partition pressure rises with resident versions"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run())
