"""Experiment drivers: one module per table/figure of the evaluation."""

from repro.experiments import (
    ext_energy,
    ext_latency,
    ext_multiquery,
    ext_sensitivity,
    fig02_deletion_cost,
    fig03_additions,
    fig04_fig05_reuse,
    fig10_event_rounds,
    fig14_software,
    fig15_memory_sweep,
    fig16_17_18_reads,
    fig19_batch_size,
    fig20_snapshots,
    fig21_imbalance,
    summary,
    table4_speedups,
    table5_power,
)
from repro.experiments.runner import ExperimentResult, default_scale

__all__ = ["ALL_EXPERIMENTS", "ExperimentResult", "default_scale", "run_experiment"]

#: experiment id -> zero/one-arg callable returning ExperimentResult(s)
ALL_EXPERIMENTS = {
    "fig2": fig02_deletion_cost.run,
    "fig3": fig03_additions.run,
    "fig4": fig04_fig05_reuse.run_fig04,
    "fig5": fig04_fig05_reuse.run_fig05,
    "fig10": fig10_event_rounds.run,
    "table4": table4_speedups.run,
    "fig14": fig14_software.run,
    "fig15": fig15_memory_sweep.run,
    "fig16": lambda scale=None: fig16_17_18_reads.run_metric("Fig. 16", scale),
    "fig17": lambda scale=None: fig16_17_18_reads.run_metric("Fig. 17", scale),
    "fig18": lambda scale=None: fig16_17_18_reads.run_metric("Fig. 18", scale),
    "fig19": fig19_batch_size.run,
    "fig20": fig20_snapshots.run,
    "fig21": fig21_imbalance.run,
    "table5": table5_power.run,
    "ext-pe-sweep": ext_sensitivity.run,
    "ext-latency": ext_latency.run,
    "ext-multiquery": ext_multiquery.run,
    "ext-energy": ext_energy.run,
    "summary": summary.run,
}


def run_experiment(name: str, scale: str | None = None) -> ExperimentResult:
    """Run one experiment by id (``fig2`` … ``table5``)."""
    try:
        fn = ALL_EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(ALL_EXPERIMENTS)}"
        ) from None
    return fn(scale)
