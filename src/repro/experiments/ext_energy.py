"""Extension experiment: energy efficiency (§5.3's closing claim).

"Consuming only 10 Watts, MEGA is substantially more power-efficient than
our baseline GPU and CPU systems."  The accelerator's energy comes from
the Table 5 power model over its simulated runtime; the software baselines
burn their platforms' board power over their modelled runtimes.
"""

from __future__ import annotations

from repro.accel import MegaSimulator
from repro.accel.energy import EnergyModel
from repro.algorithms import get_algorithm
from repro.baselines import SOFTWARE_SYSTEMS, run_baseline
from repro.experiments.runner import (
    ExperimentResult,
    default_scale,
    scenario_cache,
)

__all__ = ["run"]

_PLATFORM_OF = {
    "kickstarter-ws": "xeon-60core",
    "risgraph-ws": "xeon-60core",
    "risgraph-boe": "xeon-60core",
    "subway-ws": "k80",
}


def run(
    scale: str | None = None, graph: str = "Wen", algo_name: str = "SSSP"
) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "Ext. energy",
        f"energy per evolving-graph window ({graph}/{algo_name})",
        ["system", "time_ms", "avg_power_w", "energy_mj", "mega_advantage"],
    )
    scenario = scenario_cache(graph, scale)
    algo = get_algorithm(algo_name)
    model = EnergyModel()

    mega_report = MegaSimulator("boe", pipeline=True).run(scenario, algo)
    mega = model.accelerator_energy(mega_report)
    result.add("mega (boe+bp)", mega.time_ms, mega.avg_power_w, mega.energy_mj, 1.0)

    for name in SOFTWARE_SYSTEMS:
        baseline = run_baseline(scenario, algo, name)
        rep = model.software_energy(
            name, _PLATFORM_OF[name], baseline.update_time_ms
        )
        result.add(
            name,
            rep.time_ms,
            rep.avg_power_w,
            rep.energy_mj,
            mega.efficiency_over(rep),
        )
    result.notes.append(
        "paper §5.3: ~10 W MEGA is substantially more power-efficient than "
        "the CPU and GPU baselines (here: speedup x power ratio)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run())
