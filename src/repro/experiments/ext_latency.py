"""Extension experiment: per-update latency distribution.

RisGraph's framing (§6) asks how long each *update* takes, not just the
whole window.  On JetStream a snapshot transition pays its addition batch
plus its (expensive) deletion batch sequentially; on MEGA BOE a stage
serves a batch pair for *all* its target snapshots at once, so the
amortized per-(batch, snapshot) latency collapses.
"""

from __future__ import annotations

import statistics

from repro.accel import JetStreamSimulator, MegaSimulator
from repro.algorithms import get_algorithm
from repro.experiments.runner import (
    ExperimentResult,
    default_scale,
    scenario_cache,
)

__all__ = ["run"]


def run(
    scale: str | None = None, graph: str = "Wen", algo_name: str = "SSSP"
) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "Ext. latency",
        f"per-update latency, JetStream vs MEGA BOE ({graph}/{algo_name})",
        ["system", "updates", "median_us", "p95_us", "amortized_us"],
    )
    scenario = scenario_cache(graph, scale)
    algo = get_algorithm(algo_name)
    n = scenario.n_snapshots

    js = JetStreamSimulator().run(scenario, algo)
    # JetStream: one wave per execution; skip the initial evaluation and
    # merge each transition's (add, delete) pair into one update latency.
    js_waves = [c for label, c in js.wave_cycles[1:]]
    js_updates = [
        a + d for a, d in zip(js_waves[0::2], js_waves[1::2])
    ]
    mega = MegaSimulator("boe", pipeline=True).run(scenario, algo)
    # MEGA: one wave per Algorithm 1 stage; a stage serves its batch pair
    # for every target snapshot, so amortize over served snapshots.
    stage_waves = [c for label, c in mega.wave_cycles[1:]]
    served = [
        (n - 1 - i) + (i + 1) for i in range(n - 2, -1, -1)
    ]  # adds' targets + chain group size
    mega_amortized = [
        c / s for c, s in zip(stage_waves, served)
    ]

    def row(system, samples):
        if not samples:
            return
        us = [s / 1e3 for s in samples]  # cycles at 1 GHz -> microseconds
        result.add(
            system,
            len(us),
            statistics.median(us),
            sorted(us)[max(0, int(0.95 * len(us)) - 1)],
            sum(us) / len(us),
        )

    row("jetstream (per transition)", js_updates)
    row("mega-boe (per stage)", stage_waves)
    row("mega-boe (amortized per snapshot served)", mega_amortized)
    result.notes.append(
        "BOE's per-stage latency is comparable to one streaming update but "
        "serves every target snapshot at once"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run())
