"""Figs. 16, 17, 18 — normalized edge reads, vertex reads, vertex writes.

For the Wen graph and all five algorithms, compare the Direct-Hop,
Work-Sharing and BOE workflows' memory activity, normalized to Direct-Hop.
BOE's batch-oriented scheduling yields the fewest of all three metrics.
"""

from __future__ import annotations

from repro.algorithms import get_algorithm
from repro.experiments.runner import (
    ALGOS,
    ExperimentResult,
    default_scale,
    scenario_cache,
)
from repro.metrics import workflow_activity

__all__ = ["run", "run_metric", "METRICS"]

METRICS = {
    "Fig. 16": ("edge_reads", "normalized edge reads"),
    "Fig. 17": ("vertex_reads", "normalized vertex reads"),
    "Fig. 18": ("vertex_writes", "normalized vertex writes"),
}
WORKFLOWS = ("direct-hop", "work-sharing", "boe")


def run_metric(
    figure: str, scale: str | None = None, graph: str = "Wen"
) -> ExperimentResult:
    attr, title = METRICS[figure]
    scale = scale or default_scale()
    result = ExperimentResult(
        figure,
        f"{title} ({graph} graph)",
        ["algorithm"] + list(WORKFLOWS),
    )
    scenario = scenario_cache(graph, scale)
    for algo_name in ALGOS:
        algo = get_algorithm(algo_name)
        values = {
            wf: getattr(workflow_activity(scenario, algo, wf), attr)
            for wf in WORKFLOWS
        }
        base = max(values["direct-hop"], 1)
        result.add(algo_name, *[values[wf] / base for wf in WORKFLOWS])
    result.notes.append("paper: BOE lowest, Work-Sharing middle, Direct-Hop 1.0")
    return result


def run(scale: str | None = None, graph: str = "Wen"):
    return tuple(run_metric(fig, scale, graph) for fig in METRICS)


if __name__ == "__main__":  # pragma: no cover
    for r in run():
        print(r)
        print()
