"""Vertex reordering for partition locality.

MEGA's vertex-range partitioning (Fig. 9) spills events whose destination
lies in another partition, so the fraction of cross-partition edges is a
first-order cost once the resident versions exceed on-chip capacity.
Renumbering vertices so that neighbours get nearby ids is the classic
remedy; this module provides BFS (Cuthill-McKee-flavoured) and
degree-sort orders plus the plumbing to apply a permutation to an edge
list before scenario synthesis.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.edges import EdgeList

__all__ = ["bfs_order", "degree_order", "apply_order"]


def bfs_order(graph: CSRGraph, start: int | None = None) -> np.ndarray:
    """BFS visitation order over the undirected view of the graph.

    Returns ``order`` with ``order[new_id] = old_id``; unreachable
    components are appended by repeating BFS from the lowest-id unvisited
    vertex.  Neighbouring vertices end up with nearby new ids, which is
    what shrinks the cross-partition edge fraction.
    """
    n = graph.n_vertices
    undirected = CSRGraph.from_edges(
        graph.to_edge_list().concat(graph.reverse().to_edge_list())
        .deduplicate()
    )
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    seeds = [start] if start is not None else []
    seeds += list(range(n))
    queue: deque[int] = deque()
    for seed in seeds:
        if visited[seed]:
            continue
        visited[seed] = True
        queue.append(seed)
        while queue:
            u = queue.popleft()
            order[pos] = u
            pos += 1
            for v in undirected.neighbors(u):
                if not visited[v]:
                    visited[v] = True
                    queue.append(int(v))
    assert pos == n
    return order


def degree_order(graph: CSRGraph) -> np.ndarray:
    """Descending out-degree order (hubs first, hot partition 0)."""
    degrees = np.diff(graph.indptr)
    return np.argsort(-degrees, kind="stable").astype(np.int64)


def apply_order(edges: EdgeList, order: np.ndarray) -> EdgeList:
    """Renumber an edge list with ``order`` (``order[new_id] = old_id``)."""
    if order.shape[0] != edges.n_vertices:
        raise ValueError("order must cover every vertex")
    if np.unique(order).size != order.size:
        raise ValueError("order must be a permutation")
    new_id = np.empty(edges.n_vertices, dtype=np.int64)
    new_id[order] = np.arange(edges.n_vertices)
    return EdgeList(
        edges.n_vertices, new_id[edges.src], new_id[edges.dst], edges.wt
    )
