"""Vertex-range graph partitioning.

MEGA partitions the graph when the per-vertex state of all active snapshots
does not fit in on-chip memory (paper §3.2, Fig. 9).  Partitions are
contiguous vertex ranges balanced by out-edge count, mirroring the
direct-mapped on-chip layout of the accelerator's event-queue bins.
"""

from __future__ import annotations

import numpy as np

__all__ = ["VertexPartitioner"]


class VertexPartitioner:
    """Split ``n_vertices`` into contiguous ranges balanced by edge count."""

    def __init__(self, indptr: np.ndarray, n_partitions: int) -> None:
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        n_vertices = indptr.shape[0] - 1
        n_partitions = min(n_partitions, max(1, n_vertices))
        total_edges = int(indptr[-1])
        # boundary k starts where the cumulative edge count crosses
        # k/n_partitions of the total.
        targets = (np.arange(1, n_partitions) * total_edges) // n_partitions
        cuts = np.searchsorted(indptr, targets, side="left")
        bounds = np.concatenate(([0], cuts, [n_vertices])).astype(np.int64)
        # Guarantee monotone, possibly-empty ranges are allowed.
        bounds = np.maximum.accumulate(bounds)
        self.n_vertices = n_vertices
        self.n_partitions = n_partitions
        self.bounds = bounds

    def partition_of(self, vertices: np.ndarray | int) -> np.ndarray | int:
        """Map vertex ids to partition ids.

        Raises ``ValueError`` on any id outside ``[0, n_vertices)`` —
        ``searchsorted`` would otherwise clamp garbage ids onto the first
        or last partition, and a shard router acting on that answer would
        silently misroute the edge.  Scalar in, scalar out.
        """
        arr = np.asarray(vertices)
        if arr.size:
            bad = (arr < 0) | (arr >= self.n_vertices)
            if np.any(bad):
                offenders = np.unique(np.atleast_1d(arr)[np.atleast_1d(bad)])
                raise ValueError(
                    f"vertex id(s) {offenders[:8].tolist()} outside "
                    f"[0, {self.n_vertices})"
                )
        # side="right" lands duplicated bounds (empty partitions) on the
        # last duplicate, i.e. the non-empty range actually owning the id
        idx = np.searchsorted(self.bounds, arr, side="right") - 1
        idx = np.minimum(idx, self.n_partitions - 1)
        if arr.ndim == 0:
            return int(idx)
        return idx

    def vertex_range(self, p: int) -> tuple[int, int]:
        """Half-open vertex range of partition ``p``."""
        if not 0 <= p < self.n_partitions:
            raise IndexError("partition id out of range")
        return int(self.bounds[p]), int(self.bounds[p + 1])

    def sizes(self) -> np.ndarray:
        return np.diff(self.bounds)

    def cross_fraction(self, src: np.ndarray, dst: np.ndarray) -> float:
        """Fraction of ``(src, dst)`` pairs that cross a partition boundary."""
        if src.size == 0:
            return 0.0
        return float(
            np.mean(self.partition_of(src) != self.partition_of(dst))
        )
