"""Static graph substrate: edge lists, CSR graphs, generators, partitioning."""

from repro.graph.csr import CSRGraph, gather_out_edges
from repro.graph.edges import EdgeList, edge_keys
from repro.graph.partition import VertexPartitioner

__all__ = [
    "CSRGraph",
    "EdgeList",
    "VertexPartitioner",
    "edge_keys",
    "gather_out_edges",
]
