"""Edge-list primitives shared by every graph representation.

An :class:`EdgeList` is the exchange format between the synthetic dataset
generators, the evolving-graph synthesizer, and the CSR builders.  Edges are
directed ``(src, dst, wt)`` triples held in parallel numpy arrays.  Within
one evolving-graph scenario every ``(src, dst)`` pair is unique, which is
what gives edge additions and deletions well-defined semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["EdgeList", "edge_keys"]


def edge_keys(src: np.ndarray, dst: np.ndarray, n_vertices: int) -> np.ndarray:
    """Return a unique int64 key per ``(src, dst)`` pair.

    Keys are ``src * n_vertices + dst`` which is collision-free for any
    graph with fewer than ``2**31`` vertices.
    """
    return src.astype(np.int64) * np.int64(n_vertices) + dst.astype(np.int64)


@dataclass
class EdgeList:
    """A bag of directed, weighted edges over ``n_vertices`` vertices."""

    n_vertices: int
    src: np.ndarray
    dst: np.ndarray
    wt: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dst = np.asarray(self.dst, dtype=np.int64)
        if self.wt is None:
            self.wt = np.ones(self.src.shape[0], dtype=np.float64)
        else:
            self.wt = np.asarray(self.wt, dtype=np.float64)
        if not (self.src.shape == self.dst.shape == self.wt.shape):
            raise ValueError("src, dst and wt must have identical shapes")
        if self.src.size and (self.src.min() < 0 or self.src.max() >= self.n_vertices):
            raise ValueError("src vertex id out of range")
        if self.dst.size and (self.dst.min() < 0 or self.dst.max() >= self.n_vertices):
            raise ValueError("dst vertex id out of range")

    def __len__(self) -> int:
        return int(self.src.shape[0])

    @property
    def keys(self) -> np.ndarray:
        """Unique int64 key per edge (requires unique ``(src, dst)`` pairs)."""
        return edge_keys(self.src, self.dst, self.n_vertices)

    def select(self, mask_or_index: np.ndarray) -> "EdgeList":
        """Return a new :class:`EdgeList` with the selected edges."""
        return EdgeList(
            self.n_vertices,
            self.src[mask_or_index],
            self.dst[mask_or_index],
            self.wt[mask_or_index],
        )

    def concat(self, other: "EdgeList") -> "EdgeList":
        """Concatenate two edge lists over the same vertex set."""
        if other.n_vertices != self.n_vertices:
            raise ValueError("cannot concat edge lists over different vertex sets")
        return EdgeList(
            self.n_vertices,
            np.concatenate([self.src, other.src]),
            np.concatenate([self.dst, other.dst]),
            np.concatenate([self.wt, other.wt]),
        )

    def deduplicate(self) -> "EdgeList":
        """Drop duplicate ``(src, dst)`` pairs, keeping the first occurrence."""
        __, first = np.unique(self.keys, return_index=True)
        return self.select(np.sort(first))

    def without_self_loops(self) -> "EdgeList":
        return self.select(self.src != self.dst)

    def sorted_by_src(self) -> "EdgeList":
        """Sort edges by ``(src, dst)`` — CSR order."""
        order = np.lexsort((self.dst, self.src))
        return self.select(order)

    def has_unique_pairs(self) -> bool:
        return np.unique(self.keys).size == len(self)

    def as_tuples(self) -> list[tuple[int, int, float]]:
        """Materialize as python tuples — intended for tests and examples."""
        return [
            (int(s), int(d), float(w))
            for s, d, w in zip(self.src, self.dst, self.wt)
        ]

    @classmethod
    def from_tuples(
        cls, n_vertices: int, edges: list[tuple] | tuple
    ) -> "EdgeList":
        """Build from ``(src, dst)`` or ``(src, dst, wt)`` tuples."""
        if not edges:
            empty = np.empty(0, dtype=np.int64)
            return cls(n_vertices, empty, empty.copy(), np.empty(0))
        cols = list(zip(*edges))
        src = np.asarray(cols[0], dtype=np.int64)
        dst = np.asarray(cols[1], dtype=np.int64)
        wt = np.asarray(cols[2], dtype=np.float64) if len(cols) > 2 else None
        return cls(n_vertices, src, dst, wt)
