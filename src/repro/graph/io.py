"""Graph and scenario I/O.

Text edge lists (the format SNAP/KONECT distribute the paper's graphs in)
and a binary ``.npz`` container for unified evolving-graph CSRs — the
paper's "default storage format" (§3), so a window can be synthesized
once and reloaded by every experiment.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.evolving.snapshots import EvolvingScenario
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import CSRGraph
from repro.graph.edges import EdgeList

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "save_scenario",
    "load_scenario_file",
]


def read_edge_list(
    path: str | pathlib.Path,
    n_vertices: int | None = None,
    comment: str = "#",
    default_weight: float = 1.0,
) -> EdgeList:
    """Parse a whitespace-separated ``src dst [wt]`` text file.

    Vertex ids must be non-negative integers; ``n_vertices`` defaults to
    ``max id + 1``.  Lines starting with ``comment`` are skipped, as are
    blank lines.  Duplicate pairs and self-loops are preserved — callers
    decide whether to clean them (``EdgeList.deduplicate`` etc.).
    """
    srcs: list[int] = []
    dsts: list[int] = []
    wts: list[float] = []
    path = pathlib.Path(path)
    with path.open() as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(
                    f"{path}:{lineno}: expected 'src dst [wt]', got {line!r}"
                )
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            wts.append(float(parts[2]) if len(parts) > 2 else default_weight)
    if n_vertices is None:
        n_vertices = (max(srcs + dsts) + 1) if srcs else 0
    return EdgeList(
        max(n_vertices, 1),
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        np.asarray(wts, dtype=np.float64),
    )


def write_edge_list(
    edges: EdgeList, path: str | pathlib.Path, weights: bool = True
) -> None:
    """Write a ``src dst [wt]`` text file (readable by read_edge_list)."""
    path = pathlib.Path(path)
    with path.open("w") as fh:
        fh.write(f"# {len(edges)} edges over {edges.n_vertices} vertices\n")
        for s, d, w in zip(edges.src, edges.dst, edges.wt):
            if weights:
                fh.write(f"{s} {d} {w:.17g}\n")
            else:
                fh.write(f"{s} {d}\n")


def save_scenario(
    scenario: EvolvingScenario, path: str | pathlib.Path
) -> None:
    """Persist a scenario (unified CSR + tags + source) as ``.npz``."""
    u = scenario.unified
    g = u.graph
    np.savez_compressed(
        pathlib.Path(path),
        n_vertices=np.int64(g.n_vertices),
        n_snapshots=np.int64(u.n_snapshots),
        indptr=g.indptr,
        dst=g.dst,
        wt=g.wt,
        add_step=u.add_step,
        del_step=u.del_step,
        source=np.int64(scenario.source),
        name=np.bytes_(scenario.name.encode()),
    )


def load_scenario_file(path: str | pathlib.Path) -> EvolvingScenario:
    """Load a scenario saved by :func:`save_scenario`."""
    with np.load(pathlib.Path(path)) as data:
        graph = CSRGraph(
            int(data["n_vertices"]),
            data["indptr"],
            data["dst"],
            data["wt"],
        )
        unified = UnifiedCSR(
            graph,
            data["add_step"],
            data["del_step"],
            int(data["n_snapshots"]),
        )
        return EvolvingScenario(
            unified,
            source=int(data["source"]),
            name=bytes(data["name"]).decode(),
        )
