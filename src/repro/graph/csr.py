"""Compressed Sparse Row graph representation.

The CSR layout is the storage format used throughout the reproduction:
``indptr`` (length ``n+1``) indexes into the parallel ``dst``/``wt`` arrays,
so the out-edges of vertex ``u`` live at ``indptr[u]:indptr[u+1]``.  The
unified evolving-graph CSR of the paper (Fig. 6) extends this layout with
per-edge snapshot tags — see :mod:`repro.evolving.unified_csr`.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edges import EdgeList

__all__ = ["CSRGraph", "gather_out_edges"]


class CSRGraph:
    """An immutable directed weighted graph in CSR form.

    **No-copy contract**: inputs already in the canonical dtypes
    (``indptr``/``dst`` int64, ``wt`` float64) are adopted as-is via
    ``np.asarray`` — no copy is made, and read-only inputs (e.g. views
    into a ``multiprocessing.shared_memory`` segment published by the
    service's scenario plane) stay read-only.  Only non-conforming
    dtypes pay a conversion copy.  Construction never writes to the
    edge arrays, so a shared-memory attach is genuinely zero-copy.
    """

    __slots__ = ("n_vertices", "indptr", "dst", "wt", "_src_of_edge")

    def __init__(
        self,
        n_vertices: int,
        indptr: np.ndarray,
        dst: np.ndarray,
        wt: np.ndarray,
    ) -> None:
        self.n_vertices = int(n_vertices)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.dst = np.asarray(dst, dtype=np.int64)
        self.wt = np.asarray(wt, dtype=np.float64)
        if self.indptr.shape[0] != self.n_vertices + 1:
            raise ValueError("indptr must have length n_vertices + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.dst.shape[0]:
            raise ValueError("indptr does not cover the edge arrays")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.dst.shape != self.wt.shape:
            raise ValueError("dst and wt must have identical shapes")
        # src per edge slot, computed lazily on first use; reverse graphs,
        # dependence trees and trace bookkeeping need it, but many graphs
        # (snapshot materializations, shared-memory attaches) never do.
        self._src_of_edge: np.ndarray | None = None

    @property
    def src_of_edge(self) -> np.ndarray:
        """Source vertex per edge slot (lazily materialized, cached)."""
        if self._src_of_edge is None:
            self._src_of_edge = np.repeat(
                np.arange(self.n_vertices, dtype=np.int64),
                np.diff(self.indptr),
            )
        return self._src_of_edge

    # -- construction ----------------------------------------------------

    @classmethod
    def from_edges(cls, edges: EdgeList) -> "CSRGraph":
        """Build a CSR graph from an edge list (sorted by ``(src, dst)``)."""
        ordered = edges.sorted_by_src()
        counts = np.bincount(ordered.src, minlength=edges.n_vertices)
        indptr = np.zeros(edges.n_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(edges.n_vertices, indptr, ordered.dst, ordered.wt)

    @classmethod
    def from_tuples(cls, n_vertices: int, edges: list[tuple]) -> "CSRGraph":
        return cls.from_edges(EdgeList.from_tuples(n_vertices, edges))

    # -- basic queries ----------------------------------------------------

    @property
    def n_edges(self) -> int:
        return int(self.dst.shape[0])

    def out_degree(self, u: int | np.ndarray) -> np.ndarray | int:
        deg = self.indptr[np.asarray(u) + 1] - self.indptr[np.asarray(u)]
        return deg

    def neighbors(self, u: int) -> np.ndarray:
        return self.dst[self.indptr[u]: self.indptr[u + 1]]

    def edge_slice(self, u: int) -> slice:
        return slice(int(self.indptr[u]), int(self.indptr[u + 1]))

    def has_edge(self, u: int, v: int) -> bool:
        lo, hi = self.indptr[u], self.indptr[u + 1]
        pos = np.searchsorted(self.dst[lo:hi], v)
        return bool(pos < hi - lo and self.dst[lo + pos] == v)

    def to_edge_list(self) -> EdgeList:
        return EdgeList(self.n_vertices, self.src_of_edge.copy(), self.dst.copy(), self.wt.copy())

    def reverse(self) -> "CSRGraph":
        """Return the transpose graph (in-edges become out-edges)."""
        rev = EdgeList(self.n_vertices, self.dst, self.src_of_edge, self.wt)
        return CSRGraph.from_edges(rev)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph(n_vertices={self.n_vertices}, n_edges={self.n_edges})"


def gather_out_edges(
    indptr: np.ndarray, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather the edge slots of every vertex in ``frontier``.

    Returns ``(edge_idx, src_rep)`` where ``edge_idx`` indexes the CSR edge
    arrays and ``src_rep`` repeats each frontier vertex once per out-edge.
    This is the vectorized inner loop of every propagation engine.
    """
    frontier = np.asarray(frontier, dtype=np.int64)
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    # exclusive prefix sum of counts gives, for each gathered slot, the
    # offset of its frontier vertex's first slot in the output.
    shift = np.zeros(frontier.shape[0], dtype=np.int64)
    np.cumsum(counts[:-1], out=shift[1:])
    edge_idx = np.arange(total, dtype=np.int64) + np.repeat(starts - shift, counts)
    src_rep = np.repeat(frontier, counts)
    return edge_idx, src_rep
