"""Deterministic synthetic graph generators.

The paper evaluates on six real-world power-law graphs (Pokec … Wikipedia-En,
30M–400M edges).  Those inputs are multi-hundred-megabyte downloads and far
too large for a pure-Python cycle-approximate simulator, so the reproduction
substitutes deterministic RMAT-style power-law graphs at a configurable scale
with the same vertex/edge ratios (see ``repro.workloads.datasets`` and the
substitution table in DESIGN.md).  The generators are seeded and reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edges import EdgeList, edge_keys

__all__ = [
    "rmat_edges",
    "uniform_edges",
    "chain_edges",
    "grid_edges",
    "attach_weights",
]


def attach_weights(
    edges: EdgeList, rng: np.random.Generator, low: float = 1.0, high: float = 16.0
) -> EdgeList:
    """Attach uniform random weights in ``[low, high)`` to each edge.

    Weights ``>= 1`` keep all five paper algorithms monotone (Viterbi divides
    by the weight, so weights below one would let values grow without bound).
    """
    if low < 1.0:
        raise ValueError("weights must be >= 1 for Viterbi monotonicity")
    wt = rng.uniform(low, high, size=len(edges))
    return EdgeList(edges.n_vertices, edges.src, edges.dst, wt)


def _dedup_against(
    src: np.ndarray, dst: np.ndarray, n_vertices: int, taken: set[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Drop edges whose key is already in ``taken``; update ``taken``."""
    keys = edge_keys(src, dst, n_vertices)
    keep = np.empty(keys.shape[0], dtype=bool)
    for i, k in enumerate(keys):
        k = int(k)
        if k in taken:
            keep[i] = False
        else:
            taken.add(k)
            keep[i] = True
    return src[keep], dst[keep]


def rmat_edges(
    n_vertices: int,
    n_edges: int,
    seed: int = 0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    weight_high: float = 16.0,
) -> EdgeList:
    """Generate a power-law directed graph with the RMAT recursive model.

    Produces exactly ``n_edges`` unique, self-loop-free edges (oversampling
    and retrying until enough survive deduplication).  ``a + b + c`` must be
    below one; ``d = 1 - a - b - c``.
    """
    if n_vertices < 2:
        raise ValueError("need at least two vertices")
    if a + b + c >= 1.0:
        raise ValueError("RMAT probabilities must satisfy a + b + c < 1")
    rng = np.random.default_rng(seed)
    levels = int(np.ceil(np.log2(n_vertices)))
    size = 1 << levels

    taken: set[int] = set()
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    got = 0
    while got < n_edges:
        want = int((n_edges - got) * 1.4) + 16
        # Each sample picks one quadrant per level.
        r = rng.random((want, levels))
        src = np.zeros(want, dtype=np.int64)
        dst = np.zeros(want, dtype=np.int64)
        for lvl in range(levels):
            half = size >> (lvl + 1)
            rl = r[:, lvl]
            # quadrants: a = (0,0), b = (0,1), c = (1,0), d = (1,1)
            go_right = (rl >= a) & (rl < a + b) | (rl >= a + b + c)
            go_down = rl >= a + b
            src += np.where(go_down, half, 0)
            dst += np.where(go_right, half, 0)
        ok = (src < n_vertices) & (dst < n_vertices) & (src != dst)
        src, dst = src[ok], dst[ok]
        src, dst = _dedup_against(src, dst, n_vertices, taken)
        take = min(n_edges - got, src.shape[0])
        srcs.append(src[:take])
        dsts.append(dst[:take])
        got += take

    edges = EdgeList(
        n_vertices, np.concatenate(srcs), np.concatenate(dsts), None
    )
    return attach_weights(edges, rng, high=weight_high)


def uniform_edges(
    n_vertices: int, n_edges: int, seed: int = 0, weight_high: float = 16.0
) -> EdgeList:
    """Generate a uniform (Erdos-Renyi-like) directed graph."""
    rng = np.random.default_rng(seed)
    taken: set[int] = set()
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    got = 0
    max_possible = n_vertices * (n_vertices - 1)
    if n_edges > max_possible:
        raise ValueError("requested more edges than the vertex set admits")
    while got < n_edges:
        want = int((n_edges - got) * 1.3) + 16
        src = rng.integers(0, n_vertices, size=want, dtype=np.int64)
        dst = rng.integers(0, n_vertices, size=want, dtype=np.int64)
        ok = src != dst
        src, dst = _dedup_against(src[ok], dst[ok], n_vertices, taken)
        take = min(n_edges - got, src.shape[0])
        srcs.append(src[:take])
        dsts.append(dst[:take])
        got += take
    edges = EdgeList(n_vertices, np.concatenate(srcs), np.concatenate(dsts), None)
    return attach_weights(edges, rng, high=weight_high)


def chain_edges(n_vertices: int, weight: float = 1.0) -> EdgeList:
    """A simple directed chain ``0 -> 1 -> ... -> n-1`` (test fixture)."""
    src = np.arange(n_vertices - 1, dtype=np.int64)
    dst = src + 1
    wt = np.full(n_vertices - 1, weight)
    return EdgeList(n_vertices, src, dst, wt)


def grid_edges(rows: int, cols: int, seed: int = 0) -> EdgeList:
    """A 2-D grid with rightward and downward edges (road-network-like)."""
    rng = np.random.default_rng(seed)
    n = rows * cols
    srcs: list[int] = []
    dsts: list[int] = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                srcs.append(u)
                dsts.append(u + 1)
            if r + 1 < rows:
                srcs.append(u)
                dsts.append(u + cols)
    edges = EdgeList(
        n, np.asarray(srcs, dtype=np.int64), np.asarray(dsts, dtype=np.int64), None
    )
    return attach_weights(edges, rng)
