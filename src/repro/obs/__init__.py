"""Observability: tracing, metrics, and sampled kernel profiling.

The serving stack (``repro.service``) and the DAIC engine
(``repro.engines.daic``) were a black box at runtime — one coarse counter
dict and a single end-to-end latency number.  This package is the window
into them:

* :mod:`repro.obs.trace`   — per-query span timelines: monotonic marks at
  admit, queue-drain, coalesce, plan-submit, worker pickup/compute, and
  resolve, so a response can report *where* its latency went;
* :mod:`repro.obs.metrics` — a thread-safe registry of counters, gauges,
  and histograms with a Prometheus-text renderer (the ``metrics`` op on
  the JSON-lines front end);
* :mod:`repro.obs.profile` — sampled per-round timings of the engine's
  edge-gather/apply kernels, behind a zero-cost-when-disabled guard.

Everything here is dependency-free and safe to import from workers.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import (
    RoundProfiler,
    active_profiler,
    disable_profiling,
    enable_profiling,
    merge_profiles,
    profiled,
)
from repro.obs.trace import STAGES, QueryTrace, stage_percentiles

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryTrace",
    "RoundProfiler",
    "STAGES",
    "active_profiler",
    "disable_profiling",
    "enable_profiling",
    "merge_profiles",
    "profiled",
    "stage_percentiles",
]
