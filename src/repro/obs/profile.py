"""Sampled kernel profiling for the DAIC round loop.

The engine's round loop is the hot path of every plan the service
executes; a kernel regression there (a gather that silently re-allocates,
a scatter that went quadratic) is invisible in end-to-end latency until
it is large.  These hooks time the two sections that dominate a round —
**edge gather** (frontier → edge fetch → candidate build) and **apply**
(scatter-reduce → change detection) — on a sampled subset of rounds.

Zero cost when disabled: the engine keeps a single ``prof is not None``
check per round; no timestamps are taken, no dict is touched.  Enabled,
the cost is two ``perf_counter()`` pairs per *sampled* round.

The profiler is process-local (workers each own one).  Plans request
profiling via ``PlanPayload.profile_every``; the worker wraps execution
in :func:`profiled` and ships the snapshot back inside ``PlanResult`` so
the coordinator can aggregate across workers with :func:`merge_profiles`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = [
    "RoundProfiler",
    "active_profiler",
    "disable_profiling",
    "enable_profiling",
    "merge_profiles",
    "profiled",
]

_active: "RoundProfiler | None" = None
_lock = threading.Lock()


class RoundProfiler:
    """Accumulates per-section wall time over sampled rounds."""

    def __init__(self, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = int(sample_every)
        self._lock = threading.Lock()
        self._round = 0
        #: section -> [sampled_count, total_seconds]
        self._sections: dict[str, list] = {}

    def sample(self) -> bool:
        """Advance the round counter; True when this round is sampled."""
        with self._lock:
            self._round += 1
            return self._round % self.sample_every == 0

    def add(self, section: str, seconds: float) -> None:
        with self._lock:
            acc = self._sections.setdefault(section, [0, 0.0])
            acc[0] += 1
            acc[1] += seconds

    def now(self) -> float:
        return time.perf_counter()

    def snapshot(self) -> dict:
        """JSON-able ``{section: {rounds, total_s, mean_us}}`` plus the
        sampling coordinates needed to interpret it."""
        with self._lock:
            return {
                "sample_every": self.sample_every,
                "rounds_seen": self._round,
                "sections": {
                    name: {
                        "rounds": count,
                        "total_s": total,
                        "mean_us": (total / count * 1e6) if count else 0.0,
                    }
                    for name, (count, total) in sorted(self._sections.items())
                },
            }


def active_profiler() -> RoundProfiler | None:
    """The process-wide profiler, or None (the engine's fast-path check)."""
    return _active


def enable_profiling(sample_every: int = 1) -> RoundProfiler:
    """Install a fresh process-wide profiler and return it."""
    global _active
    with _lock:
        _active = RoundProfiler(sample_every)
        return _active


def disable_profiling() -> RoundProfiler | None:
    """Remove the process-wide profiler; returns it (with its data)."""
    global _active
    with _lock:
        prof, _active = _active, None
        return prof


@contextmanager
def profiled(sample_every: int = 1):
    """Enable profiling for a scope; yields the profiler.

    Restores whatever profiler (usually None) was active before, so
    nested scopes and worker reuse stay correct.
    """
    global _active
    with _lock:
        previous = _active
        prof = RoundProfiler(sample_every)
        _active = prof
    try:
        yield prof
    finally:
        with _lock:
            _active = previous


def merge_profiles(snapshots: list[dict]) -> dict:
    """Fold worker-side ``RoundProfiler.snapshot()`` dicts into one.

    Section times add; ``rounds_seen`` adds; ``sample_every`` must agree
    (it is config-driven) and passes through.
    """
    merged: dict = {"sample_every": 0, "rounds_seen": 0, "sections": {}}
    for snap in snapshots:
        if not snap:
            continue
        merged["sample_every"] = snap.get("sample_every", 0)
        merged["rounds_seen"] += snap.get("rounds_seen", 0)
        for name, sec in snap.get("sections", {}).items():
            acc = merged["sections"].setdefault(
                name, {"rounds": 0, "total_s": 0.0, "mean_us": 0.0}
            )
            acc["rounds"] += sec["rounds"]
            acc["total_s"] += sec["total_s"]
    for sec in merged["sections"].values():
        if sec["rounds"]:
            sec["mean_us"] = sec["total_s"] / sec["rounds"] * 1e6
    return merged
