"""Per-query span timelines.

A :class:`QueryTrace` rides on every
:class:`~repro.service.batcher.PendingQuery` and records one monotonic
timestamp per pipeline stage as the query moves through the service::

    admit ─ queue_drain ─ coalesce ─ plan_submit ─ worker_start ─
    worker_end ─ resolve

``worker_start``/``worker_end`` are recorded *inside the worker process*
and shipped back in :class:`~repro.service.pool.PlanResult`; on Linux
``CLOCK_MONOTONIC`` is system-wide, so the marks are directly comparable
with the coordinator's.  (If a platform ever handed workers a different
clock origin, the affected stage would go negative and
``stage_durations_ms`` clamps it to zero rather than reporting nonsense.)

The derived *stage durations* are what operators read:

* ``admit_to_plan`` — queue wait + deadline check + coalescing;
* ``plan_to_worker`` — executor queue (pool saturation shows up here);
* ``worker`` — pure compute inside the worker;
* ``worker_to_resolve`` — result pickling + completion callback;
* ``total`` — admit to resolve (equals the response's latency).

Queries that never reach a worker (cache hits, validation errors, shed)
carry partial timelines — only the marks their path actually crossed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["STAGES", "QueryTrace", "stage_percentiles"]

#: canonical mark order; a well-formed timeline is monotonic along it
STAGES = (
    "admit",
    "queue_drain",
    "coalesce",
    "plan_submit",
    "worker_start",
    "worker_end",
    "resolve",
)

#: derived durations: name -> (from_mark, to_mark)
STAGE_SPANS = {
    "admit_to_plan": ("admit", "plan_submit"),
    "plan_to_worker": ("plan_submit", "worker_start"),
    "worker": ("worker_start", "worker_end"),
    "worker_to_resolve": ("worker_start", "resolve"),
    "total": ("admit", "resolve"),
}


@dataclass
class QueryTrace:
    """Monotonic timestamps of one query's trip through the service."""

    marks: dict[str, float] = field(default_factory=dict)

    def mark(self, stage: str, at: float | None = None) -> None:
        """Record ``stage`` at ``at`` (default: now).  First mark wins —
        a retried query keeps its original plan_submit, so its timeline
        reports the full wait the client actually experienced."""
        if stage not in self.marks:
            self.marks[stage] = at if at is not None else time.monotonic()

    def stage_durations_ms(self) -> dict[str, float]:
        """Derived stage durations (ms) for every span with both marks.

        Negative spans (cross-process clock skew) clamp to 0.0.
        """
        out: dict[str, float] = {}
        for name, (lo, hi) in STAGE_SPANS.items():
            if lo in self.marks and hi in self.marks:
                out[name] = max(0.0, (self.marks[hi] - self.marks[lo]) * 1e3)
        return out

    def as_dict(self) -> dict:
        """JSON-able span dump: offsets from admit (ms), in stage order."""
        origin = self.marks.get("admit", 0.0)
        return {
            "marks_ms": {
                stage: round((self.marks[stage] - origin) * 1e3, 6)
                for stage in STAGES
                if stage in self.marks
            },
            "stages_ms": {
                k: round(v, 6) for k, v in self.stage_durations_ms().items()
            },
        }


def stage_percentiles(
    stage_dicts: list[dict[str, float]],
    percentiles: tuple[float, ...] = (50.0, 95.0, 99.0),
) -> dict[str, dict[str, float]]:
    """Fold many ``stage_durations_ms`` dicts into per-stage percentiles.

    Returns ``{stage: {"p50": ..., "p95": ..., "p99": ..., "mean": ...,
    "n": ...}}`` over the queries that actually crossed each stage —
    pure python so the load harness can call it without numpy in scope.
    """
    by_stage: dict[str, list[float]] = {}
    for stages in stage_dicts:
        for name, value in stages.items():
            by_stage.setdefault(name, []).append(value)

    def pct(values: list[float], p: float) -> float:
        if not values:
            return 0.0
        k = (len(values) - 1) * p / 100.0
        lo, hi = int(k), min(int(k) + 1, len(values) - 1)
        frac = k - lo
        return values[lo] * (1.0 - frac) + values[hi] * frac

    out: dict[str, dict[str, float]] = {}
    for name, values in by_stage.items():
        values.sort()
        out[name] = {
            f"p{int(p)}": pct(values, p) for p in percentiles
        }
        out[name]["mean"] = sum(values) / len(values)
        out[name]["n"] = float(len(values))
    return out
