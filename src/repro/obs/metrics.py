"""Thread-safe metrics registry with a Prometheus-text renderer.

Three instrument kinds, matching the Prometheus data model:

* :class:`Counter` — monotonically increasing (``submitted``, ``plans``);
* :class:`Gauge` — settable value, plus a *locked* EWMA update for
  smoothed load signals (the plan-latency EWMA feeding ``retry_after``
  was previously an unlocked read-modify-write on the service object —
  folding it into the gauge is the fix);
* :class:`Histogram` — cumulative buckets + sum + count (latencies).

Gauges can also be *callbacks*: ``registry.gauge_fn("queue_depth", fn)``
samples ``fn()`` at render time, so wiring live state (queue depth, WAL
lag, shm segment count) costs nothing between scrapes.

Every instrument owns one lock; reads and writes are serialized per
instrument, never globally, so hot counters on different paths do not
contend.  ``render()`` emits the Prometheus text exposition format
(`# HELP` / `# TYPE` / samples) and ``snapshot()`` a plain dict for JSON
surfaces and tests.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LabeledCounter",
    "LabeledGauge",
    "MetricsRegistry",
]

#: default latency buckets (seconds): 1 ms .. ~16 s, powers of two
DEFAULT_BUCKETS = tuple(0.001 * 2**i for i in range(15))


def _fmt(value: float) -> str:
    """Prometheus sample formatting: integers render bare, floats as-is."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonic counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        with self._lock:
            self._value += n

    def get(self) -> float:
        with self._lock:
            return self._value

    def samples(self) -> list[tuple[str, float]]:
        return [(self.name, self.get())]


class Gauge:
    """Settable value with an atomic EWMA update.

    ``ewma()`` performs the read-modify-write under the instrument lock,
    so concurrent completion callbacks fold their samples in serialized
    order — no update is lost and the value always equals *some*
    interleaving of the samples.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "", initial: float = 0.0) -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = float(initial)

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, n: float) -> None:
        with self._lock:
            self._value += n

    def ewma(self, sample: float, alpha: float = 0.2) -> float:
        """Locked exponentially-weighted update; returns the new value."""
        with self._lock:
            self._value = (1.0 - alpha) * self._value + alpha * float(sample)
            return self._value

    def get(self) -> float:
        with self._lock:
            return self._value

    def samples(self) -> list[tuple[str, float]]:
        return [(self.name, self.get())]


class _CallbackGauge:
    """Gauge whose value is sampled from a callable at read time."""

    kind = "gauge"

    def __init__(self, name: str, fn, help: str = "") -> None:
        self.name = name
        self.help = help
        self._fn = fn

    def get(self) -> float:
        try:
            return float(self._fn())
        except Exception:  # noqa: BLE001 - a scrape must never raise
            return float("nan")

    def samples(self) -> list[tuple[str, float]]:
        return [(self.name, self.get())]


class _LabeledFamily:
    """One metric name fanned out over the values of its label(s).

    The sharded serving tier wants ``mega_shard_queries_total{shard="2"}``
    style series without forking the PR 5/6 registry: a family registers
    under its bare name exactly like any other instrument, and
    ``labels(value)`` lazily materializes one child per label value.
    ``label`` may also be a tuple of names (e.g. ``("worker", "backend")``
    for ``mega_kernel_backend``); then ``labels()`` takes one value per
    name, and ``get()`` keys children by the comma-joined values.
    ``samples()`` flattens every child under the family's single
    ``# HELP`` / ``# TYPE`` header, which is precisely the Prometheus
    exposition shape for labeled series.
    """

    _child_cls: type

    def __init__(
        self, name: str, help: str = "", label="shard"
    ) -> None:
        self.name = name
        self.help = help
        self.label = label
        self._label_names = (
            (label,) if isinstance(label, str) else tuple(label)
        )
        self._lock = threading.Lock()
        self._children: dict[tuple, object] = {}

    def _key(self, values: tuple) -> tuple:
        if len(values) != len(self._label_names):
            raise ValueError(
                f"{self.name} expects {len(self._label_names)} label "
                f"value(s) {self._label_names}, got {len(values)}"
            )
        return tuple(str(v) for v in values)

    def labels(self, *values) -> object:
        key = self._key(values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                rendered = ",".join(
                    f'{name}="{value}"'
                    for name, value in zip(self._label_names, key)
                )
                child = self._child_cls(f"{self.name}{{{rendered}}}")
                self._children[key] = child
            return child

    def get(self) -> dict:
        """``{label value(s): child value}`` for JSON surfaces and tests."""
        with self._lock:
            children = dict(self._children)
        return {",".join(key): child.get() for key, child in children.items()}

    def discard(self, *values) -> None:
        """Drop one child series (a departed follower or shard must stop
        exporting, not freeze at its last value forever)."""
        with self._lock:
            self._children.pop(self._key(values), None)

    def samples(self) -> list[tuple[str, float]]:
        with self._lock:
            children = sorted(self._children.items())
        return [(child.name, child.get()) for __, child in children]


class LabeledCounter(_LabeledFamily):
    """Counter family over one label dimension (default ``shard``)."""

    kind = "counter"
    _child_cls = Counter


class LabeledGauge(_LabeledFamily):
    """Gauge family over one label dimension (default ``shard``)."""

    kind = "gauge"
    _child_cls = Gauge


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._lock = threading.Lock()
        self._counts = [0] * len(self.bounds)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[i] += 1

    def get(self) -> dict:
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "buckets": dict(zip(self.bounds, self._counts)),
            }

    def approx_quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (Prometheus semantics).

        Returns the upper bound of the first cumulative bucket covering
        the ``q``-th observation (0.0 with no observations) — the same
        answer ``histogram_quantile`` gives a scraper, usable locally by
        health snapshots without a second latency store.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            for bound, count in zip(self.bounds, self._counts):
                if count >= rank:
                    return bound
            return self.bounds[-1]

    def samples(self) -> list[tuple[str, float]]:
        snap = self.get()
        out = [
            (f'{self.name}_bucket{{le="{_fmt(bound)}"}}', count)
            for bound, count in snap["buckets"].items()
        ]
        out.append((f'{self.name}_bucket{{le="+Inf"}}', snap["count"]))
        out.append((f"{self.name}_sum", snap["sum"]))
        out.append((f"{self.name}_count", snap["count"]))
        return out


class MetricsRegistry:
    """Named instruments, one namespace, one render call.

    Instrument creation is idempotent: asking for an existing name
    returns the existing instrument (and raises if the kind differs), so
    subsystems can register "their" metrics without coordinating.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, object] = {}

    def _register(self, name: str, factory, kind: str):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {kind}"
                    )
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "", initial: float = 0.0) -> Gauge:
        return self._register(
            name, lambda: Gauge(name, help, initial), "gauge"
        )

    def labeled_counter(
        self, name: str, help: str = "", label="shard"
    ) -> LabeledCounter:
        return self._register(
            name, lambda: LabeledCounter(name, help, label), "counter"
        )

    def labeled_gauge(
        self, name: str, help: str = "", label="shard"
    ) -> LabeledGauge:
        return self._register(
            name, lambda: LabeledGauge(name, help, label), "gauge"
        )

    def gauge_fn(self, name: str, fn, help: str = "") -> None:
        """Register (or replace) a callback gauge sampled at render time."""
        with self._lock:
            self._instruments[name] = _CallbackGauge(name, fn, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(
            name, lambda: Histogram(name, help, buckets), "histogram"
        )

    def get(self, name: str):
        with self._lock:
            return self._instruments.get(name)

    def snapshot(self) -> dict:
        """Plain ``{name: value}`` dict (histograms nest their buckets)."""
        with self._lock:
            instruments = list(self._instruments.values())
        return {inst.name: inst.get() for inst in instruments}

    def render(self) -> str:
        """Prometheus text exposition format, instruments sorted by name."""
        with self._lock:
            instruments = sorted(
                self._instruments.values(), key=lambda i: i.name
            )
        lines: list[str] = []
        for inst in instruments:
            if inst.help:
                lines.append(f"# HELP {inst.name} {inst.help}")
            lines.append(f"# TYPE {inst.name} {inst.kind}")
            for sample_name, value in inst.samples():
                lines.append(f"{sample_name} {_fmt(value)}")
        return "\n".join(lines) + "\n"
