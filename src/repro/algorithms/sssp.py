"""Single-source shortest paths.

Table 1: ``CAS_MIN(Val(v), Val(u) + wt(u, v))`` with non-negative weights.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm

__all__ = ["SSSP"]


class SSSP(Algorithm):
    """Shortest weighted distance from the source."""

    name = "SSSP"
    minimize = True
    identity = np.inf
    source_value = 0.0
    kernel_op = "plus_wt"

    def candidate(self, val_u: np.ndarray, wt: np.ndarray) -> np.ndarray:
        return val_u + wt
