"""Algorithm abstraction for delta-accumulative incremental computation.

All five paper workloads (Table 1) are monotone path-property queries: a
vertex value is the best — under a min or max order — reduction of
candidates computed along in-edges from neighbour values.  This is exactly
the DAIC model MEGA inherits from GraphPulse/JetStream: "delta" events
carry candidate values to vertices, a vertex keeps the best value seen, and
convergence is order-independent.

An :class:`Algorithm` supplies:

* ``identity`` — the no-information value (``+inf`` for min-algorithms);
* ``source_value`` — the query source's fixed value;
* ``candidate(val_u, wt)`` — the Table 1 edge function, vectorized;
* the direction of improvement (``minimize``).
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Algorithm"]


class Algorithm(abc.ABC):
    """A monotone vertex-value algorithm in the DAIC model."""

    name: str = "abstract"
    #: True for CAS_MIN-style algorithms, False for CAS_MAX-style.
    minimize: bool = True
    #: Value of a vertex that has received no information yet.
    identity: float = np.inf
    #: Fixed value of the query source vertex.
    source_value: float = 0.0
    #: Whether the edge function reads the edge weight.
    uses_weights: bool = True
    #: Name of this algorithm's edge function in the compiled kernel
    #: tier (see ``repro.perf.backend.OPS``), or None to always use the
    #: vectorized numpy round path.  Only set it when :meth:`candidate`
    #: is exactly that IEEE-754 double expression AND the class keeps the
    #: default strict-comparison ``better``/``scatter_reduce`` semantics
    #: — the compiled round fuses all three.
    kernel_op: str | None = None

    @abc.abstractmethod
    def candidate(self, val_u: np.ndarray, wt: np.ndarray) -> np.ndarray:
        """Table 1 edge function: candidate value pushed along ``(u, v)``."""

    # -- order helpers (vectorized) ----------------------------------------

    def better(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise: is ``a`` strictly better than ``b``?"""
        return a < b if self.minimize else a > b

    def better_into(
        self, a: np.ndarray, b: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """:meth:`better` into a preallocated ``out`` (engine scratch).

        The multi-version engine's round loop calls this instead of
        :meth:`better` to avoid a per-round allocation.  A subclass that
        overrides :meth:`better` with a non-strict-comparison order must
        override this too — the two must stay consistent.
        """
        if self.minimize:
            return np.less(a, b, out=out)
        return np.greater(a, b, out=out)

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise best of two value arrays."""
        return np.minimum(a, b) if self.minimize else np.maximum(a, b)

    def scatter_reduce(
        self, values: np.ndarray, index: np.ndarray, candidates: np.ndarray
    ) -> None:
        """In-place ``values[index] = best(values[index], candidates)``.

        The software analogue of the accelerator's event coalescing: many
        candidate deltas for one vertex reduce to a single best value.
        """
        if self.minimize:
            np.minimum.at(values, index, candidates)
        else:
            np.maximum.at(values, index, candidates)

    def initial_values(self, n_vertices: int, source: int) -> np.ndarray:
        values = self.identity_values(n_vertices)
        values[source] = self.source_value
        return values

    def identity_values(self, n_vertices: int) -> np.ndarray:
        """Per-vertex no-information values.

        Scalar ``identity`` for the source-based Table 1 algorithms;
        label-propagation extensions override this with per-vertex values
        (e.g. each vertex's own id).
        """
        return np.full(n_vertices, self.identity, dtype=np.float64)

    def initial_frontier(self, n_vertices: int, source: int) -> np.ndarray:
        """Vertices seeded with events at the start of a full evaluation."""
        return np.array([source], dtype=np.int64)

    @property
    def mask_value(self) -> float:
        """A scalar that can never improve any vertex (used to mask out
        candidates of absent edges / inactive versions)."""
        return np.inf if self.minimize else -np.inf

    def reached(self, values: np.ndarray) -> np.ndarray:
        """Mask of vertices that received any information."""
        return values != self.identity

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Algorithm {self.name}>"
