"""Breadth-first search as hop-count propagation.

Table 1: ``CAS_MIN(Val(v), min(Val(u) + 1, Val(v)))`` — the value of a
vertex is its hop distance from the source; edge weights are ignored.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm

__all__ = ["BFS"]


class BFS(Algorithm):
    """Hop distance from the source."""

    name = "BFS"
    minimize = True
    identity = np.inf
    source_value = 0.0
    uses_weights = False
    kernel_op = "plus_one"

    def candidate(self, val_u: np.ndarray, wt: np.ndarray) -> np.ndarray:
        return val_u + 1.0
