"""Registry of the paper's five benchmark algorithms (Table 1)."""

from __future__ import annotations

from repro.algorithms.base import Algorithm
from repro.algorithms.bfs import BFS
from repro.algorithms.ssnp import SSNP
from repro.algorithms.sssp import SSSP
from repro.algorithms.sswp import SSWP
from repro.algorithms.viterbi import Viterbi

__all__ = ["ALGORITHMS", "get_algorithm", "all_algorithms"]

ALGORITHMS: dict[str, type[Algorithm]] = {
    cls.name: cls for cls in (BFS, SSSP, SSWP, SSNP, Viterbi)
}


def get_algorithm(name: str) -> Algorithm:
    """Instantiate an algorithm by its paper name (case-insensitive)."""
    for key, cls in ALGORITHMS.items():
        if key.lower() == name.lower():
            return cls()
    raise KeyError(
        f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
    )


def all_algorithms() -> list[Algorithm]:
    """Fresh instances of all five benchmark algorithms, in paper order."""
    return [cls() for cls in ALGORITHMS.values()]
