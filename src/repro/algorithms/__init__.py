"""The paper's five benchmark algorithms (Table 1) in the DAIC model."""

from repro.algorithms.base import Algorithm
from repro.algorithms.bfs import BFS
from repro.algorithms.extensions import MinLabel, symmetrize
from repro.algorithms.registry import ALGORITHMS, all_algorithms, get_algorithm
from repro.algorithms.ssnp import SSNP
from repro.algorithms.sssp import SSSP
from repro.algorithms.sswp import SSWP
from repro.algorithms.viterbi import Viterbi

__all__ = [
    "ALGORITHMS",
    "Algorithm",
    "BFS",
    "MinLabel",
    "SSNP",
    "SSSP",
    "SSWP",
    "Viterbi",
    "symmetrize",
    "all_algorithms",
    "get_algorithm",
]
