"""Single-source widest paths.

Table 1: ``CAS_MAX(Val(v), min(Val(u), wt(u, v)))`` — the value of a path
is its narrowest edge; the query maximizes it (maximum bottleneck
bandwidth).  The source has infinite width.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm

__all__ = ["SSWP"]


class SSWP(Algorithm):
    """Widest-path (maximum bottleneck) value from the source."""

    name = "SSWP"
    minimize = False
    identity = 0.0
    source_value = np.inf
    kernel_op = "min_wt"

    def candidate(self, val_u: np.ndarray, wt: np.ndarray) -> np.ndarray:
        return np.minimum(val_u, wt)
