"""Single-source narrowest paths.

Table 1: ``CAS_MIN(Val(v), max(Val(u), wt(u, v)))`` — the value of a path
is its *widest* edge; the query minimizes it (minimax / bottleneck
shortest path).  The source contributes nothing, so its value is zero
(all weights are >= 1 in this reproduction).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm

__all__ = ["SSNP"]


class SSNP(Algorithm):
    """Narrowest-path (minimax edge weight) value from the source."""

    name = "SSNP"
    minimize = True
    identity = np.inf
    source_value = 0.0
    kernel_op = "max_wt"

    def candidate(self, val_u: np.ndarray, wt: np.ndarray) -> np.ndarray:
        return np.maximum(val_u, wt)
