"""Extension algorithms beyond the paper's Table 1 benchmark set.

:class:`MinLabel` — label-propagation connected components.  Every vertex
starts with its own id and keeps the minimum id that reaches it; on a
symmetrized (undirected) graph the fixpoint labels connected components,
the classic evolving-graph query (who is in whose contact cluster, per
snapshot).  It exercises the engine features the Table 1 algorithms do
not: per-vertex identity values and an all-vertices initial frontier.

MinLabel is deliberately *not* registered in the benchmark registry — the
paper's evaluation uses exactly the five Table 1 algorithms — but it runs
on every workflow, window, and simulator like any other algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm
from repro.graph.edges import EdgeList

__all__ = ["MinLabel", "symmetrize"]


def symmetrize(edges: EdgeList) -> EdgeList:
    """Union of the edges and their reverses (for undirected components)."""
    reverse = EdgeList(edges.n_vertices, edges.dst, edges.src, edges.wt)
    return edges.concat(reverse).deduplicate()


class MinLabel(Algorithm):
    """Minimum reaching label — connected components on symmetric graphs.

    * directed graph: ``val(v)`` = the smallest vertex id with a path to
      ``v`` (including ``v`` itself);
    * symmetrized graph: ``val(v)`` = the id of ``v``'s component
      representative.
    """

    name = "MinLabel"
    minimize = True
    identity = np.inf  # never used as a stored value; mask only
    source_value = 0.0  # unused: every vertex seeds itself
    uses_weights = False

    def candidate(self, val_u: np.ndarray, wt: np.ndarray) -> np.ndarray:
        return val_u + 0.0  # labels travel unchanged

    def identity_values(self, n_vertices: int) -> np.ndarray:
        return np.arange(n_vertices, dtype=np.float64)

    def initial_values(self, n_vertices: int, source: int) -> np.ndarray:
        return self.identity_values(n_vertices)

    def initial_frontier(self, n_vertices: int, source: int) -> np.ndarray:
        return np.arange(n_vertices, dtype=np.int64)

    def reached(self, values: np.ndarray) -> np.ndarray:
        return np.ones(values.shape, dtype=bool)
