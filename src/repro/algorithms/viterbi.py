"""Viterbi-style most-probable path.

Table 1: ``CAS_MAX(Val(v), Val(u) / wt(u, v))`` — the edge weight acts as
an inverse transition probability (weights >= 1 keep values in ``(0, 1]``
and the recurrence monotone).  The source has probability 1.
"""

from __future__ import annotations

from repro.algorithms.base import Algorithm

__all__ = ["Viterbi"]


class Viterbi(Algorithm):
    """Maximum path probability with weights as inverse probabilities."""

    name = "Viterbi"
    minimize = False
    identity = 0.0
    source_value = 1.0
    kernel_op = "div_wt"

    def candidate(self, val_u, wt):
        return val_u / wt
