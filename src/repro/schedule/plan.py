"""Workflow plans — the schedule IR shared by software engines and the
accelerator simulators.

A *plan* is the offline-generated schedule the paper describes in §3.1
(Algorithm 1 emits ``GEN [...]`` statements; our steps are their explicit
form).  Each workflow — streaming, Direct-Hop, Work-Sharing, BOE — compiles
to a linear list of steps over named value *states*:

* ``EvalFull`` — from-scratch query evaluation on a state's current graph;
* ``CopyState`` — duplicate a state (snapshot peel-off / tree branch);
* ``ApplyEdges`` — incrementally add a set of union edges to one or more
  target states *simultaneously* (the multi-target form is BOE's shared
  batch execution);
* ``DeleteEdges`` — remove edges with KickStarter repair (streaming only);
* ``MarkSnapshot`` — a state now holds a snapshot's final query values.

Plans are pure data: they can be executed (``repro.engines.executor``),
costed without execution (Fig. 3), or scheduled onto the modelled hardware
(``repro.accel``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.evolving.batches import BatchId

__all__ = [
    "EvalFull",
    "CopyState",
    "ApplyEdges",
    "DeleteEdges",
    "MarkSnapshot",
    "Step",
    "Plan",
]


@dataclass
class EvalFull:
    """Evaluate the query from scratch on ``state``'s current graph.

    ``source`` overrides the scenario's query source — used by the
    multi-query extension where each query has its own source vertex.
    """

    state: int
    label: str = "eval"
    source: int | None = None


@dataclass
class CopyState:
    """Copy values (and graph membership) from ``src`` into ``dst``."""

    src: int
    dst: int


@dataclass
class ApplyEdges:
    """Incrementally add ``edge_idx`` (union-edge slots) to every target.

    With multiple targets the step is executed as one multi-version batch:
    edges are fetched once and candidates are scattered to all target
    versions — the Batch-Oriented-Execution primitive.
    ``batches`` records which logical batches the edges came from (for
    scheduling and accounting); ``stage`` is the Algorithm 1 stage index
    when applicable.
    """

    targets: tuple[int, ...]
    edge_idx: np.ndarray
    batches: tuple[BatchId, ...] = ()
    label: str = "apply"
    #: steps sharing a stage key are mutually independent and may execute
    #: concurrently on the accelerator (any hashable key; None = ordered)
    stage: int | tuple | None = None


@dataclass
class DeleteEdges:
    """Delete ``edge_idx`` from ``state`` with dependence-tree repair."""

    state: int
    edge_idx: np.ndarray
    batches: tuple[BatchId, ...] = ()
    label: str = "delete"


@dataclass
class MarkSnapshot:
    """Declare that ``state`` now holds snapshot ``snapshot``'s results."""

    state: int
    snapshot: int


Step = EvalFull | CopyState | ApplyEdges | DeleteEdges | MarkSnapshot


@dataclass
class Plan:
    """An ordered workflow schedule plus bookkeeping metadata."""

    name: str
    n_states: int
    steps: list[Step] = field(default_factory=list)
    #: which union-edge mask each state starts from ("common" | "snapshot0")
    initial_graph: str = "common"

    def applied_edge_total(self) -> int:
        """Total edges applied across all ``ApplyEdges`` steps and targets.

        This is the paper's Fig. 3 metric ("number of additions"): an edge
        applied to ``k`` target states counts ``k`` times.
        """
        return sum(
            int(s.edge_idx.size) * len(s.targets)
            for s in self.steps
            if isinstance(s, ApplyEdges)
        )

    def deleted_edge_total(self) -> int:
        return sum(
            int(s.edge_idx.size)
            for s in self.steps
            if isinstance(s, DeleteEdges)
        )

    def batch_applications(self) -> int:
        """Number of (batch, state) incremental applications."""
        count = 0
        for s in self.steps:
            if isinstance(s, ApplyEdges):
                count += max(1, len(s.batches)) * len(s.targets)
            elif isinstance(s, DeleteEdges):
                count += max(1, len(s.batches))
        return count

    def snapshots_marked(self) -> list[int]:
        return [s.snapshot for s in self.steps if isinstance(s, MarkSnapshot)]
