"""Batch-Oriented-Execution schedule generation (paper §3.1, Algorithm 1).

BOE processes one batch at a time and applies it to *every* snapshot that
needs it, simultaneously:

* stages run ``i = N-2 .. 0``; each stage handles the pair
  ``(Δ+_i, Δ-_i)`` (Algorithm 1's main loop);
* the deletion batch ``Δ-_i`` (an addition from the CommonGraph) is shared
  by snapshots ``0..i``, which at stage ``i`` are still *identical* — it is
  computed once on the shared chain state and the result is used by all of
  them (Algorithm 1 lines 18-23: one ``incremental-Query`` then copies);
* the addition batch ``Δ+_i`` targets snapshots ``i+1..N-1``, which have
  diverged — it is computed for each concurrently with shared edge fetches
  (Algorithm 1 lines 14-17, one multi-target ``ApplyEdges`` step).

Snapshot ``i+1`` "peels off" the shared chain at stage ``i``: it already
holds all its deletion batches (``j >= i+1``) and from now on only receives
addition batches.
"""

from __future__ import annotations

import numpy as np

from repro.evolving.batches import BatchId, BatchKind
from repro.evolving.unified_csr import UnifiedCSR
from repro.schedule.plan import ApplyEdges, CopyState, EvalFull, MarkSnapshot, Plan

__all__ = ["boe_plan"]


def boe_plan(unified: UnifiedCSR) -> Plan:
    """Algorithm 1: the offline BOE schedule for ``N`` snapshots.

    State layout: state ``0`` is the shared chain (ends as snapshot 0);
    state ``k`` (``1 <= k <= N-1``) is snapshot ``k`` once peeled off.
    """
    n = unified.n_snapshots
    plan = Plan(name="boe", n_states=n, initial_graph="common")
    chain = 0
    plan.steps.append(EvalFull(chain, label="eval-Gc"))
    if n == 1:
        plan.steps.append(MarkSnapshot(chain, 0))
        return plan

    for i in range(n - 2, -1, -1):
        # Peel snapshot i+1 off the shared chain before this stage's
        # addition batch diverges it from snapshots <= i.
        plan.steps.append(CopyState(chain, i + 1))

        add_id = BatchId(BatchKind.ADDITION, i)
        add_idx = np.flatnonzero(unified.batch_mask(add_id))
        targets = tuple(range(i + 1, n))
        plan.steps.append(
            ApplyEdges(targets, add_idx, (add_id,), label=f"boe-{add_id}", stage=i)
        )

        del_id = BatchId(BatchKind.DELETION, i)
        del_idx = np.flatnonzero(unified.batch_mask(del_id))
        plan.steps.append(
            ApplyEdges((chain,), del_idx, (del_id,), label=f"boe-{del_id}", stage=i)
        )

    plan.steps.append(MarkSnapshot(chain, 0))
    for k in range(1, n):
        plan.steps.append(MarkSnapshot(k, k))
    return plan
