"""The streaming workflow (KickStarter/JetStream baseline).

Evaluate the query on ``G_0`` from scratch, then stream batch pairs
``(Δ+_j, Δ-_j)`` snapshot by snapshot, incrementally repairing the results.
This is the sequential baseline MEGA's deletion-free workflows are measured
against (paper §2, Fig. 2 and Table 4 "JetStream Time").
"""

from __future__ import annotations

import numpy as np

from repro.evolving.batches import BatchId, BatchKind
from repro.evolving.unified_csr import UnifiedCSR
from repro.schedule.plan import (
    ApplyEdges,
    DeleteEdges,
    EvalFull,
    MarkSnapshot,
    Plan,
)

__all__ = ["streaming_plan"]


def streaming_plan(unified: UnifiedCSR) -> Plan:
    """Sequential snapshot-by-snapshot plan with additions and deletions."""
    n = unified.n_snapshots
    plan = Plan(name="streaming", n_states=1, initial_graph="snapshot0")
    state = 0
    plan.steps.append(EvalFull(state, label="eval-G0"))
    plan.steps.append(MarkSnapshot(state, 0))
    for j in range(n - 1):
        add_id = BatchId(BatchKind.ADDITION, j)
        del_id = BatchId(BatchKind.DELETION, j)
        add_idx = np.flatnonzero(unified.batch_mask(add_id))
        del_idx = np.flatnonzero(unified.batch_mask(del_id))
        plan.steps.append(
            ApplyEdges((state,), add_idx, (add_id,), label=f"stream-{add_id}")
        )
        plan.steps.append(
            DeleteEdges(state, del_idx, (del_id,), label=f"stream-{del_id}")
        )
        plan.steps.append(MarkSnapshot(state, j + 1))
    return plan
