"""Workflow schedules: plan IR + streaming / Direct-Hop / Work-Sharing / BOE."""

from repro.schedule.boe import boe_plan
from repro.schedule.direct_hop import direct_hop_plan
from repro.schedule.plan import (
    ApplyEdges,
    CopyState,
    DeleteEdges,
    EvalFull,
    MarkSnapshot,
    Plan,
    Step,
)
from repro.schedule.scatter import merge_triples, route_by_owner, seed_triples
from repro.schedule.streaming import streaming_plan
from repro.schedule.work_sharing import work_sharing_plan

__all__ = [
    "ApplyEdges",
    "CopyState",
    "DeleteEdges",
    "EvalFull",
    "MarkSnapshot",
    "Plan",
    "Step",
    "boe_plan",
    "direct_hop_plan",
    "merge_triples",
    "route_by_owner",
    "seed_triples",
    "streaming_plan",
    "work_sharing_plan",
]

WORKFLOWS = {
    "streaming": streaming_plan,
    "direct-hop": direct_hop_plan,
    "work-sharing": work_sharing_plan,
    "boe": boe_plan,
}


def plan_for(workflow: str, unified) -> Plan:
    """Build the plan for a workflow by name."""
    try:
        factory = WORKFLOWS[workflow]
    except KeyError:
        raise KeyError(
            f"unknown workflow {workflow!r}; choose from {sorted(WORKFLOWS)}"
        ) from None
    return factory(unified)
