"""The Work-Sharing workflow (paper Fig. 1c).

Walk the triangular grid: recursively bisect the snapshot window, hopping
from each intermediate common graph to the common graphs of its two halves,
sharing each hop's incremental computation among all snapshots below it.
Applied-edge totals land at roughly twice the streaming count (Fig. 3), in
exchange for eliminating deletions entirely.
"""

from __future__ import annotations

import numpy as np

from repro.evolving.batches import BatchId, BatchKind
from repro.evolving.triangular_grid import GridNode, TriangularGrid
from repro.evolving.unified_csr import UnifiedCSR
from repro.schedule.plan import ApplyEdges, CopyState, EvalFull, MarkSnapshot, Plan

__all__ = ["work_sharing_plan", "hop_batch_ids"]


def hop_batch_ids(parent: GridNode, child: GridNode, n_snapshots: int) -> tuple[BatchId, ...]:
    """Logical batches applied when hopping from parent ICG to child ICG.

    Narrowing ``[lo, hi]`` to the left half adds the deletion batches
    ``Δ-_j`` for ``j in [child.hi, parent.hi - 1]`` (edges that are deleted
    later than the child's window, hence common to it); narrowing to the
    right half adds the addition batches ``Δ+_j`` for
    ``j in [parent.lo, child.lo - 1]``.
    """
    if child.lo == parent.lo:  # left child: extra deletion batches
        return tuple(
            BatchId(BatchKind.DELETION, j)
            for j in range(parent.hi - 1, child.hi - 1, -1)
        )
    return tuple(
        BatchId(BatchKind.ADDITION, j) for j in range(parent.lo, child.lo)
    )


def work_sharing_plan(unified: UnifiedCSR) -> Plan:
    """Depth-first triangular-grid plan with one state per grid node."""
    grid = TriangularGrid(unified)
    plan = Plan(name="work-sharing", n_states=0, initial_graph="common")

    state_of: dict[int, int] = {}

    def state_for(node: GridNode) -> int:
        key = id(node)
        if key not in state_of:
            state_of[key] = len(state_of)
        return state_of[key]

    root_state = state_for(grid.root)
    plan.steps.append(EvalFull(root_state, label="eval-Gc"))
    if grid.root.is_leaf:
        plan.steps.append(MarkSnapshot(root_state, grid.root.snapshot))

    def visit(node: GridNode, depth: int = 1) -> None:
        for child in node.children:
            child_state = state_for(child)
            plan.steps.append(CopyState(state_for(node), child_state))
            batch_ids = hop_batch_ids(node, child, unified.n_snapshots)
            # Each hop is a chain of per-batch incremental updates
            # (Fig. 1c's "Δ-_{i+2} + Δ-_{i+1}" labels).  The two sibling
            # hops under one grid node are independent and share a
            # scheduler wave position by position; positions within a hop
            # are ordered (they chain through the same state).
            for pos, batch_id in enumerate(batch_ids):
                edge_idx = np.flatnonzero(unified.batch_mask(batch_id))
                plan.steps.append(
                    ApplyEdges(
                        (child_state,),
                        edge_idx,
                        (batch_id,),
                        label=f"ws-hop[{child.lo},{child.hi}]-{batch_id}",
                        stage=(node.lo, node.hi, pos),
                    )
                )
            if child.is_leaf:
                plan.steps.append(MarkSnapshot(child_state, child.snapshot))
            else:
                visit(child, depth + 1)

    visit(grid.root)
    plan.n_states = len(state_of)
    return plan
