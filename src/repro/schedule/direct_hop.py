"""The Direct-Hop workflow (paper Fig. 1b).

From the CommonGraph, hop to every snapshot directly by adding all of its
missing edges in one incremental step.  Deletion-free and embarrassingly
parallel across snapshots, but each hop repeats work other hops also do —
Fig. 3 shows ~``N/2`` times more applied additions than streaming.
"""

from __future__ import annotations

import numpy as np

from repro.evolving.common_graph import batches_for_snapshot
from repro.evolving.unified_csr import UnifiedCSR
from repro.schedule.plan import ApplyEdges, CopyState, EvalFull, MarkSnapshot, Plan

__all__ = ["direct_hop_plan"]


def direct_hop_plan(unified: UnifiedCSR) -> Plan:
    """One shared CommonGraph evaluation, then one hop per snapshot."""
    n = unified.n_snapshots
    plan = Plan(name="direct-hop", n_states=n + 1, initial_graph="common")
    common_state = 0
    plan.steps.append(EvalFull(common_state, label="eval-Gc"))
    for k in range(n):
        state = k + 1
        plan.steps.append(CopyState(common_state, state))
        # Fig. 7(b): each snapshot's hop is a *chain* of per-batch
        # incremental updates from the CommonGraph results.  Chains for
        # different snapshots are mutually independent and may execute
        # concurrently on MEGA (stage groups per chain position).
        for pos, batch_id in enumerate(batches_for_snapshot(unified, k)):
            edge_idx = np.flatnonzero(unified.batch_mask(batch_id))
            plan.steps.append(
                ApplyEdges(
                    (state,),
                    edge_idx,
                    (batch_id,),
                    label=f"hop-G{k}-{batch_id}",
                    stage=pos + 1,
                )
            )
        plan.steps.append(MarkSnapshot(state, k))
    return plan
