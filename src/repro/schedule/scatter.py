"""Scatter planning over a vertex-partitioned evolving graph.

The sharded serving tier (``repro.service.sharding``) evaluates one query
as rounds of per-shard relaxation with cross-shard frontier exchange — the
massively-parallel-computation framing of streaming graph algorithms: each
machine holds a sublinear slice of the edges and rounds exchange only the
boundary values that improved.  This module is the pure-numpy planning
layer: it knows how to seed a multi-state scatter and how to route
``(vertex, state, value)`` triples to the shards that own the vertices,
and it imports nothing from the service so the schedule package stays a
leaf dependency.

State ids follow the multi-query BOE layout
(:mod:`repro.core.multi_query`): query ``q``'s snapshot ``k`` is state
``q * n_snapshots + k``, so state ``s`` evaluates snapshot ``s %
n_snapshots`` and gathered rows drop straight into a
``MultiQueryResult``-shaped value matrix.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm
from repro.graph.partition import VertexPartitioner

__all__ = ["seed_triples", "route_by_owner", "merge_triples"]


def seed_triples(
    sources: tuple[int, ...] | list[int],
    n_snapshots: int,
    algorithm: Algorithm,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Initial ``(vertex, state, value)`` triples of a scatter evaluation.

    Every query's source vertex is seeded with ``source_value`` in each of
    its ``n_snapshots`` states — the scatter analogue of
    ``initial_values`` applied across the whole (query, snapshot) matrix.
    """
    q = len(sources)
    vertices = np.repeat(np.asarray(sources, dtype=np.int64), n_snapshots)
    states = np.arange(q * n_snapshots, dtype=np.int64)
    values = np.full(q * n_snapshots, algorithm.source_value, dtype=np.float64)
    return vertices, states, values


def route_by_owner(
    partitioner: VertexPartitioner,
    vertices: np.ndarray,
    states: np.ndarray,
    values: np.ndarray,
) -> dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Group triples by the shard owning each vertex.

    One stable argsort over the owner ids, then one contiguous slice per
    shard — no per-shard boolean scans.  Returns only shards that own at
    least one triple, so empty shards cost nothing in the exchange.
    """
    if vertices.size == 0:
        return {}
    owners = np.asarray(partitioner.partition_of(vertices))
    order = np.argsort(owners, kind="stable")
    owners = owners[order]
    v, s, val = vertices[order], states[order], values[order]
    shard_ids, starts = np.unique(owners, return_index=True)
    bounds = np.append(starts, owners.size)
    return {
        int(shard): (v[a:b], s[a:b], val[a:b])
        for shard, a, b in zip(shard_ids, bounds[:-1], bounds[1:])
    }


def merge_triples(
    algorithm: Algorithm,
    values: np.ndarray,
    vertices: np.ndarray,
    states: np.ndarray,
    candidates: np.ndarray,
) -> None:
    """Fold ``(vertex, state, value)`` triples into a value matrix.

    ``values`` is the front-end's ``(n_states, n_vertices)`` global state;
    the reduction is the algorithm's own ``scatter_reduce`` on the
    flattened matrix, so duplicate candidates for one cell coalesce to the
    best exactly as the accelerator's event queue would.
    """
    if vertices.size == 0:
        return
    n = values.shape[1]
    algorithm.scatter_reduce(
        values.reshape(-1), states * n + vertices, candidates
    )
