"""The high-level public API: one object from scenario to results.

:class:`EvolvingGraphEngine` ties the substrates together for downstream
users: pick a workload and an algorithm, then evaluate (any workflow),
window, profile reuse, or run the accelerator models — with ground-truth
validation one flag away.

    >>> from repro.core import EvolvingGraphEngine
    >>> from repro.workloads import load_scenario
    >>> engine = EvolvingGraphEngine(load_scenario("PK", "tiny"), "sssp")
    >>> values = engine.evaluate().values(3)          # snapshot 3, BOE
    >>> reports = engine.compare_accelerators()       # Table 4 row
"""

from __future__ import annotations

from repro.accel import JetStreamSimulator, MegaSimulator
from repro.accel.config import AcceleratorConfig
from repro.accel.stats import SimReport
from repro.algorithms import get_algorithm
from repro.algorithms.base import Algorithm
from repro.core.multi_query import MultiQueryResult, evaluate_multi_query
from repro.engines.executor import PlanExecutor, WorkflowResult
from repro.engines.validation import validate_workflow
from repro.evolving.snapshots import EvolvingScenario
from repro.evolving.window import window_scenario
from repro.metrics import (
    edge_reuse_across_snapshots,
    edge_reuse_same_snapshot,
)
from repro.schedule import WORKFLOWS, plan_for

__all__ = ["EvolvingGraphEngine"]


class EvolvingGraphEngine:
    """Evaluate one algorithm over an evolving-graph scenario."""

    def __init__(
        self,
        scenario: EvolvingScenario,
        algorithm: Algorithm | str = "sssp",
    ) -> None:
        self.scenario = scenario
        self.algorithm = (
            get_algorithm(algorithm) if isinstance(algorithm, str) else algorithm
        )

    # -- functional evaluation ------------------------------------------------

    def evaluate(
        self, workflow: str = "boe", validate: bool = False
    ) -> WorkflowResult:
        """Query values on every snapshot via the chosen workflow."""
        if workflow not in WORKFLOWS:
            raise KeyError(
                f"unknown workflow {workflow!r}; choose from {sorted(WORKFLOWS)}"
            )
        result = PlanExecutor(self.scenario, self.algorithm).run(
            plan_for(workflow, self.scenario.unified)
        )
        if validate:
            validate_workflow(self.scenario, self.algorithm, result)
        return result

    def evaluate_window(
        self, lo: int, hi: int, workflow: str = "boe", validate: bool = False
    ) -> WorkflowResult:
        """Ad-hoc query over snapshots ``lo..hi`` only."""
        sub = window_scenario(self.scenario, lo, hi)
        result = PlanExecutor(sub, self.algorithm).run(
            plan_for(workflow, sub.unified)
        )
        if validate:
            validate_workflow(sub, self.algorithm, result)
        return result

    def evaluate_multi_query(self, sources: list[int]) -> MultiQueryResult:
        """One algorithm, many sources, all snapshots — shared fetches."""
        return evaluate_multi_query(self.scenario, self.algorithm, sources)

    def serve(self):
        """A sliding :class:`~repro.core.window_server.WindowServer` over
        this scenario — evaluate once, then advance() as time moves on."""
        from repro.core.window_server import WindowServer

        return WindowServer(self.scenario, self.algorithm)

    # -- profiling --------------------------------------------------------------

    def reuse_profile(self) -> dict[str, float]:
        """The Fig. 4 / Fig. 5 locality asymmetry for this workload."""
        return {
            "same_snapshot": edge_reuse_same_snapshot(
                self.scenario, self.algorithm
            ),
            "across_snapshots": edge_reuse_across_snapshots(
                self.scenario, self.algorithm
            ),
        }

    # -- accelerator models --------------------------------------------------------

    def simulate_jetstream(
        self, config: AcceleratorConfig | None = None, validate: bool = False
    ) -> SimReport:
        return JetStreamSimulator(config).run(
            self.scenario, self.algorithm, validate=validate
        )

    def simulate_mega(
        self,
        workflow: str = "boe",
        pipeline: bool = True,
        config: AcceleratorConfig | None = None,
        validate: bool = False,
    ) -> SimReport:
        return MegaSimulator(workflow, pipeline=pipeline, config=config).run(
            self.scenario, self.algorithm, validate=validate
        )

    def compare_accelerators(self) -> dict[str, SimReport]:
        """One Table 4 row: JetStream plus all four MEGA variants."""
        out = {"jetstream": self.simulate_jetstream()}
        for workflow, pipeline in [
            ("direct-hop", False),
            ("work-sharing", False),
            ("boe", False),
            ("boe", True),
        ]:
            key = workflow + ("+bp" if pipeline else "")
            out[key] = self.simulate_mega(workflow, pipeline=pipeline)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EvolvingGraphEngine({self.scenario.name!r}, "
            f"{self.algorithm.name}, {self.scenario.n_snapshots} snapshots)"
        )
