"""Continuous serving: slide the evolving window forward in place.

The paper's workloads analyze a *fixed* historical window; a deployed
system keeps serving as time moves on.  :class:`WindowServer` holds the
current window's results and advances one snapshot at a time:

* the window ``[0..N-1]`` becomes ``[1..N]``: snapshot tags shift down,
  edges that existed only in the dropped snapshot leave the union, and
  additions that arrived at the first transition join the common graph;
* results for the surviving snapshots are *reused untouched*;
* only the new latest snapshot is computed, incrementally from the
  previous latest — additions propagate directly, deletions run the
  KickStarter repair against a dependence tree reconstructed from the
  converged values (union slots re-index on every slide, so live parent
  tracking would not survive; see
  :func:`repro.engines.deletion.reconstruct_parents`).

CommonGraph's one-change-per-edge rule applies across the *current*
window: deleting an edge that was added inside it is rejected with the
same guidance the builder gives (split the window first).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm
from repro.engines.daic import MultiVersionEngine
from repro.engines.deletion import DeletionRepair, reconstruct_parents
from repro.engines.executor import PlanExecutor
from repro.evolving.snapshots import EvolvingScenario
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import CSRGraph
from repro.graph.edges import EdgeList, edge_keys
from repro.schedule.boe import boe_plan

__all__ = ["WindowServer"]


class WindowServer:
    """Holds one evolving window's results and slides it forward."""

    def __init__(self, scenario: EvolvingScenario, algorithm: Algorithm) -> None:
        self.scenario = scenario
        self.algorithm = algorithm
        result = PlanExecutor(scenario, algorithm).run(
            boe_plan(scenario.unified)
        )
        self._values = [
            result.values(k) for k in range(scenario.n_snapshots)
        ]
        self.slides = 0

    # -- queries ---------------------------------------------------------------

    @property
    def n_snapshots(self) -> int:
        return self.scenario.n_snapshots

    def values(self, snapshot: int) -> np.ndarray:
        return self._values[snapshot]

    def latest(self) -> np.ndarray:
        return self._values[-1]

    def as_result(self):
        """The current window as a result object the analysis toolkit
        accepts (``repro.analysis.track_*`` take any object exposing
        ``snapshot_values`` and ``values``)."""

        class _WindowResult:
            def __init__(inner, values_list):
                inner.snapshot_values = dict(enumerate(values_list))

            def values(inner, k):
                return inner.snapshot_values[k]

        return _WindowResult(self._values)

    # -- sliding ---------------------------------------------------------------

    def advance(
        self,
        additions: EdgeList | None = None,
        deletions: list[tuple[int, int]] | None = None,
    ) -> None:
        """Apply one new transition and slide the window by one snapshot."""
        u = self.scenario.unified
        graph = u.graph
        n = u.n_snapshots
        n_vertices = u.n_vertices
        additions = additions or EdgeList.from_tuples(n_vertices, [])
        deletions = deletions or []
        if additions.n_vertices != n_vertices:
            raise ValueError("additions must share the window's vertex set")

        # CSR order sorts by (src, dst), so the union keys are sorted and
        # slot lookup is a binary search.
        union_keys = edge_keys(graph.src_of_edge, graph.dst, n_vertices)

        def slots_of(keys: np.ndarray) -> np.ndarray:
            """Union slot per key; -1 where the key is not in the union."""
            pos = np.searchsorted(union_keys, keys)
            pos = np.minimum(pos, union_keys.size - 1)
            hit = union_keys.size > 0
            found = hit & (union_keys[pos] == keys)
            return np.where(found, pos, -1)

        # -- validate the new batches against the CommonGraph rule --------
        last_presence = u.presence_mask(n - 1)
        del_pairs = np.asarray(deletions, dtype=np.int64).reshape(-1, 2)
        del_slot_arr = slots_of(
            del_pairs[:, 0] * n_vertices + del_pairs[:, 1]
        )
        bad = (del_slot_arr < 0) | ~last_presence[
            np.maximum(del_slot_arr, 0)
        ]
        if np.any(bad):
            s, d = del_pairs[np.flatnonzero(bad)[0]]
            raise ValueError(
                f"cannot delete edge ({s}, {d}): not present in the "
                "latest snapshot"
            )
        internal = u.add_step[del_slot_arr] >= 1
        if np.any(internal):
            s, d = del_pairs[np.flatnonzero(internal)[0]]
            raise ValueError(
                f"edge ({s}, {d}) was added inside the current window; "
                "one state change per edge per window — split the "
                "window before deleting it"
            )
        del_slots = del_slot_arr.tolist()

        add_key_arr = additions.keys
        if np.unique(add_key_arr).size != len(additions):
            raise ValueError("additions contain duplicate pairs")
        add_existing = slots_of(add_key_arr)
        known = add_existing >= 0
        if np.any(known & last_presence[np.maximum(add_existing, 0)]):
            raise ValueError("additions duplicate a live edge")
        if np.any(known & (u.del_step[np.maximum(add_existing, 0)] >= 1)):
            raise ValueError(
                "re-adding an edge deleted inside the current window; "
                "split the window first"
            )

        # -- compute the new latest snapshot's values ----------------------
        latest = self._values[-1].copy()
        engine = MultiVersionEngine(
            self.algorithm, u, track_parents=bool(del_slots)
        )
        if del_slots:
            reconstruct_parents(
                engine, latest, last_presence, self.scenario.source
            )
            presence_after = last_presence.copy()
            presence_after[del_slots] = False
            DeletionRepair(engine).apply_deletions(
                latest,
                np.asarray(del_slots, dtype=np.int64),
                presence_after,
                self.scenario.source,
            )

        # -- rebuild the union with shifted tags ---------------------------
        keep = u.del_step != 0  # snapshot-0-only edges leave the window
        add_step = u.add_step[keep].astype(np.int64)
        del_step = u.del_step[keep].astype(np.int64)
        add_step = np.where(add_step > 0, add_step - 1, -1)
        del_step = np.where(del_step > 0, del_step - 1, del_step)
        # deletions of the new transition: locate slots post-filter
        old_to_new = np.cumsum(keep) - 1
        for slot in del_slots:
            del_step[old_to_new[slot]] = n - 2

        pool = EdgeList(
            n_vertices,
            np.concatenate([graph.src_of_edge[keep], additions.src]),
            np.concatenate([graph.dst[keep], additions.dst]),
            np.concatenate([graph.wt[keep], additions.wt]),
        )
        add_step = np.concatenate(
            [add_step, np.full(len(additions), n - 2, dtype=np.int64)]
        )
        del_step = np.concatenate(
            [del_step, np.full(len(additions), -1, dtype=np.int64)]
        )
        order = np.lexsort((pool.dst, pool.src))
        new_unified = UnifiedCSR(
            CSRGraph.from_edges(pool),
            add_step[order].astype(np.int32),
            del_step[order].astype(np.int32),
            n,
        )
        self.scenario = EvolvingScenario(
            new_unified,
            source=self.scenario.source,
            name=self.scenario.name,
            metadata=dict(self.scenario.metadata),
        )

        # -- apply the additions on the new union, then slide results ------
        if len(additions):
            new_keys = edge_keys(
                new_unified.graph.src_of_edge,
                new_unified.graph.dst,
                n_vertices,
            )
            add_slots = np.searchsorted(new_keys, additions.keys)
            engine2 = MultiVersionEngine(self.algorithm, new_unified)
            engine2.apply_additions(
                latest[None, :],
                add_slots,
                new_unified.presence_mask(n - 1)[None, :],
            )

        self._values = self._values[1:] + [latest]
        self.slides += 1
