"""Continuous serving: slide the evolving window forward in place.

The paper's workloads analyze a *fixed* historical window; a deployed
system keeps serving as time moves on.  :class:`WindowServer` holds the
current window's results and advances one snapshot at a time:

* the window ``[0..N-1]`` becomes ``[1..N]``: snapshot tags shift down,
  edges that existed only in the dropped snapshot leave the union, and
  additions that arrived at the first transition join the common graph;
* results for the surviving snapshots are *reused untouched*;
* only the new latest snapshot is computed, incrementally from the
  previous latest — additions propagate directly, deletions run the
  KickStarter repair against a dependence tree reconstructed from the
  converged values (union slots re-index on every slide, so live parent
  tracking would not survive; see
  :func:`repro.engines.deletion.reconstruct_parents`).

CommonGraph's one-change-per-edge rule applies across the *current*
window: deleting an edge that was added inside it is rejected with the
same guidance the builder gives (split the window first).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm
from repro.engines.daic import MultiVersionEngine
from repro.engines.deletion import DeletionRepair, reconstruct_parents
from repro.engines.executor import PlanExecutor
from repro.evolving.snapshots import EvolvingScenario
from repro.evolving.window import slide_window
from repro.graph.edges import EdgeList
from repro.schedule.boe import boe_plan

__all__ = ["WindowServer"]


class WindowServer:
    """Holds one evolving window's results and slides it forward."""

    def __init__(self, scenario: EvolvingScenario, algorithm: Algorithm) -> None:
        self.scenario = scenario
        self.algorithm = algorithm
        result = PlanExecutor(scenario, algorithm).run(
            boe_plan(scenario.unified)
        )
        self._values = [
            result.values(k) for k in range(scenario.n_snapshots)
        ]
        self.slides = 0
        #: stable-vertex accounting ("Analysis of Stable Vertex Values"):
        #: after each advance, ``last_stable`` marks the vertices whose
        #: latest value is provably unchanged — no retired edge on any
        #: path of the KickStarter parent forest that determined them and
        #: no improvement from an arriving edge — so incremental serving
        #: reuses them verbatim.  The totals accumulate a reuse rate.
        self.last_stable: np.ndarray | None = None
        self.stable_vertices = 0
        self.slide_vertices = 0

    # -- queries ---------------------------------------------------------------

    @property
    def n_snapshots(self) -> int:
        return self.scenario.n_snapshots

    def values(self, snapshot: int) -> np.ndarray:
        return self._values[snapshot]

    def latest(self) -> np.ndarray:
        return self._values[-1]

    @property
    def stable_rate(self) -> float:
        """Fraction of vertices reused (not recomputed) across all
        advances so far; 0.0 before the first advance."""
        if not self.slide_vertices:
            return 0.0
        return self.stable_vertices / self.slide_vertices

    def as_result(self):
        """The current window as a result object the analysis toolkit
        accepts (``repro.analysis.track_*`` take any object exposing
        ``snapshot_values`` and ``values``)."""

        class _WindowResult:
            def __init__(inner, values_list):
                inner.snapshot_values = dict(enumerate(values_list))

            def values(inner, k):
                return inner.snapshot_values[k]

        return _WindowResult(self._values)

    # -- sliding ---------------------------------------------------------------

    def advance(
        self,
        additions: EdgeList | None = None,
        deletions: list[tuple[int, int]] | None = None,
    ) -> None:
        """Apply one new transition and slide the window by one snapshot."""
        u = self.scenario.unified
        n = u.n_snapshots
        n_vertices = u.n_vertices
        additions = additions or EdgeList.from_tuples(n_vertices, [])
        deletions = deletions or []

        # Validate against the CommonGraph rule and rebuild the union with
        # shifted tags (pure; the old unified stays usable for repair).
        last_presence = u.presence_mask(n - 1)
        slide = slide_window(u, additions, deletions)
        del_slots = slide.del_slots.tolist()

        # -- compute the new latest snapshot's values ----------------------
        latest = self._values[-1].copy()
        # Anything NOT in `unstable` at the end of the advance kept its
        # value bit-for-bit: the deletion repair tags exactly the vertices
        # whose parent-forest support touched a retired edge, and the
        # addition pass only writes vertices an arriving edge improved.
        unstable = np.zeros(n_vertices, dtype=bool)
        engine = MultiVersionEngine(
            self.algorithm, u, track_parents=bool(del_slots)
        )
        if del_slots:
            reconstruct_parents(
                engine, latest, last_presence, self.scenario.source
            )
            presence_after = last_presence.copy()
            presence_after[del_slots] = False
            stats = DeletionRepair(engine).apply_deletions(
                latest,
                np.asarray(del_slots, dtype=np.int64),
                presence_after,
                self.scenario.source,
            )
            if stats.tagged_mask is not None:
                unstable |= stats.tagged_mask

        new_unified = slide.unified
        self.scenario = EvolvingScenario(
            new_unified,
            source=self.scenario.source,
            name=self.scenario.name,
            metadata=dict(self.scenario.metadata),
        )

        # -- apply the additions on the new union, then slide results ------
        if len(additions):
            before_add = latest.copy()
            engine2 = MultiVersionEngine(self.algorithm, new_unified)
            engine2.apply_additions(
                latest[None, :],
                slide.add_slots,
                new_unified.presence_mask(n - 1)[None, :],
            )
            unstable |= latest != before_add

        self.last_stable = ~unstable
        self.stable_vertices += int(self.last_stable.sum())
        self.slide_vertices += n_vertices
        self._values = self._values[1:] + [latest]
        self.slides += 1
