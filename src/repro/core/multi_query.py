"""Multi-query Batch-Oriented-Execution (extension).

The related-work section contrasts MEGA with systems that evaluate multiple
*queries* concurrently on a single graph (Krill, GraphM, Glign); MEGA is
the first to exploit parallelism across *snapshots*.  The two compose: the
unified value array generalizes from one row per snapshot to one row per
``(query, snapshot)`` pair, so one addition batch is fetched **once** and
its incremental computation is shared across every query *and* every
snapshot that needs it.

Queries must share the algorithm (the PE's edge function is fixed per run,
Table 1) but each has its own source vertex — e.g. shortest paths from
many depots over the whole history in one pass.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm
from repro.engines.executor import PlanExecutor, WorkflowResult
from repro.evolving.batches import BatchId, BatchKind
from repro.evolving.snapshots import EvolvingScenario
from repro.evolving.unified_csr import UnifiedCSR
from repro.schedule.plan import ApplyEdges, CopyState, EvalFull, MarkSnapshot, Plan

__all__ = ["multi_query_boe_plan", "MultiQueryResult", "evaluate_multi_query"]


def multi_query_boe_plan(unified: UnifiedCSR, sources: list[int]) -> Plan:
    """Algorithm 1 generalized to ``Q`` concurrent sources.

    State layout: query ``q`` owns states ``q*N .. q*N + N-1`` with the
    same chain/peel structure as the single-query BOE plan; every batch
    step carries the targets of *all* queries so the executor fetches the
    batch once for the whole ``(query, snapshot)`` matrix.
    """
    if not sources:
        raise ValueError("need at least one query source")
    n = unified.n_snapshots
    q_count = len(sources)
    plan = Plan(
        name=f"boe-multiquery[{q_count}]",
        n_states=q_count * n,
        initial_graph="common",
    )

    def state(q: int, k: int) -> int:
        return q * n + k

    for q, source in enumerate(sources):
        plan.steps.append(
            EvalFull(state(q, 0), label=f"eval-Gc-q{q}", source=source)
        )
    if n == 1:
        for q in range(q_count):
            plan.steps.append(MarkSnapshot(state(q, 0), 0))
        return plan

    for i in range(n - 2, -1, -1):
        for q in range(q_count):
            plan.steps.append(CopyState(state(q, 0), state(q, i + 1)))

        add_id = BatchId(BatchKind.ADDITION, i)
        add_idx = np.flatnonzero(unified.batch_mask(add_id))
        add_targets = tuple(
            state(q, k) for q in range(q_count) for k in range(i + 1, n)
        )
        plan.steps.append(
            ApplyEdges(
                add_targets, add_idx, (add_id,), label=f"mq-{add_id}", stage=i
            )
        )

        del_id = BatchId(BatchKind.DELETION, i)
        del_idx = np.flatnonzero(unified.batch_mask(del_id))
        del_targets = tuple(state(q, 0) for q in range(q_count))
        plan.steps.append(
            ApplyEdges(
                del_targets, del_idx, (del_id,), label=f"mq-{del_id}", stage=i
            )
        )

    for q in range(q_count):
        plan.steps.append(MarkSnapshot(state(q, 0), q * n + 0))
        for k in range(1, n):
            plan.steps.append(MarkSnapshot(state(q, k), q * n + k))
    return plan


class MultiQueryResult:
    """Values per (query, snapshot), plus the underlying traces."""

    def __init__(
        self, n_snapshots: int, sources: list[int], raw: WorkflowResult
    ) -> None:
        self.n_snapshots = n_snapshots
        self.sources = list(sources)
        self.raw = raw

    def values(self, query: int, snapshot: int) -> np.ndarray:
        if not 0 <= query < len(self.sources):
            raise IndexError(f"query {query} out of range")
        return self.raw.snapshot_values[query * self.n_snapshots + snapshot]

    @property
    def collector(self):
        return self.raw.collector


def evaluate_multi_query(
    scenario: EvolvingScenario,
    algorithm: Algorithm,
    sources: list[int],
    budget=None,
) -> MultiQueryResult:
    """Evaluate one algorithm from many sources over every snapshot.

    All queries share each batch's edge fetches (one multi-target step per
    batch), so the trace-level fetch cost is independent of the number of
    queries — the multi-query analogue of Fig. 5's ~98% reuse.

    ``budget`` (a :class:`repro.resilience.Budget`) watchdogs the run; the
    query service uses it so one pathological plan breaches loudly instead
    of stalling a worker.
    """
    plan = multi_query_boe_plan(scenario.unified, sources)
    result = PlanExecutor(scenario, algorithm, budget=budget).run(plan)
    return MultiQueryResult(scenario.n_snapshots, sources, result)


def simulate_multi_query(
    scenario: EvolvingScenario,
    algorithm: Algorithm,
    sources: list[int],
    config=None,
    pipeline: bool = True,
    budget=None,
):
    """Run the multi-query plan on the MEGA accelerator model.

    Returns ``(SimReport, MultiQueryResult)``.  The resident-version count
    is queries x snapshots, so partitioning pressure grows with the query
    count while batch fetches stay shared — the throughput trade the
    ``ext-multiquery`` experiment quantifies.
    """
    from repro.accel.config import mega_config
    from repro.accel.simulate import simulate_plan

    plan = multi_query_boe_plan(scenario.unified, sources)
    report, raw = simulate_plan(
        scenario,
        algorithm,
        plan,
        config if config is not None else mega_config(),
        concurrent=True,
        pipeline=pipeline,
        budget=budget,
    )
    return report, MultiQueryResult(scenario.n_snapshots, sources, raw)
