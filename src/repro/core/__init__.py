"""The paper's contribution as a user-facing API.

``EvolvingGraphEngine`` wraps scenario + algorithm + workflow selection;
``evaluate_multi_query`` extends BOE's snapshot sharing to many concurrent
query sources.
"""

from repro.core.engine import EvolvingGraphEngine
from repro.core.window_server import WindowServer
from repro.core.multi_query import (
    MultiQueryResult,
    evaluate_multi_query,
    multi_query_boe_plan,
)

__all__ = [
    "EvolvingGraphEngine",
    "WindowServer",
    "MultiQueryResult",
    "evaluate_multi_query",
    "multi_query_boe_plan",
]
