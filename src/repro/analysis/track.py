"""Tracking a query property across the snapshot window.

The paper's motivating use case (§1) is not the raw per-vertex values but
their *progression over time*: "number of contacts and infections over a
time window, for example, after a certain variant appeared, or when a
mitigation action ... is introduced".  This module turns a workflow result
into per-snapshot series — reach, aggregates, arbitrary reductions, and
snapshot-to-snapshot churn — with a terminal sparkline for quick looks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.algorithms.base import Algorithm
from repro.engines.executor import WorkflowResult

__all__ = [
    "PropertySeries",
    "track_statistic",
    "track_reach",
    "track_mean_value",
    "snapshot_churn",
]

_SPARK_BARS = "▁▂▃▄▅▆▇█"


@dataclass
class PropertySeries:
    """A per-snapshot series of one tracked property."""

    name: str
    snapshots: list[int]
    values: list[float]

    def delta(self) -> list[float]:
        """First differences between consecutive snapshots."""
        return [
            b - a for a, b in zip(self.values, self.values[1:])
        ]

    def argmax(self) -> int:
        return self.snapshots[int(np.argmax(self.values))]

    def argmin(self) -> int:
        return self.snapshots[int(np.argmin(self.values))]

    def sparkline(self) -> str:
        """Terminal-friendly one-line chart of the series."""
        vals = np.asarray(self.values, dtype=np.float64)
        finite = vals[np.isfinite(vals)]
        if finite.size == 0:
            return "·" * len(self.values)
        lo, hi = float(finite.min()), float(finite.max())
        span = hi - lo
        chars = []
        for v in vals:
            if not np.isfinite(v):
                chars.append("·")
            elif span == 0:
                chars.append(_SPARK_BARS[0])
            else:
                idx = int((v - lo) / span * (len(_SPARK_BARS) - 1))
                chars.append(_SPARK_BARS[idx])
        return "".join(chars)

    def __len__(self) -> int:
        return len(self.values)


def track_statistic(
    result: WorkflowResult,
    fn: Callable[[np.ndarray], float],
    name: str = "statistic",
) -> PropertySeries:
    """Apply a reduction to every snapshot's value vector."""
    snapshots = sorted(result.snapshot_values)
    values = [float(fn(result.values(k))) for k in snapshots]
    return PropertySeries(name, snapshots, values)


def track_reach(
    result: WorkflowResult, algorithm: Algorithm
) -> PropertySeries:
    """Vertices with any information per snapshot (reachability count)."""
    return track_statistic(
        result,
        lambda vals: float(algorithm.reached(vals).sum()),
        name="reach",
    )


def track_mean_value(
    result: WorkflowResult, algorithm: Algorithm
) -> PropertySeries:
    """Mean value over reached vertices per snapshot."""

    def mean_reached(vals: np.ndarray) -> float:
        mask = algorithm.reached(vals) & np.isfinite(vals)
        return float(vals[mask].mean()) if mask.any() else float("nan")

    return track_statistic(result, mean_reached, name="mean-value")


def snapshot_churn(result: WorkflowResult) -> PropertySeries:
    """Vertices whose value changed between consecutive snapshots.

    A direct view of how similar adjacent snapshots' solutions are — the
    similarity BOE's reuse (Fig. 5) rests on.
    """
    snapshots = sorted(result.snapshot_values)
    churn: list[float] = []
    for a, b in zip(snapshots, snapshots[1:]):
        va, vb = result.values(a), result.values(b)
        same = (va == vb) | (~np.isfinite(va) & ~np.isfinite(vb))
        churn.append(float((~same).sum()))
    return PropertySeries("churn", snapshots[1:], churn)
