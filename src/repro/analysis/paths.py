"""Witness-path extraction from the dependence tree.

The KickStarter-style dependence tree the engine maintains for deletion
repair doubles as a *certificate*: each reached vertex's parent edge
reproduces its value from its parent's, so walking parents back to the
source yields a witness path — the actual shortest/widest/most-probable
route, not just its value.  Useful for serving queries ("show me the
route"), and for auditing results independently of the engines.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm
from repro.engines.daic import MultiVersionEngine
from repro.evolving.snapshots import EvolvingScenario

__all__ = ["extract_path", "witness_paths", "verify_path"]


def extract_path(
    engine: MultiVersionEngine,
    vertex: int,
    parent_row: int = 0,
) -> list[int]:
    """Walk parent edges from ``vertex`` back to its root.

    Returns the path as vertex ids root->vertex (the root is the query
    source, or the vertex itself for label-propagation roots).  Raises if
    the engine does not track parents or the vertex has no certificate.
    """
    if engine.parent_edge is None:
        raise ValueError("engine must be created with track_parents=True")
    parent = engine.parent_edge[parent_row]
    graph = engine.graph
    path = [int(vertex)]
    seen = {int(vertex)}
    v = int(vertex)
    while parent[v] >= 0:
        e = int(parent[v])
        v = int(graph.src_of_edge[e])
        if v in seen:  # pragma: no cover - the theory says impossible
            raise RuntimeError("cycle in dependence tree")
        seen.add(v)
        path.append(v)
    path.reverse()
    return path


def witness_paths(
    scenario: EvolvingScenario,
    algorithm: Algorithm,
    snapshot: int,
    vertices: list[int],
) -> dict[int, list[int]]:
    """Evaluate one snapshot with parent tracking and extract paths.

    Unreached vertices map to an empty path.
    """
    engine = MultiVersionEngine(
        algorithm, scenario.unified, track_parents=True
    )
    values = engine.evaluate_full(
        scenario.unified.presence_mask(snapshot),
        scenario.source,
        parent_row=0,
    )
    out: dict[int, list[int]] = {}
    for v in vertices:
        if not algorithm.reached(values[None, :])[0, v]:
            out[v] = []
        else:
            out[v] = extract_path(engine, v)
    return out


def verify_path(
    scenario: EvolvingScenario,
    algorithm: Algorithm,
    snapshot: int,
    path: list[int],
    value: float,
) -> bool:
    """Independently check a witness path: edges exist in the snapshot and
    folding the edge function along it reproduces ``value``."""
    if not path:
        return False
    graph = scenario.snapshot_graph(snapshot)
    if path[0] == scenario.source:
        acc = float(algorithm.source_value)
    else:
        # label-propagation style root: folds from the root's own identity
        # value; for source-based algorithms this is the no-information
        # value, so a path rooted off-source correctly fails to verify.
        acc = float(algorithm.identity_values(graph.n_vertices)[path[0]])
    for u, v in zip(path, path[1:]):
        lo, hi = graph.indptr[u], graph.indptr[u + 1]
        slot = lo + np.searchsorted(graph.dst[lo:hi], v)
        if slot >= hi or graph.dst[slot] != v:
            return False
        acc = float(
            algorithm.candidate(np.float64(acc), np.float64(graph.wt[slot]))
        )
    return bool(np.isclose(acc, value))
