"""Result analytics: property tracking and witness-path extraction."""

from repro.analysis.paths import extract_path, verify_path, witness_paths
from repro.analysis.track import (
    PropertySeries,
    snapshot_churn,
    track_mean_value,
    track_reach,
    track_statistic,
)

__all__ = [
    "PropertySeries",
    "extract_path",
    "verify_path",
    "witness_paths",
    "snapshot_churn",
    "track_mean_value",
    "track_reach",
    "track_statistic",
]
