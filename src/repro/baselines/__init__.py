"""Modelled software/GPU baselines (KickStarter, RisGraph, Subway)."""

from repro.baselines.software import (
    SOFTWARE_SYSTEMS,
    BaselineReport,
    SoftwareSystem,
    run_baseline,
)

__all__ = [
    "SOFTWARE_SYSTEMS",
    "BaselineReport",
    "SoftwareSystem",
    "run_baseline",
]
