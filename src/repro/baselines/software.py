"""Software and GPU baseline cost models (paper Fig. 14).

The paper compares MEGA against CommonGraph Work-Sharing implemented on
KickStarter and RisGraph (60-core Xeon), software BOE on RisGraph, and
Work-Sharing on Subway (an NVIDIA K80).  Running those systems is out of
scope for a Python reproduction, so each baseline is modelled as the same
*workflow* executed by our functional engines (identical algorithmic work —
events, edges, rounds) costed with a per-event service time that folds in
each platform's measured character:

* ``ns_per_event`` — aggregate per-event cost across all cores/SMs,
  calibrated so that the MEGA-vs-baseline geomean speedups land in the
  paper's reported bands (51x KickStarter, 29x RisGraph, 16x software BOE,
  12x Subway).  The *variation* across graphs and algorithms is emergent
  from the real event counts; only the platform constant is calibrated.
* software engines process scalar events (no row-wide version SIMD), so
  the models consume the per-version counters of the traces; software BOE
  additionally pays a locality penalty because concurrent snapshots on
  different cores do not share fetches (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import Algorithm
from repro.engines.executor import PlanExecutor
from repro.evolving.snapshots import EvolvingScenario
from repro.schedule import plan_for

__all__ = ["SoftwareSystem", "BaselineReport", "SOFTWARE_SYSTEMS", "run_baseline"]


@dataclass(frozen=True)
class SoftwareSystem:
    """A modelled software/GPU platform running a CommonGraph workflow."""

    name: str
    workflow: str
    #: effective nanoseconds per event, all cores combined
    ns_per_event: float
    #: True: cost scalar per-(vertex, version) events (a sequential-ish
    #: framework executes every version's update).  False: cost the
    #: union-granular events — software BOE runs the per-snapshot updates
    #: of one batch on different cores, so wall time follows the largest
    #: (i.e. union) stream while ns_per_event carries the locality penalty
    #: of cores not sharing fetches.
    scalar: bool = True
    description: str = ""


SOFTWARE_SYSTEMS: dict[str, SoftwareSystem] = {
    s.name: s
    for s in (
        SoftwareSystem(
            "kickstarter-ws",
            "work-sharing",
            ns_per_event=19.5,
            description="CommonGraph WS on KickStarter, 60-core Xeon",
        ),
        SoftwareSystem(
            "risgraph-ws",
            "work-sharing",
            ns_per_event=11.1,
            description="CommonGraph WS on RisGraph, 60-core Xeon",
        ),
        SoftwareSystem(
            "risgraph-boe",
            "boe",
            ns_per_event=12.7,
            scalar=False,
            description=(
                "software BOE on RisGraph: concurrent snapshots on "
                "different cores, no shared fetches"
            ),
        ),
        SoftwareSystem(
            "subway-ws",
            "work-sharing",
            ns_per_event=4.7,
            description="CommonGraph WS on Subway, NVIDIA K80",
        ),
    )
}


@dataclass
class BaselineReport:
    """Modelled execution of one software baseline."""

    system: str
    workflow: str
    events: int
    update_time_ms: float
    total_time_ms: float


def run_baseline(
    scenario: EvolvingScenario,
    algorithm: Algorithm,
    system: SoftwareSystem | str,
) -> BaselineReport:
    """Execute the baseline's workflow and cost it with its platform model."""
    if isinstance(system, str):
        system = SOFTWARE_SYSTEMS[system]
    plan = plan_for(system.workflow, scenario.unified)
    result = PlanExecutor(scenario, algorithm).run(plan)

    update_events = 0
    eval_events = 0
    for e in result.collector.executions:
        if system.scalar:
            work = sum(
                r.version_events_generated + r.version_events_popped
                for r in e.rounds
            )
        else:
            work = sum(
                r.events_generated + r.events_popped for r in e.rounds
            )
        if e.phase == "full":
            eval_events += work
        else:
            update_events += work

    update_ms = update_events * system.ns_per_event / 1e6
    total_ms = (update_events + eval_events) * system.ns_per_event / 1e6
    return BaselineReport(
        system=system.name,
        workflow=system.workflow,
        events=update_events,
        update_time_ms=update_ms,
        total_time_ms=total_ms,
    )
