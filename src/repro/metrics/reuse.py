"""Edge-reuse measurements (paper §2.2, Figs. 4 and 5).

The motivation for Batch-Oriented Execution is a locality asymmetry:

* applying *different batches to the same snapshot* touches almost
  disjoint edge sets (Fig. 4 — reuse of a few percent), because each batch
  perturbs a different region of the graph;
* applying the *same batch to different snapshots* touches almost
  identical edge sets (Fig. 5 — ~98% reuse), because the snapshots differ
  by only a few percent of their edges.

Both metrics are measured the way the paper does: execute the per-batch
incremental updates snapshot by snapshot (the Direct-Hop chains), record
the union-edge set each application fetches, and compare the sets.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations

import numpy as np

from repro.algorithms.base import Algorithm
from repro.engines.executor import PlanExecutor
from repro.evolving.batches import BatchId
from repro.evolving.snapshots import EvolvingScenario
from repro.schedule.direct_hop import direct_hop_plan
from repro.schedule.plan import ApplyEdges, DeleteEdges, EvalFull

__all__ = [
    "batch_touch_sets",
    "edge_reuse_same_snapshot",
    "edge_reuse_across_snapshots",
]


def batch_touch_sets(
    scenario: EvolvingScenario, algorithm: Algorithm
) -> list[tuple[int, BatchId, np.ndarray]]:
    """Per-(snapshot, batch) fetched-edge masks from the Direct-Hop chains.

    Returns one entry per incremental batch application: the target
    snapshot, the batch identity, and the bool mask of union edges the
    application fetched.
    """
    plan = direct_hop_plan(scenario.unified)
    executor = PlanExecutor(scenario, algorithm, record_touched_edges=True)
    result = executor.run(plan)

    work_steps = [
        s for s in plan.steps if isinstance(s, (EvalFull, ApplyEdges, DeleteEdges))
    ]
    out: list[tuple[int, BatchId, np.ndarray]] = []
    state_to_snapshot = {
        s.state: s.snapshot
        for s in plan.steps
        if s.__class__.__name__ == "MarkSnapshot"
    }
    for step, execution in zip(work_steps, result.collector.executions):
        if not isinstance(step, ApplyEdges) or len(step.batches) != 1:
            continue
        snapshot = state_to_snapshot[step.targets[0]]
        out.append((snapshot, step.batches[0], execution.touched_edges))
    return out


def _mean_pairwise_overlap(masks: list[np.ndarray]) -> float:
    """Mean of ``|A ∩ B| / min(|A|, |B|)`` over all pairs (1.0 if < 2)."""
    pairs = list(combinations(masks, 2))
    if not pairs:
        return 1.0
    vals = []
    for a, b in pairs:
        smaller = min(int(a.sum()), int(b.sum()))
        if smaller == 0:
            continue
        vals.append(float((a & b).sum()) / smaller)
    return float(np.mean(vals)) if vals else 1.0


def edge_reuse_same_snapshot(
    scenario: EvolvingScenario, algorithm: Algorithm
) -> float:
    """Fig. 4: mean fetched-edge overlap between *different batches*
    applied to the *same snapshot* (expected to be tiny)."""
    by_snapshot: dict[int, list[np.ndarray]] = defaultdict(list)
    for snapshot, __, mask in batch_touch_sets(scenario, algorithm):
        by_snapshot[snapshot].append(mask)
    vals = [
        _mean_pairwise_overlap(masks)
        for masks in by_snapshot.values()
        if len(masks) >= 2
    ]
    return float(np.mean(vals)) if vals else 0.0


def edge_reuse_across_snapshots(
    scenario: EvolvingScenario, algorithm: Algorithm
) -> float:
    """Fig. 5: mean fetched-edge overlap of the *same batch* applied to
    *different snapshots* (expected to approach 1.0)."""
    by_batch: dict[BatchId, list[np.ndarray]] = defaultdict(list)
    for __, batch_id, mask in batch_touch_sets(scenario, algorithm):
        by_batch[batch_id].append(mask)
    vals = [
        _mean_pairwise_overlap(masks)
        for masks in by_batch.values()
        if len(masks) >= 2
    ]
    return float(np.mean(vals)) if vals else 1.0
