"""Measurement toolkit: reuse fractions and workflow activity counters."""

from repro.metrics.counters import (
    WorkflowActivity,
    applied_edge_counts,
    workflow_activity,
)
from repro.metrics.reuse import (
    batch_touch_sets,
    edge_reuse_across_snapshots,
    edge_reuse_same_snapshot,
)

__all__ = [
    "WorkflowActivity",
    "applied_edge_counts",
    "batch_touch_sets",
    "edge_reuse_across_snapshots",
    "edge_reuse_same_snapshot",
    "workflow_activity",
]
