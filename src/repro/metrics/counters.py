"""Workflow activity counters used by the motivation and evaluation plots.

These aggregate the plan structure (Fig. 3: applied-edge counts) and the
execution traces (Figs. 16-18: normalized edge reads, vertex reads and
writes) without involving the timing model, so they are exact properties of
the workflows themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import Algorithm
from repro.engines.executor import PlanExecutor
from repro.evolving.snapshots import EvolvingScenario
from repro.schedule import plan_for

__all__ = ["WorkflowActivity", "workflow_activity", "applied_edge_counts"]


@dataclass(frozen=True)
class WorkflowActivity:
    """Trace-level activity of one workflow run."""

    workflow: str
    edge_reads: int
    vertex_reads: int
    vertex_writes: int
    events: int
    rounds: int


def workflow_activity(
    scenario: EvolvingScenario, algorithm: Algorithm, workflow: str
) -> WorkflowActivity:
    """Run a workflow functionally and aggregate its trace counters."""
    plan = plan_for(workflow, scenario.unified)
    result = PlanExecutor(scenario, algorithm).run(plan)
    collector = result.collector
    return WorkflowActivity(
        workflow=workflow,
        edge_reads=collector.total("edges_fetched"),
        vertex_reads=collector.total("vertex_reads"),
        vertex_writes=collector.total("vertex_writes"),
        events=collector.total("events_generated"),
        rounds=sum(e.n_rounds for e in collector.executions),
    )


def applied_edge_counts(scenario: EvolvingScenario) -> dict[str, int]:
    """Fig. 3: edges applied per workflow (streaming counts deletions too)."""
    unified = scenario.unified
    out: dict[str, int] = {}
    for name in ("streaming", "direct-hop", "work-sharing", "boe"):
        plan = plan_for(name, unified)
        out[name] = plan.applied_edge_total() + plan.deleted_edge_total()
    return out
