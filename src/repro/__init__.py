"""MEGA: Evolving Graph Accelerator — full Python reproduction.

Reproduces Gao, Afarin, Rahman, Abu-Ghazaleh & Gupta, *MEGA Evolving Graph
Accelerator*, MICRO 2023 (DOI 10.1145/3613424.3614260): the CommonGraph
evolving-graph model, the Batch-Oriented-Execution scheduling contribution,
the JetStream streaming-accelerator baseline, and cycle-approximate
simulators of both accelerators, together with the benchmark harness that
regenerates every table and figure of the paper's evaluation.

Quickstart::

    from repro import synthesize_scenario, get_algorithm
    from repro.graph.generators import rmat_edges
    from repro.schedule import boe_plan
    from repro.engines import PlanExecutor

    pool = rmat_edges(n_vertices=512, n_edges=4096, seed=7)
    scenario = synthesize_scenario(pool, n_snapshots=8)
    result = PlanExecutor(scenario, get_algorithm("sssp")).run(
        boe_plan(scenario.unified)
    )
    print(result.values(3))  # SSSP values on snapshot 3
"""

from repro.algorithms import all_algorithms, get_algorithm
from repro.core import EvolvingGraphEngine
from repro.evolving import EvolvingScenario, UnifiedCSR, synthesize_scenario
from repro.graph import CSRGraph, EdgeList

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "EdgeList",
    "EvolvingGraphEngine",
    "EvolvingScenario",
    "UnifiedCSR",
    "all_algorithms",
    "get_algorithm",
    "synthesize_scenario",
    "__version__",
]
