"""Detailed DRAM timing: a row-buffer-aware DRAMSim2 stand-in.

The default memory model charges pure bandwidth (bytes / peak B-per-cycle)
plus a prefetch-covered latency per round — adequate for the paper's
relative results, which the event counts dominate.  For studies where
access *pattern* matters, this module estimates per-round efficiency from
the block-id stream the traces carry:

* blocks map to DRAM rows (``row_bytes`` per row, interleaved across
  ``n_banks`` banks);
* consecutive accesses to the same row of a bank hit the row buffer and
  stream at full bandwidth; a row change pays precharge + activate;
* the effective bytes-per-cycle follows from the hit/miss mix.

Enable with ``AcceleratorConfig(detailed_dram=True)``; the
``test_ablation_dram_model`` benchmark quantifies the difference.
"""

from __future__ import annotations

import numpy as np

from repro.accel.config import AcceleratorConfig

__all__ = ["RowBufferDram"]


class RowBufferDram:
    """Analytical row-buffer model over per-round unique block streams."""

    def __init__(
        self,
        config: AcceleratorConfig,
        row_bytes: int = 2048,
        n_banks: int = 16,
        t_burst: float = 1.0,
        t_row_miss: float = 12.0,
    ) -> None:
        self.config = config
        self.blocks_per_row = max(1, row_bytes // config.block_bytes)
        self.n_banks = n_banks
        self.t_burst = t_burst
        self.t_row_miss = t_row_miss
        #: open row per bank (-1 = none)
        self._open_rows = np.full(n_banks, -1, dtype=np.int64)
        self.row_hits = 0
        self.row_misses = 0

    def access_round(self, blocks: np.ndarray) -> float:
        """Cycles to fetch one round's unique blocks (64B each).

        The memory controller reorders within a round (FR-FCFS), so the
        model services blocks in sorted order — adjacent block ids in the
        same row become row hits.
        """
        if blocks.size == 0:
            return 0.0
        blocks = np.sort(np.asarray(blocks, dtype=np.int64))
        rows = blocks // self.blocks_per_row
        banks = rows % self.n_banks

        cycles = 0.0
        for row, bank in zip(rows, banks):
            if self._open_rows[bank] == row:
                self.row_hits += 1
                cycles += self.t_burst
            else:
                self.row_misses += 1
                self._open_rows[bank] = row
                cycles += self.t_row_miss + self.t_burst
        # the channels run in parallel; normalize by channel count
        return cycles / max(1, self.config.dram_channels)

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0
