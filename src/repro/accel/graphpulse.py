"""GraphPulse — the static-graph event-driven accelerator MEGA descends from.

GraphPulse (Rahman+, MICRO'20) introduced the event-driven asynchronous
model with coalescing queues for *static* graph analytics; JetStream added
streaming updates; MEGA added multi-snapshot evolving-graph execution.
The static mode completes the lineage in this reproduction: one full query
evaluation on one graph, on the same datapath model — it is also the
machine that produces the initial CommonGraph results MEGA starts from.
"""

from __future__ import annotations

import numpy as np

from repro.accel.config import AcceleratorConfig, jetstream_config
from repro.accel.simulate import simulate_plan
from repro.accel.stats import SimReport
from repro.algorithms.base import Algorithm
from repro.evolving.snapshots import EvolvingScenario
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import CSRGraph
from repro.schedule.plan import EvalFull, MarkSnapshot, Plan

__all__ = ["GraphPulseSimulator", "static_scenario"]


def static_scenario(
    graph: CSRGraph, source: int = 0, name: str = "static"
) -> EvolvingScenario:
    """Wrap a static graph as a single-snapshot scenario."""
    none = np.full(graph.n_edges, -1, dtype=np.int32)
    unified = UnifiedCSR(graph, none, none.copy(), 1)
    return EvolvingScenario(unified, source=source, name=name)


class GraphPulseSimulator:
    """Full-evaluation-only accelerator model (static graphs)."""

    def __init__(self, config: AcceleratorConfig | None = None) -> None:
        self.config = config if config is not None else jetstream_config()

    def run(
        self,
        scenario: EvolvingScenario,
        algorithm: Algorithm,
        snapshot: int = 0,
        validate: bool = False,
    ) -> SimReport:
        """Evaluate the query from scratch on one snapshot."""
        plan = Plan(name="static-eval", n_states=1, initial_graph="snapshot0")
        if snapshot != 0:
            # materialize the requested snapshot as the base graph
            scenario = static_scenario(
                scenario.unified.snapshot_graph(snapshot),
                source=scenario.source,
                name=f"{scenario.name}@G{snapshot}",
            )
        plan.steps.append(EvalFull(0, label="eval"))
        plan.steps.append(MarkSnapshot(0, 0))
        report, result = simulate_plan(
            scenario,
            algorithm,
            plan,
            self.config,
            concurrent=False,
        )
        if validate:
            from repro.engines.validation import evaluate_reference

            expected = evaluate_reference(scenario, algorithm, 0)
            got = result.values(0)
            if not np.allclose(got, expected, equal_nan=True):
                raise AssertionError("static evaluation mismatch")
        report.system = "graphpulse"
        return report
