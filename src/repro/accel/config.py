"""Hardware configurations for the JetStream baseline and MEGA (Table 3).

The paper models MEGA on SST + DRAMSim2 with the parameters of Table 3:
eight 1 GHz processing elements with four event-generation streams each, a
16x16 crossbar NoC, 64 MB of eDRAM for event queues and vertex state, 2 KB
scratchpads and 1 KB edge caches per PE, and four DDR4-17GB/s channels.

Because the reproduction runs on ~1/1000-scale proxy graphs (see
``repro.workloads.datasets``), on-chip capacities are scaled by
``capacity_scale`` so that partitioning pressure matches the paper's:
a 64 MB nominal memory against a 400M-edge graph behaves like
``64 MB * capacity_scale`` against the proxy.  All bandwidths and
per-event costs are kept at their nominal values — they cancel in every
relative result (speedups, normalized reads) and keep absolute times in a
recognizable range.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["AcceleratorConfig", "jetstream_config", "mega_config"]

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class AcceleratorConfig:
    """Microarchitectural parameters shared by JetStream and MEGA models."""

    name: str = "mega"
    # compute
    n_pes: int = 8
    gen_units_per_pe: int = 4
    clock_ghz: float = 1.0
    # on-chip memory (nominal, paper scale)
    onchip_mb: float = 64.0
    scratchpad_kb_per_pe: float = 2.0
    edge_cache_kb_per_pe: float = 1.0
    # off-chip memory
    dram_channels: int = 4
    channel_gb_s: float = 17.0
    dram_latency_cycles: int = 30
    #: bytes of dependence-tree metadata consulted per delete event
    #: (KickStarter approximation bookkeeping; JetStream only)
    dependence_bytes: int = 8
    # network on chip: 16x16 crossbar, two generators share a port
    noc_ports: int = 16
    # event queue: one bin per NoC port, dual-ported
    n_queue_bins: int = 16
    queue_ports_per_bin: int = 2
    # data sizes
    event_bytes: int = 16
    value_bytes: int = 4
    edge_bytes: int = 8
    block_bytes: int = 64
    # round pipeline drain/refill overhead (cycles between event waves)
    round_overhead_cycles: int = 16
    #: extra PE cycles per delete event (dependence lookup + invalidation
    #: logic; JetStream only) — ablation knob, calibrated to Fig. 2
    deletion_event_factor: float = 6.0
    #: process all versions of a vertex as one row-wide event (the unified
    #: value array of §3.2); disabling it is the BOE-without-SIMD ablation
    row_wide_versions: bool = True
    #: use the row-buffer-aware DRAM model instead of pure bandwidth
    detailed_dram: bool = False
    # batch pipelining: a new batch is injected once live events drop below
    # threshold_events (paper §3.2, "triggered when the events number
    # decreases to a specific threshold")
    pipeline_threshold_events: int = 64
    # feature switches
    supports_deletions: bool = True
    multi_snapshot: bool = False
    # proxy-graph capacity scaling: None = derive from the scenario's
    # dataset metadata; 1.0 = explicit paper scale
    capacity_scale: float | None = None

    # -- derived -----------------------------------------------------------

    @property
    def edges_per_block(self) -> int:
        return max(1, self.block_bytes // self.edge_bytes)

    @property
    def dram_bytes_per_cycle(self) -> float:
        total_gb_s = self.dram_channels * self.channel_gb_s
        return total_gb_s / self.clock_ghz  # GB/s at GHz = bytes/cycle

    @property
    def onchip_bytes(self) -> float:
        """Effective on-chip capacity after proxy scaling."""
        scale = 1.0 if self.capacity_scale is None else self.capacity_scale
        return self.onchip_mb * MB * scale

    @property
    def edge_cache_bytes(self) -> float:
        """Aggregate edge-cache capacity after proxy scaling."""
        nominal = self.edge_cache_kb_per_pe * KB * self.n_pes
        # Hot-vertex working sets shrink with the proxy graphs, so the tiny
        # per-PE caches scale too, floored at a handful of blocks.
        scale = 1.0 if self.capacity_scale is None else self.capacity_scale
        return max(16 * self.block_bytes, nominal * scale)

    @property
    def event_throughput_per_cycle(self) -> int:
        return self.n_pes

    @property
    def generation_throughput_per_cycle(self) -> int:
        return self.n_pes * self.gen_units_per_pe

    def scaled(self, capacity_scale: float) -> "AcceleratorConfig":
        return replace(self, capacity_scale=capacity_scale)

    def with_onchip_mb(self, onchip_mb: float) -> "AcceleratorConfig":
        return replace(self, onchip_mb=onchip_mb)


def jetstream_config(capacity_scale: float | None = None) -> AcceleratorConfig:
    """The JetStream baseline: single graph, addition + deletion events."""
    return AcceleratorConfig(
        name="jetstream",
        supports_deletions=True,
        multi_snapshot=False,
        capacity_scale=capacity_scale,
    )


def mega_config(capacity_scale: float | None = None) -> AcceleratorConfig:
    """MEGA: deletion-free, multi-snapshot, version-tagged events."""
    return AcceleratorConfig(
        name="mega",
        supports_deletions=False,
        multi_snapshot=True,
        capacity_scale=capacity_scale,
    )
