"""Processing-engine model (Fig. 12's PE with four generation streams).

A PE pops one coalesced event per cycle, applies the algorithm's edge
function, and emits outgoing events through its parallel generation
streams — "4 parallel event generation units for each processing element
to reduce delays associated with executing events on high out-degree
vertices" (§4.2).  The class tracks per-PE busy cycles so the exact
event-level simulator can report PE utilization and load balance, and so
unit tests can pin the occupancy arithmetic the analytical timing model
abstracts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ProcessingEngine", "PECluster"]


@dataclass
class ProcessingEngine:
    """Busy-cycle accounting for one PE."""

    pe_id: int
    gen_units: int = 4
    busy_cycles: int = 0
    events_executed: int = 0
    events_generated: int = 0

    def execute(self, out_degree: int) -> int:
        """Execute one event; returns the cycles the PE was busy.

        One cycle pops and applies the event; the generation streams then
        emit ``out_degree`` messages at ``gen_units`` per cycle.
        """
        if out_degree < 0:
            raise ValueError("out_degree must be non-negative")
        cycles = 1 + -(-out_degree // self.gen_units)  # ceil division
        self.busy_cycles += cycles
        self.events_executed += 1
        self.events_generated += out_degree
        return cycles


@dataclass
class PECluster:
    """A bank of PEs with round-state dispatch (greedy earliest-free)."""

    n_pes: int = 8
    gen_units: int = 4
    pes: list[ProcessingEngine] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_pes < 1:
            raise ValueError("need at least one PE")
        self.pes = [
            ProcessingEngine(i, self.gen_units) for i in range(self.n_pes)
        ]
        self._free_at = [0] * self.n_pes

    def dispatch_round(self, out_degrees: list[int]) -> int:
        """Execute one round's events greedily; returns the round's cycles.

        Events go to the earliest-free PE (the event scheduler in Fig. 12
        pulls from the queue as PEs drain), so the round latency is the
        makespan of the greedy schedule.
        """
        if not out_degrees:
            return 0
        # rounds are barriers: every PE drains before the next wave starts
        start = max(self._free_at)
        free = [start] * self.n_pes
        for deg in out_degrees:
            idx = free.index(min(free))
            cycles = self.pes[idx].execute(deg)
            free[idx] += cycles
        self._free_at = free
        return max(free) - start

    @property
    def total_busy(self) -> int:
        return sum(pe.busy_cycles for pe in self.pes)

    @property
    def makespan(self) -> int:
        return max(self._free_at)

    def utilization(self) -> float:
        """Busy fraction of the cluster up to the makespan."""
        span = self.makespan * self.n_pes
        return self.total_busy / span if span else 0.0

    def load_imbalance(self) -> float:
        """Max-to-mean busy-cycle ratio across PEs (1.0 = perfect)."""
        busys = [pe.busy_cycles for pe in self.pes]
        mean = sum(busys) / len(busys)
        return max(busys) / mean if mean else 1.0
