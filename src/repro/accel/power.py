"""Power and area model (paper §5.3, Table 5).

The paper sizes MEGA's resources with CACTI 7 at 22 nm (ITRS-HP SRAM for
the queue memory) plus models for the crossbar, scheduler and logic.  CACTI
is a closed C++ tool, so this module substitutes an analytical model with
per-unit constants *calibrated to Table 5 at the default configuration*:
64 MB of queue memory, 8 PEs with 2 KB scratchpads, and a 16x16 crossbar
carrying 16-byte events.  Away from the default the components scale the
way CACTI trends do — memory linearly with capacity, crossbar with
``ports^2`` and flit width, logic with PE count — which is what the
sensitivity experiments need.

JetStream's corresponding design point (13-byte events without the version
and batch tags, no version table or batch scheduler) is evaluated with the
same model to reproduce the table's "overhead over JetStream" deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.accel.config import AcceleratorConfig, mega_config

__all__ = ["ComponentCost", "PowerAreaModel", "table5_breakdown"]

# -- calibration constants (Table 5 totals at the default MEGA config) ------

# 64 MB eDRAM queue: 9389 mW, 195 mm^2 for MEGA (after its +5%/+13%/+1.5%
# version-tag overheads over the JetStream design point)
_QUEUE_STATIC_MW_PER_MB = 136.0  # refresh/leakage dominates eDRAM
_QUEUE_DYNAMIC_MW_PER_MB = 3.45  # access energy at full tilt
_QUEUE_AREA_MM2_PER_MB = 3.0

# 8 x 2 KB scratchpads: 13.2 mW, 0.25 mm^2
_SPAD_STATIC_MW_PER_KB = 0.10
_SPAD_DYNAMIC_MW_PER_KB = 0.725
_SPAD_AREA_MM2_PER_KB = 0.0156

# 16x16 crossbar with 16B flits: 127.5 mW, 10.0 mm^2
_NOC_MW_PER_PORT2_BYTE = 127.5 / (16 * 16 * 16)
_NOC_AREA_PER_PORT2_BYTE = 10.0 / (16 * 16 * 16)
_NOC_STATIC_FRACTION = 0.25

# processing logic (PEs + scheduler + version table): 1.9 mW, 1.2 mm^2
_LOGIC_MW_PER_PE = 1.9 / 8
_LOGIC_AREA_PER_PE = 1.2 / 8
# MEGA's version registers / batch scheduler add area to each PE (+34% in
# Table 5's processing-logic row)
_VERSION_LOGIC_AREA_FACTOR = 1.34
_VERSION_LOGIC_POWER_FACTOR = 1.06


@dataclass(frozen=True)
class ComponentCost:
    """Power/area of one datapath component."""

    name: str
    static_mw: float
    dynamic_mw: float
    area_mm2: float

    @property
    def total_mw(self) -> float:
        return self.static_mw + self.dynamic_mw


class PowerAreaModel:
    """Analytical CACTI-7 stand-in for the MEGA/JetStream datapath."""

    def __init__(self, config: AcceleratorConfig | None = None) -> None:
        self.config = config if config is not None else mega_config()

    def components(self) -> list[ComponentCost]:
        cfg = self.config
        mb = cfg.onchip_mb  # nominal capacity, not proxy-scaled
        # MEGA widens each queue cell with version/batch tags and adds the
        # per-bank version decoders of Fig. 13 (Table 5: +5% static, +13%
        # dynamic power and +1.5% area on the queue).
        q_static, q_dynamic, q_area = 1.0, 1.0, 1.0
        if cfg.multi_snapshot:
            q_static, q_dynamic, q_area = 1.05, 1.13, 1.015
        queue = ComponentCost(
            f"Queue {mb:g}MB",
            static_mw=_QUEUE_STATIC_MW_PER_MB * mb * q_static,
            dynamic_mw=_QUEUE_DYNAMIC_MW_PER_MB * mb * q_dynamic,
            area_mm2=_QUEUE_AREA_MM2_PER_MB * mb * q_area,
        )
        spad_kb = cfg.scratchpad_kb_per_pe * cfg.n_pes
        scratchpad = ComponentCost(
            f"Scratchpad {cfg.n_pes}x{cfg.scratchpad_kb_per_pe:g}KB",
            static_mw=_SPAD_STATIC_MW_PER_KB * spad_kb,
            dynamic_mw=_SPAD_DYNAMIC_MW_PER_KB * spad_kb,
            area_mm2=_SPAD_AREA_MM2_PER_KB * spad_kb,
        )
        noc_scale = cfg.noc_ports * cfg.noc_ports * cfg.event_bytes
        noc_total = _NOC_MW_PER_PORT2_BYTE * noc_scale
        network = ComponentCost(
            f"Network {cfg.noc_ports}x{cfg.noc_ports}",
            static_mw=noc_total * _NOC_STATIC_FRACTION,
            dynamic_mw=noc_total * (1 - _NOC_STATIC_FRACTION),
            area_mm2=_NOC_AREA_PER_PORT2_BYTE * noc_scale,
        )
        logic_mw = _LOGIC_MW_PER_PE * cfg.n_pes
        logic_area = _LOGIC_AREA_PER_PE * cfg.n_pes
        if cfg.multi_snapshot:
            logic_mw *= _VERSION_LOGIC_POWER_FACTOR
            logic_area *= _VERSION_LOGIC_AREA_FACTOR
        logic = ComponentCost(
            "Proc. Logic",
            static_mw=logic_mw * 0.2,
            dynamic_mw=logic_mw * 0.8,
            area_mm2=logic_area,
        )
        return [queue, scratchpad, network, logic]

    def total(self) -> ComponentCost:
        parts = self.components()
        return ComponentCost(
            "Total",
            static_mw=sum(p.static_mw for p in parts),
            dynamic_mw=sum(p.dynamic_mw for p in parts),
            area_mm2=sum(p.area_mm2 for p in parts),
        )

    def jetstream_equivalent(self) -> "PowerAreaModel":
        """The JetStream design point: 13-byte events (no version/batch
        tags), no version table or batch scheduler in the PEs."""
        js = replace(
            self.config, name="jetstream", event_bytes=13, multi_snapshot=False
        )
        return PowerAreaModel(js)

    def overhead_over_jetstream(self) -> dict[str, tuple[float, float]]:
        """Per-component (power%, area%) overhead of MEGA vs JetStream."""
        mine = {c.name.split()[0]: c for c in self.components()}
        theirs = {
            c.name.split()[0]: c
            for c in self.jetstream_equivalent().components()
        }
        out: dict[str, tuple[float, float]] = {}
        for key, c in mine.items():
            j = theirs[key]
            out[key] = (
                100.0 * (c.total_mw / j.total_mw - 1.0),
                100.0 * (c.area_mm2 / j.area_mm2 - 1.0),
            )
        mt, jt = self.total(), self.jetstream_equivalent().total()
        out["Total"] = (
            100.0 * (mt.total_mw / jt.total_mw - 1.0),
            100.0 * (mt.area_mm2 / jt.area_mm2 - 1.0),
        )
        return out


def table5_breakdown() -> list[ComponentCost]:
    """The Table 5 rows at the paper's default MEGA configuration."""
    model = PowerAreaModel(mega_config())
    return model.components() + [model.total()]
