"""Accelerator models: JetStream baseline and MEGA, cycle-approximate."""

from repro.accel.cache import EdgeCacheModel
from repro.accel.dram import RowBufferDram
from repro.accel.config import AcceleratorConfig, jetstream_config, mega_config
from repro.accel.energy import EnergyModel, EnergyReport
from repro.accel.event import Event
from repro.accel.eventsim import EventLevelSimulator, EventSimStats
from repro.accel.graphpulse import GraphPulseSimulator, static_scenario
from repro.accel.prefetch import PrefetchModel
from repro.accel.processor import PECluster, ProcessingEngine
from repro.accel.jetstream import JetStreamSimulator
from repro.accel.mega import MEGA_WORKFLOWS, MegaSimulator
from repro.accel.memory import MemorySystem, PartitionPlan
from repro.accel.noc import CrossbarNoC
from repro.accel.power import ComponentCost, PowerAreaModel, table5_breakdown
from repro.accel.queue import EventQueue, QueueDecoder
from repro.accel.scheduler import Wave, WaveScheduler
from repro.accel.simulate import build_waves, simulate_plan
from repro.accel.stats import SimCounters, SimReport
from repro.accel.timing import TimingModel
from repro.accel.version_table import BatchStatus, VersionTable

__all__ = [
    "AcceleratorConfig",
    "BatchStatus",
    "ComponentCost",
    "CrossbarNoC",
    "EdgeCacheModel",
    "EnergyModel",
    "EnergyReport",
    "Event",
    "EventLevelSimulator",
    "EventSimStats",
    "EventQueue",
    "GraphPulseSimulator",
    "PECluster",
    "PrefetchModel",
    "ProcessingEngine",
    "static_scenario",
    "JetStreamSimulator",
    "MEGA_WORKFLOWS",
    "MegaSimulator",
    "MemorySystem",
    "PartitionPlan",
    "PowerAreaModel",
    "QueueDecoder",
    "RowBufferDram",
    "SimCounters",
    "SimReport",
    "TimingModel",
    "VersionTable",
    "Wave",
    "WaveScheduler",
    "build_waves",
    "jetstream_config",
    "mega_config",
    "simulate_plan",
    "table5_breakdown",
]
