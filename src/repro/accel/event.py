"""Event messages — the unit of work in the event-driven datapath.

Events are lightweight tuples "consisting of a target vertex identifier, a
payload, and specific flags" (paper §4.1).  MEGA extends JetStream's events
with a *version tag* (which snapshot the event belongs to) and a *batch
tag* (which batch execution produced it, used to detect batch completion
for scheduling) — §4.2.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Event"]


@dataclass(frozen=True)
class Event:
    """One delta message destined for ``(vertex, version)``."""

    vertex: int
    payload: float
    version: int = 0
    batch: int = 0
    is_delete: bool = False

    def key(self) -> tuple[int, int]:
        """Coalescing key: at most one live event per (vertex, version)."""
        return (self.vertex, self.version)
