"""Memory-system model: on-chip capacity, partitioning, DRAM traffic.

Models the paper's §3.2 partitioning behaviour: the 64 MB on-chip eDRAM
holds the event-queue cells and vertex values of every *active* snapshot
version; when that state exceeds capacity the graph is split into vertex
partitions (Fig. 9), events crossing into inactive partitions spill to
DRAM, and partition activations stream vertex/queue state on and off chip.
DRAM time is bandwidth-dominated (DRAMSim2 stand-in): bytes divided by the
aggregate channel bandwidth, plus a per-round latency charge applied by
the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.config import AcceleratorConfig
from repro.graph.csr import CSRGraph
from repro.graph.partition import VertexPartitioner

__all__ = ["PartitionPlan", "MemorySystem"]


@dataclass(frozen=True)
class PartitionPlan:
    """Partitioning decision for a given number of active versions."""

    n_partitions: int
    state_bytes: float
    #: DRAM bytes to save+restore state across one full partition sweep
    sweep_bytes: float
    #: fraction of generated events whose destination lies in another
    #: partition and must spill to DRAM
    cross_fraction: float


class MemorySystem:
    """On-chip capacity accounting plus DRAM bandwidth model."""

    def __init__(self, config: AcceleratorConfig, union_graph: CSRGraph) -> None:
        self.config = config
        self.graph = union_graph
        self.n_vertices = union_graph.n_vertices
        self._partitioners: dict[int, VertexPartitioner] = {}
        self._cross: dict[int, float] = {}

    # -- partitioning --------------------------------------------------------

    def state_bytes(self, n_versions: int) -> float:
        """On-chip bytes needed for ``n_versions`` resident snapshots.

        Each (vertex, version) pair needs a value slot (the direct-mapped
        queue cells of Fig. 13 share the same direct-mapped layout and are
        only live for active events, so the value array dominates — this
        matches the paper's LiveJournal example: 16 snapshots of a 4M-vertex
        graph against 64 MB yields four partitions).
        """
        return float(self.n_vertices * max(1, n_versions) * self.config.value_bytes)

    def n_partitions(self, n_versions: int) -> int:
        state = self.state_bytes(n_versions)
        capacity = max(1.0, self.config.onchip_bytes)
        return min(max(1, int(np.ceil(state / capacity))), self.n_vertices)

    def partition_plan(self, n_versions: int) -> PartitionPlan:
        state = self.state_bytes(n_versions)
        n_parts = self.n_partitions(n_versions)
        if n_parts == 1:
            return PartitionPlan(1, state, 0.0, 0.0)
        # One sweep = activate every partition once: stream its vertex
        # values + queue cells in and the previous partition's out.
        return PartitionPlan(
            n_parts, state, 2.0 * state, self._cross_fraction(n_parts)
        )

    def _cross_fraction(self, n_parts: int) -> float:
        if n_parts not in self._cross:
            p = self.partitioner(n_parts)
            self._cross[n_parts] = p.cross_fraction(
                self.graph.src_of_edge, self.graph.dst
            )
        return self._cross[n_parts]

    def partitioner(self, n_parts: int) -> VertexPartitioner:
        if n_parts not in self._partitioners:
            self._partitioners[n_parts] = VertexPartitioner(
                self.graph.indptr, n_parts
            )
        return self._partitioners[n_parts]

    # -- DRAM timing -----------------------------------------------------------

    def dram_cycles(self, total_bytes: float) -> float:
        return total_bytes / self.config.dram_bytes_per_cycle
