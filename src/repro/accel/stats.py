"""Simulation counters and reports."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SimCounters", "SimReport"]


@dataclass
class SimCounters:
    """Aggregate activity counters of a simulated run."""

    events_popped: int = 0
    events_generated: int = 0
    edges_fetched: int = 0
    edge_block_hits: int = 0
    edge_block_misses: int = 0
    vertex_reads: int = 0
    vertex_writes: int = 0
    dram_bytes: float = 0.0
    spill_bytes: float = 0.0
    partition_switch_bytes: float = 0.0
    rounds: int = 0

    def merge(self, other: "SimCounters") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    @property
    def edge_reads(self) -> int:
        """Edge slots read from the memory system (Fig. 16 metric)."""
        return self.edges_fetched


@dataclass
class SimReport:
    """Outcome of simulating one workflow on one accelerator config."""

    system: str
    workflow: str
    cycles: float
    counters: SimCounters
    n_partitions: int = 1
    pipelined: bool = False
    #: cycles per logical phase ("full", "add", "del", ...)
    phase_cycles: dict[str, float] = field(default_factory=dict)
    #: events per round of each execution, for Fig. 10-style series
    round_series: list[list[int]] = field(default_factory=list)
    #: per-wave elapsed cycles (wave label, cycles) — per-update latencies
    wave_cycles: list[tuple[str, float]] = field(default_factory=list)

    @property
    def time_ms(self) -> float:
        # clock is 1 GHz in every configuration used by the paper
        return self.cycles / 1e6 / 1.0

    @property
    def initial_eval_cycles(self) -> float:
        """Cycles spent on the one-time full evaluation (``full`` phase)."""
        return self.phase_cycles.get("full", 0.0)

    @property
    def update_cycles(self) -> float:
        """Cycles of the evolving-graph update work itself.

        The initial query evaluation (on ``G_0`` for streaming, ``G_c`` for
        the CommonGraph workflows) is a one-time setup the paper treats as
        outside the measured window (§3 treats CommonGraph construction as
        an offline cost; streaming systems report per-update times).  The
        headline comparisons therefore use update cycles; ``cycles`` keeps
        the total including setup.
        """
        return self.cycles - self.initial_eval_cycles

    @property
    def update_time_ms(self) -> float:
        return self.update_cycles / 1e6

    def speedup_over(self, other: "SimReport") -> float:
        """Update-phase speedup of this run relative to ``other``."""
        if self.update_cycles <= 0:
            return float("inf")
        return other.update_cycles / self.update_cycles

    def summary(self) -> str:
        c = self.counters
        return (
            f"{self.system}/{self.workflow}: {self.time_ms:.3f} ms, "
            f"{c.events_generated} events, {c.edges_fetched} edge reads, "
            f"{self.n_partitions} partition(s)"
        )

    def detailed(self) -> str:
        """Multi-line report: phases, traffic, cache, partitioning."""
        c = self.counters
        total_blocks = c.edge_block_hits + c.edge_block_misses
        hit_rate = c.edge_block_hits / total_blocks if total_blocks else 0.0
        lines = [
            self.summary(),
            f"  update {self.update_time_ms * 1000:.2f} us"
            f" + initial eval {self.initial_eval_cycles / 1e3:.2f} us",
            f"  rounds {c.rounds}, popped {c.events_popped}, "
            f"vertex r/w {c.vertex_reads}/{c.vertex_writes}",
            f"  DRAM {c.dram_bytes / 1024:.1f} KiB "
            f"(spills {c.spill_bytes / 1024:.1f} KiB), "
            f"edge-cache hit rate {hit_rate:.1%}",
        ]
        if self.phase_cycles:
            phases = ", ".join(
                f"{k}={v / 1e3:.1f}k" for k, v in sorted(self.phase_cycles.items())
            )
            lines.append(f"  phase cycles: {phases}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Machine-readable report (counters flattened)."""
        return {
            "system": self.system,
            "workflow": self.workflow,
            "cycles": self.cycles,
            "update_cycles": self.update_cycles,
            "time_ms": self.time_ms,
            "n_partitions": self.n_partitions,
            "pipelined": self.pipelined,
            "phase_cycles": dict(self.phase_cycles),
            "counters": {
                name: getattr(self.counters, name)
                for name in self.counters.__dataclass_fields__
            },
        }
