"""Cycle-approximate timing: replaying round traces against the datapath.

Each asynchronous round's latency is the maximum over the datapath's
parallel resources — PE event execution, event-generation streams, queue
bandwidth, NoC injection, and DRAM traffic — plus a fixed drain/refill
overhead between event waves.  This is the analytical stand-in for the
paper's SST cycle-accurate model (see the substitution table in DESIGN.md):
relative performance between workflows is governed by event counts, fetch
reuse and round structure, which the traces carry exactly.

Deletion events (JetStream only) pay an extra per-event factor for the
dependence-tree check and invalidation logic that MEGA removes from the
datapath ("we remove the expensive event deletion logic", §4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.cache import EdgeCacheModel
from repro.accel.config import AcceleratorConfig
from repro.accel.dram import RowBufferDram
from repro.accel.memory import MemorySystem, PartitionPlan
from repro.accel.noc import CrossbarNoC
from repro.accel.prefetch import PrefetchModel
from repro.accel.stats import SimCounters
from repro.engines.trace import RoundTrace

__all__ = ["RoundGroupCost", "TimingModel"]


@dataclass
class RoundGroupCost:
    """Cycle breakdown of one (possibly merged) round group."""

    pe: float
    queue: float
    noc: float
    dram: float
    overhead: float

    @property
    def total(self) -> float:
        return max(self.pe, self.queue, self.noc, self.dram) + self.overhead


class TimingModel:
    """Costs round groups and accumulates simulation counters."""

    def __init__(
        self,
        config: AcceleratorConfig,
        memory: MemorySystem,
        cache: EdgeCacheModel,
    ) -> None:
        self.config = config
        self.memory = memory
        self.cache = cache
        self.noc = CrossbarNoC(config)
        self.prefetch = PrefetchModel(config)
        self.dram_model = RowBufferDram(config) if config.detailed_dram else None

    def round_group_cost(
        self,
        rounds: list[tuple[RoundTrace, PartitionPlan]],
        counters: SimCounters,
    ) -> RoundGroupCost:
        """Cost of concurrently executing one round from several streams.

        Resources are shared: event/edge work sums across the streams, and
        the group pays a single drain overhead — this is exactly why
        concurrent snapshots and batch pipelining help.
        """
        cfg = self.config
        pe_events = 0.0
        gen_events = 0.0
        queue_ops = 0.0
        messages = 0.0
        dram_bytes = 0.0
        raw_events = 0.0  # un-factored, for prefetch lookahead

        for r, part in rounds:
            factor = (
                cfg.deletion_event_factor if r.phase == "del-tag" else 1.0
            )
            if cfg.row_wide_versions:
                popped, generated = r.events_popped, r.events_generated
            else:
                popped = r.version_events_popped
                generated = r.version_events_generated
            pe_events += popped * factor
            gen_events += generated * factor
            queue_ops += popped + generated
            messages += generated
            raw_events += popped
            hits, misses = self.cache.access_round(r.edge_blocks)
            counters.edge_block_hits += hits
            counters.edge_block_misses += misses
            dram_bytes += misses * cfg.block_bytes
            if self.dram_model is not None and misses:
                # row-buffer-aware service time for the missed blocks; the
                # bandwidth term below still covers non-block traffic
                miss_blocks = r.edge_blocks[-misses:] if misses <= r.edge_blocks.size else r.edge_blocks
                detailed_cycles = self.dram_model.access_round(miss_blocks)
                dram_bytes += max(
                    0.0,
                    detailed_cycles * cfg.dram_bytes_per_cycle
                    - misses * cfg.block_bytes,
                )
            if not cfg.row_wide_versions and r.events_generated:
                # without the unified value array, versions are not
                # co-scheduled per vertex and each re-fetches its edges:
                # scale miss traffic by the average version multiplicity
                dup = r.version_events_generated / r.events_generated
                dram_bytes += misses * cfg.block_bytes * max(0.0, dup - 1.0)
            if r.phase in ("del-tag", "del-pull", "del-recompute"):
                # KickStarter-style repair consults and rebuilds the
                # per-vertex dependence (approximation) metadata for every
                # event of the repair — off-chip state at real graph sizes.
                meta = r.events_generated * cfg.dependence_bytes
                dram_bytes += meta

            counters.events_popped += r.events_popped
            counters.events_generated += r.events_generated
            counters.edges_fetched += r.edges_fetched
            counters.vertex_reads += r.vertex_reads
            counters.vertex_writes += r.vertex_writes
            counters.rounds += 1

        counters.dram_bytes += dram_bytes
        pe = pe_events / cfg.n_pes + gen_events / cfg.generation_throughput_per_cycle
        queue = queue_ops / (cfg.n_queue_bins * cfg.queue_ports_per_bin)
        noc = self.noc.cycles(int(messages))
        dram = self.memory.dram_cycles(dram_bytes)
        if dram_bytes > 0:
            # the prefetchers (Fig. 12) hide DRAM latency behind compute
            # when enough events are queued ahead of the PEs
            dram += self.prefetch.latency_cycles(int(raw_events))
        return RoundGroupCost(
            pe=pe,
            queue=queue,
            noc=noc,
            dram=dram,
            overhead=cfg.round_overhead_cycles,
        )

    def execution_spill_cycles(
        self,
        touched_dst_count: int,
        n_versions: int,
        part: PartitionPlan,
        counters: SimCounters,
    ) -> float:
        """Partition spill traffic for one batch execution (Fig. 9).

        Events destined to inactive partitions spill to in-memory bins and
        replay at activation.  The bins coalesce per queue cell — at most
        one live event per vertex row — so traffic is bounded by the
        execution's unique destination rows, each paying a spill write,
        a replay read, and the destination's value-row access.
        """
        if part.n_partitions <= 1 or touched_dst_count == 0:
            return 0.0
        cfg = self.config
        # spill write + replay read; the replayed event's value row is
        # on-chip by construction (its partition is active at replay time)
        spill = touched_dst_count * part.cross_fraction * (
            2.0 * cfg.event_bytes
        )
        counters.spill_bytes += spill
        counters.dram_bytes += spill
        return self.memory.dram_cycles(spill)

    def partition_sweep_cycles(
        self, part: PartitionPlan, counters: SimCounters
    ) -> float:
        """Per-wave cost of sweeping the partitions (Fig. 9 scheduling).

        Only value rows that are actually touched move on/off chip (dirty
        write-back), and that traffic is charged per spilled event in
        :meth:`round_group_cost`; the sweep itself pays an activation
        latency per partition switch and flushes the edge cache.
        """
        if part.n_partitions <= 1:
            return 0.0
        self.cache.flush()
        switch_bytes = part.n_partitions * self.config.block_bytes
        counters.partition_switch_bytes += switch_bytes
        return part.n_partitions * (
            self.config.dram_latency_cycles + self.config.round_overhead_cycles
        )
