"""The binned, coalescing event queue (paper §4.2, Fig. 13).

The event queue is MEGA's central structure: multiple bins (sub-queues)
improve queueing bandwidth and define the partitioning granularity; each
bin is a direct-mapped matrix of cells, one cell per ``(vertex, version)``
pair of the bin's vertex range.  Insertion coalesces events for the same
cell with the algorithm's reduction, so each vertex/version has at most one
live event — no synchronization is ever needed downstream.

This is a *functional* model used for microarchitectural unit tests and
the exact event-level cross-check simulator; the trace-driven timing model
accounts for queue bandwidth analytically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.event import Event
from repro.algorithms.base import Algorithm

__all__ = ["QueueDecoder", "EventQueue"]


@dataclass(frozen=True)
class QueueDecoder:
    """Maps ``(vertex, version)`` to a queue location (Fig. 13's decoder).

    Vertices are interleaved across bins; within a bin, the row is the
    vertex's local index and the column is the version id — the
    direct-mapped "matrix of rows and columns" of §4.2.
    """

    n_bins: int
    n_versions: int

    def locate(self, vertex: int, version: int) -> tuple[int, int, int]:
        if not 0 <= version < self.n_versions:
            raise ValueError(f"version {version} out of range")
        bank = vertex % self.n_bins
        row = vertex // self.n_bins
        col = version
        return bank, row, col


class EventQueue:
    """Coalescing event queue with per-bin storage."""

    def __init__(
        self, algorithm: Algorithm, n_bins: int = 16, n_versions: int = 1
    ) -> None:
        self.algorithm = algorithm
        self.decoder = QueueDecoder(n_bins, n_versions)
        self.n_bins = n_bins
        # one dict of live cells per bin: (row, col) -> Event
        self._bins: list[dict[tuple[int, int], Event]] = [
            {} for __ in range(n_bins)
        ]
        self.inserts = 0
        self.coalesced = 0

    def insert(self, event: Event) -> bool:
        """Insert an event; returns True if it coalesced into a live cell.

        Coalescing applies the algorithm's reduction to the payloads, so
        the surviving event carries the best delta seen so far (delete
        events never coalesce with value events — JetStream semantics —
        but MEGA never generates delete events in the first place).
        """
        bank, row, col = self.decoder.locate(event.vertex, event.version)
        cell = (row, col)
        live = self._bins[bank].get(cell)
        self.inserts += 1
        if live is None or live.is_delete or event.is_delete:
            self._bins[bank][cell] = event
            return live is not None
        best = self.algorithm.combine(live.payload, event.payload)
        keep = live if best == live.payload else event
        if keep is not live:
            self._bins[bank][cell] = keep
        self.coalesced += 1
        return True

    def pop_round(self) -> list[Event]:
        """Drain every live event — one asynchronous round's worth."""
        out: list[Event] = []
        for b in self._bins:
            out.extend(b.values())
            b.clear()
        out.sort(key=lambda e: (e.version, e.vertex))
        return out

    def pop_bin(self, bank: int) -> list[Event]:
        """Drain one bin (partition-granular scheduling, §4.2)."""
        out = sorted(
            self._bins[bank].values(), key=lambda e: (e.version, e.vertex)
        )
        self._bins[bank].clear()
        return out

    def occupancy(self) -> int:
        return sum(len(b) for b in self._bins)

    def bin_occupancy(self) -> list[int]:
        return [len(b) for b in self._bins]

    def __len__(self) -> int:
        return self.occupancy()
