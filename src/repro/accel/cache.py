"""Edge-cache model: block-granular LRU via stack-distance approximation.

The per-PE edge caches (1 KB each in Table 3) capture reuse of out-edge
blocks across rounds.  Simulating a precise LRU per access would dominate
the simulator's runtime, so we use the standard stack-distance
approximation: an access hits iff fewer than ``capacity_blocks`` *distinct*
blocks were referenced since the block's previous access.  Accesses arrive
as per-round batches of unique block ids (one fetch per block per round —
within-round sharing across versions is already coalesced by the engine).
"""

from __future__ import annotations

import numpy as np

__all__ = ["EdgeCacheModel"]


class EdgeCacheModel:
    """Approximate-LRU cache over edge blocks."""

    def __init__(self, capacity_blocks: int, n_blocks: int) -> None:
        if capacity_blocks < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_blocks = int(capacity_blocks)
        self.n_blocks = int(n_blocks)
        # value of the distinct-access counter at each block's last access;
        # -inf (well, a very negative number) = never accessed.
        self._stamp = np.full(n_blocks, -(2**62), dtype=np.int64)
        self._distinct_accesses = 0
        self.hits = 0
        self.misses = 0

    def access_round(self, blocks: np.ndarray) -> tuple[int, int]:
        """Access a round's unique blocks; returns ``(hits, misses)``."""
        if blocks.size == 0:
            return 0, 0
        blocks = np.asarray(blocks, dtype=np.int64)
        age = self._distinct_accesses - self._stamp[blocks]
        hit_mask = age <= self.capacity_blocks
        hits = int(hit_mask.sum())
        misses = int(blocks.size - hits)
        # stamp all accessed blocks at the current position; advance the
        # distinct counter by the number of blocks touched this round.
        self._stamp[blocks] = self._distinct_accesses + blocks.size
        self._distinct_accesses += blocks.size
        self.hits += hits
        self.misses += misses
        return hits, misses

    def flush(self) -> None:
        """Invalidate everything (partition switch / new graph)."""
        self._stamp.fill(-(2**62))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
