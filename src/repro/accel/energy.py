"""Energy model: turning the Table 5 power breakdown into per-run energy.

§5.3 closes with "Consuming only 10 Watts, MEGA is substantially more
power-efficient than our baseline GPU and CPU systems."  This module
quantifies that: a run's energy is static power times runtime plus dynamic
energy proportional to the activity counters, and the software baselines
are costed with their platforms' board/package power over their modelled
runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.power import PowerAreaModel
from repro.accel.stats import SimReport

__all__ = ["EnergyModel", "EnergyReport", "PLATFORM_POWER_W"]

#: typical sustained board/package power of the paper's baselines
PLATFORM_POWER_W = {
    "mega": None,  # derived from the Table 5 model
    "jetstream": None,
    "xeon-60core": 2 * 165.0,  # C2-standard-60: two high-TDP sockets
    "k80": 300.0,  # NVIDIA Tesla K80 board power
}


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting of one run."""

    system: str
    time_ms: float
    avg_power_w: float
    energy_mj: float  # millijoules

    def efficiency_over(self, other: "EnergyReport") -> float:
        """How many times less energy this run used than ``other``."""
        return other.energy_mj / self.energy_mj if self.energy_mj else float("inf")


class EnergyModel:
    """Energy for accelerator reports and modelled software baselines."""

    def __init__(self, power: PowerAreaModel | None = None) -> None:
        self.power = power if power is not None else PowerAreaModel()
        total = self.power.total()
        self._static_w = total.static_mw / 1e3
        self._dynamic_w = total.dynamic_mw / 1e3

    def accelerator_energy(self, report: SimReport) -> EnergyReport:
        """Static power over the run plus activity-scaled dynamic power.

        The Table 5 dynamic figure corresponds to full-tilt operation; the
        run's duty cycle is approximated by the PE-occupancy implied by its
        event counts.
        """
        seconds = report.update_time_ms / 1e3
        cfg = self.power.config
        cycles = max(report.update_cycles, 1.0)
        duty = min(
            1.0,
            report.counters.events_popped
            / (cycles * cfg.n_pes),
        )
        avg_power = self._static_w + self._dynamic_w * duty
        return EnergyReport(
            system=report.system,
            time_ms=report.update_time_ms,
            avg_power_w=avg_power,
            energy_mj=avg_power * seconds * 1e3,
        )

    @staticmethod
    def software_energy(
        system: str, platform: str, time_ms: float
    ) -> EnergyReport:
        """Board/package power over the baseline's modelled runtime."""
        try:
            watts = PLATFORM_POWER_W[platform]
        except KeyError:
            raise KeyError(
                f"unknown platform {platform!r}; choose from "
                f"{sorted(k for k, v in PLATFORM_POWER_W.items() if v)}"
            ) from None
        if watts is None:
            raise ValueError(f"platform {platform!r} is an accelerator")
        return EnergyReport(
            system=system,
            time_ms=time_ms,
            avg_power_w=watts,
            energy_mj=watts * time_ms,
        )
