"""Hardware version table (paper §4.3).

"MEGA's computation scheduler includes a hardware version table: a
look-up-table containing information about the composition of different
snapshots and their processing status."  Entries track which batches each
snapshot's state currently includes and whether a batch execution is
pending, active, or complete; the table is what lets snapshots ``0..i``
alias the shared chain state until they peel off.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.evolving.batches import BatchId
from repro.resilience import faults

__all__ = ["BatchStatus", "VersionEntry", "VersionTable"]


class BatchStatus(enum.Enum):
    PENDING = "pending"
    ACTIVE = "active"
    COMPLETE = "complete"


@dataclass
class VersionEntry:
    """Composition and status of one snapshot's value state."""

    snapshot: int
    #: batches already applied to this snapshot's state
    applied: set[BatchId] = field(default_factory=set)
    #: state id this snapshot aliases (chain sharing); None = own state
    alias_of: int | None = None
    complete: bool = False


class VersionTable:
    """Tracks snapshot composition, aliasing, and batch status."""

    def __init__(self, n_snapshots: int) -> None:
        if n_snapshots < 1:
            raise ValueError("need at least one snapshot")
        self.entries = [VersionEntry(k) for k in range(n_snapshots)]
        self.batch_status: dict[BatchId, BatchStatus] = {}
        # Initially every snapshot aliases the chain (state of snapshot 0).
        for e in self.entries[1:]:
            e.alias_of = 0

    @property
    def n_snapshots(self) -> int:
        return len(self.entries)

    def alias_group(self, snapshot: int) -> list[int]:
        """All snapshots sharing the given snapshot's state."""
        root = self.resolve(snapshot)
        return [
            e.snapshot
            for e in self.entries
            if self.resolve(e.snapshot) == root
        ]

    def resolve(self, snapshot: int) -> int:
        """Follow alias links to the owning state."""
        e = self.entries[snapshot]
        seen = set()
        while e.alias_of is not None:
            if e.snapshot in seen:  # pragma: no cover - defensive
                raise RuntimeError("alias cycle in version table")
            seen.add(e.snapshot)
            e = self.entries[e.alias_of]
        return e.snapshot

    def peel(self, snapshot: int) -> None:
        """Give ``snapshot`` its own state (copy-on-diverge)."""
        e = self.entries[snapshot]
        if e.alias_of is None:
            return
        owner = self.entries[self.resolve(snapshot)]
        e.applied = set(owner.applied)
        e.alias_of = None

    def begin_batch(self, batch: BatchId, targets: list[int]) -> None:
        """Mark a batch active on its target snapshots (Step A in Fig. 12)."""
        if self.batch_status.get(batch) is BatchStatus.ACTIVE:
            raise RuntimeError(f"batch {batch} already active")
        for t in targets:
            if self.entries[t].complete:
                raise RuntimeError(f"snapshot {t} already complete")
        self.batch_status[batch] = BatchStatus.ACTIVE

    def finish_batch(self, batch: BatchId, targets: list[int]) -> None:
        """Record batch completion and update target compositions."""
        if self.batch_status.get(batch) is not BatchStatus.ACTIVE:
            raise RuntimeError(f"batch {batch} is not active")
        self.batch_status[batch] = BatchStatus.COMPLETE
        roots = {self.resolve(t) for t in targets}
        for r in roots:
            self.entries[r].applied.add(batch)
        fire = faults.maybe_fire("version-table.corrupt-entry")
        if fire is not None:
            self._corrupt(batch, sorted(roots), fire)

    def _corrupt(
        self, batch: BatchId, roots: list[int], fire: "faults.Fire"
    ) -> None:
        """Injected fault: damage the composition record just written.

        Either the completion is *lost* (the batch never lands in a target
        entry) or it is *misrouted* (recorded against an unrelated
        snapshot).  Both leave the table claiming a composition that does
        not match the state the datapath actually built.
        """
        root = int(roots[int(fire.rng.integers(len(roots)))])
        others = [e.snapshot for e in self.entries if e.snapshot != root]
        if others and fire.rng.integers(2):
            victim = int(others[int(fire.rng.integers(len(others)))])
            self.entries[victim].applied.add(batch)
            fire.note(mode="misroute", batch=str(batch), entry=victim)
        else:
            self.entries[root].applied.discard(batch)
            fire.note(mode="drop", batch=str(batch), entry=root)

    def composition(self, snapshot: int) -> set[BatchId]:
        return set(self.entries[self.resolve(snapshot)].applied)

    def mark_complete(self, snapshot: int) -> None:
        self.entries[snapshot].complete = True

    def all_complete(self) -> bool:
        return all(e.complete for e in self.entries)
