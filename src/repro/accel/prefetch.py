"""Prefetcher model (Fig. 12: vertex-buffer and edge-ID-buffer prefetchers).

JetStream/MEGA prefetch a pending event's vertex state and out-edge list
while earlier events execute (Steps 3 and 6 in Fig. 12), hiding DRAM
latency behind compute.  Coverage depends on lookahead: with many events
queued ahead of the PEs the prefetchers run far enough ahead to hide
nearly all latency; in the long tail of a batch (few live events) there is
nothing to run ahead of, and fetches stall the pipeline.

The timing model multiplies the per-round DRAM latency charge by
``1 - coverage(events)``; everything else about DRAM (bandwidth) is
unaffected — prefetching hides latency, it does not create bandwidth.
"""

from __future__ import annotations

from repro.accel.config import AcceleratorConfig

__all__ = ["PrefetchModel"]


class PrefetchModel:
    """Latency-hiding coverage as a function of round occupancy."""

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config
        #: events in flight needed for full coverage: enough to keep every
        #: PE busy for one full DRAM round trip
        self.saturation_events = max(
            1, config.n_pes * config.dram_latency_cycles // 4
        )
        self.max_coverage = 0.95

    def coverage(self, events_popped: int) -> float:
        """Fraction of DRAM latency hidden this round."""
        if events_popped <= 0:
            return 0.0
        fill = min(1.0, events_popped / self.saturation_events)
        return self.max_coverage * fill

    def latency_cycles(self, events_popped: int) -> float:
        """Exposed DRAM latency for a round with this many events."""
        base = float(self.config.dram_latency_cycles)
        return base * (1.0 - self.coverage(events_popped))
