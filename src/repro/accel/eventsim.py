"""Exact event-level simulator — the microarchitectural cross-check.

The production engines propagate in vectorized rounds; this simulator
instead executes the datapath *literally*, one event at a time, using the
real :class:`~repro.accel.queue.EventQueue` with its per-bank coalescing
and version decoding (Fig. 13), the batch-reader seeding of §4.2, and
per-event processing in version-tagged cells.

It is deliberately slow (pure Python, per-event) and exists to validate
that the microarchitectural semantics — coalescing reductions, at most one
live event per (vertex, version) cell, version isolation, order-free
convergence — compute exactly the same fixpoints as the round-based
engine.  The test suite runs it on small graphs against ground truth and
against :class:`~repro.engines.daic.MultiVersionEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accel.event import Event
from repro.accel.processor import PECluster
from repro.accel.queue import EventQueue
from repro.algorithms.base import Algorithm
from repro.evolving.unified_csr import UnifiedCSR
from repro.resilience import faults
from repro.resilience.budget import Budget

__all__ = ["EventLevelSimulator", "EventSimStats"]


@dataclass
class EventSimStats:
    """Activity counters of an event-level run."""

    rounds: int = 0
    events_processed: int = 0
    events_generated: int = 0
    stale_events: int = 0
    queue_inserts: int = 0
    queue_coalesced: int = 0
    pe_cycles: int = 0
    per_round_events: list[int] = field(default_factory=list)


class EventLevelSimulator:
    """Per-event execution of the MEGA datapath (additions only)."""

    def __init__(
        self,
        algorithm: Algorithm,
        unified: UnifiedCSR,
        n_versions: int = 1,
        n_bins: int = 16,
    ) -> None:
        self.algorithm = algorithm
        self.unified = unified
        self.n_versions = int(n_versions)
        self.queue = EventQueue(algorithm, n_bins=n_bins, n_versions=n_versions)
        self.pes = PECluster()
        self.values = np.tile(
            np.full(unified.n_vertices, algorithm.identity),
            (self.n_versions, 1),
        )
        #: per-version bool masks over union edges (graph membership)
        self.presence = np.zeros(
            (self.n_versions, unified.n_union_edges), dtype=bool
        )
        self.stats = EventSimStats()

    # -- setup ----------------------------------------------------------------

    def set_graph(self, version: int, presence: np.ndarray) -> None:
        self.presence[version] = presence

    def set_source(self, source: int, versions: list[int] | None = None) -> None:
        """Seed the query source: one event per version (§4.1)."""
        targets = range(self.n_versions) if versions is None else versions
        for v in targets:
            self._insert(Event(source, self.algorithm.source_value, version=v))

    def seed_batch(
        self, edge_idx: np.ndarray, versions: list[int], batch: int = 0
    ) -> None:
        """Batch reader: generate one event per batch edge per live version
        (Step 0 in Fig. 12) and extend the target graphs."""
        graph = self.unified.graph
        for v in versions:
            self.presence[v, edge_idx] = True
        for e in np.asarray(edge_idx, dtype=np.int64):
            src = int(graph.src_of_edge[e])
            dst = int(graph.dst[e])
            wt = float(graph.wt[e])
            for v in versions:
                val_u = self.values[v, src]
                if val_u == self.algorithm.identity:
                    continue
                payload = float(
                    self.algorithm.candidate(np.float64(val_u), np.float64(wt))
                )
                self._insert(Event(dst, payload, version=v, batch=batch))

    def seed_deletions(
        self, edge_idx: np.ndarray, version: int = 0, batch: int = 0
    ) -> "np.ndarray":
        """JetStream's deletion path, at event granularity (§2.2 / Fig. 2).

        The batch reader emits one *delete event* per removed edge; a
        delete event invalidates its destination iff the destination's
        value was derived from that edge, and invalidation cascades as
        further delete events along out-edges.  After the cascade, the
        invalidated region re-pulls from its intact in-edge border and
        normal value events repair it.  Requires single-version mode.

        Returns the set of invalidated vertices (for inspection).
        """
        algo = self.algorithm
        graph = self.unified.graph
        unified = self.unified
        edge_idx = np.asarray(edge_idx, dtype=np.int64)
        if np.any(~self.presence[version, edge_idx]):
            raise ValueError("cannot delete edges absent from the version")
        self.presence[version, edge_idx] = False

        # dependence tree: recompute parents from the converged values
        # (val(v) == candidate(val(parent), wt) characterizes certificates)
        deleted = set(int(e) for e in edge_idx)
        parent = np.full(unified.n_vertices, -1, dtype=np.int64)
        for slot in range(graph.n_edges):
            if not self.presence[version, slot] and slot not in deleted:
                continue
            u = int(graph.src_of_edge[slot])
            v = int(graph.dst[slot])
            val_u = self.values[version, u]
            if val_u == algo.identity:
                continue
            cand = float(algo.candidate(np.float64(val_u), np.float64(graph.wt[slot])))
            if cand == self.values[version, v] and parent[v] == -1:
                parent[v] = slot

        # delete-event cascade
        invalidated: set[int] = set()
        frontier: list[int] = []
        for e in edge_idx:
            v = int(graph.dst[e])
            self.stats.events_generated += 1
            if parent[v] == e and v not in invalidated:
                invalidated.add(v)
                frontier.append(v)
        while frontier:
            u = frontier.pop()
            lo, hi = int(graph.indptr[u]), int(graph.indptr[u + 1])
            for slot in range(lo, hi):
                if not self.presence[version, slot]:
                    continue
                self.stats.events_generated += 1
                v = int(graph.dst[slot])
                if parent[v] == slot and v not in invalidated:
                    invalidated.add(v)
                    frontier.append(v)

        # trim and repair: reset, then re-pull from the intact border
        for v in invalidated:
            self.values[version, v] = algo.identity
        rev = unified.reverse_graph()
        origin_of = unified.reverse_edge_origin
        for v in invalidated:
            lo, hi = int(rev.indptr[v]), int(rev.indptr[v + 1])
            for r_slot in range(lo, hi):
                slot = int(origin_of[r_slot])
                if not self.presence[version, slot]:
                    continue
                u = int(rev.dst[r_slot])
                if u in invalidated:
                    continue
                val_u = self.values[version, u]
                if val_u == algo.identity:
                    continue
                payload = float(
                    algo.candidate(np.float64(val_u), np.float64(graph.wt[slot]))
                )
                self._insert(
                    Event(v, payload, version=version, batch=batch)
                )
        return np.fromiter(invalidated, dtype=np.int64, count=len(invalidated))

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        max_rounds: int = 1_000_000,
        order: str = "fifo",
        budget: Budget | None = None,
    ) -> np.ndarray:
        """Drain the queue to convergence; returns the value matrix.

        ``order`` selects the intra-round processing policy: ``"fifo"``
        processes events in queue order, ``"best-first"`` processes the
        highest-quality deltas first — the message reordering §3 credits
        the asynchronous model with ("its ability to reorder messages is
        leveraged to optimize utilization").  Final values are identical
        (order independence); the wasted-work statistics differ.

        ``budget`` bounds the run (rounds, processed events, wall clock);
        a breach raises :class:`~repro.resilience.budget.BudgetExceeded`
        with the partial :class:`EventSimStats` attached, so an
        adversarial or corrupted event stream cannot spin forever.  When
        omitted, ``max_rounds`` alone applies (legacy behaviour).
        """
        if order not in ("fifo", "best-first"):
            raise ValueError("order must be 'fifo' or 'best-first'")
        if budget is None:
            budget = Budget(max_rounds=max_rounds)
        clock = budget.start()
        algo = self.algorithm
        graph = self.unified.graph
        while len(self.queue):
            clock.charge(rounds=1, stats=self.stats)
            self.stats.rounds += 1
            batch = self.queue.pop_round()
            clock.charge(events=len(batch), stats=self.stats)
            if order == "best-first":
                batch.sort(
                    key=lambda e: e.payload if algo.minimize else -e.payload
                )
            self.stats.per_round_events.append(len(batch))
            degrees: list[int] = []
            for event in batch:
                self.stats.events_processed += 1
                current = self.values[event.version, event.vertex]
                if not algo.better(event.payload, current):
                    # coalesced-away or stale delta: no state change
                    self.stats.stale_events += 1
                    degrees.append(0)
                    continue
                self.values[event.version, event.vertex] = event.payload
                lo, hi = graph.indptr[event.vertex], graph.indptr[event.vertex + 1]
                degrees.append(int(hi - lo))
                for slot in range(int(lo), int(hi)):
                    if not self.presence[event.version, slot]:
                        continue
                    payload = float(
                        algo.candidate(
                            np.float64(event.payload),
                            np.float64(graph.wt[slot]),
                        )
                    )
                    self._insert(
                        Event(
                            int(graph.dst[slot]),
                            payload,
                            version=event.version,
                            batch=event.batch,
                        )
                    )
            self.stats.pe_cycles += self.pes.dispatch_round(degrees)
        return self.values

    def _insert(self, event: Event) -> None:
        fire = faults.maybe_fire("eventsim.drop-event")
        if fire is not None:
            # the event vanishes before reaching the queue
            fire.note(vertex=event.vertex, version=event.version,
                      payload=event.payload)
            return
        self.stats.events_generated += 1
        self.queue.insert(event)
        dup = faults.maybe_fire("eventsim.duplicate-event")
        if dup is not None:
            # delivered twice; per-(vertex, version) coalescing must absorb
            # the duplicate without changing the fixpoint
            dup.note(vertex=event.vertex, version=event.version)
            self.stats.events_generated += 1
            self.queue.insert(event)
        self.stats.queue_inserts = self.queue.inserts
        self.stats.queue_coalesced = self.queue.coalesced
