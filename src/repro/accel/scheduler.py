"""Batch scheduler: wave-based concurrent execution with batch pipelining.

The batch scheduling logic (§4.3) "controls which batches are active on
which instances of the graph" and, together with the event scheduler,
keeps all instances proceeding at an even pace.  The simulator expresses a
workflow as an ordered list of *waves*: groups of batch executions with no
mutual dependencies that run concurrently (Algorithm 1's ``parallel for``;
Direct-Hop's independent hops; sibling hops of the Work-Sharing tree).

Within a wave the scheduler advances every stream one round per step,
merging the rounds into a single round group — events from different
streams share the PEs, queue bandwidth, NoC, and DRAM, and the group pays
one drain overhead.  *Batch pipelining* (§3.2, Fig. 11) injects the next
wave early once every live stream has entered its long tail (live events
below the configured threshold), eliminating the tails' underutilized
rounds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.accel.memory import PartitionPlan
from repro.accel.stats import SimCounters
from repro.accel.timing import TimingModel
from repro.engines.trace import ExecutionTrace

__all__ = ["Wave", "StreamState", "WaveScheduler", "ScheduleOutcome"]


@dataclass
class Wave:
    """A group of executions that may run concurrently."""

    executions: list[ExecutionTrace]
    partition: PartitionPlan
    label: str = ""


@dataclass
class StreamState:
    """One execution's remaining rounds inside the scheduler."""

    rounds: deque
    partition: PartitionPlan
    phase: str

    @property
    def head_events(self) -> int:
        return self.rounds[0].events_popped + self.rounds[0].events_generated


@dataclass
class ScheduleOutcome:
    cycles: float
    counters: SimCounters
    phase_cycles: dict[str, float] = field(default_factory=dict)
    round_groups: int = 0
    waves_injected_early: int = 0
    #: (wave label, cycles elapsed while the wave was the newest active)
    wave_cycles: list[tuple[str, float]] = field(default_factory=list)


class WaveScheduler:
    """Advances waves of execution streams through the timing model."""

    def __init__(
        self,
        timing: TimingModel,
        pipeline: bool = False,
        threshold_events: int | None = None,
    ) -> None:
        self.timing = timing
        self.pipeline = pipeline
        self.threshold = (
            threshold_events
            if threshold_events is not None
            else timing.config.pipeline_threshold_events
        )

    def run(self, waves: list[Wave]) -> ScheduleOutcome:
        outcome = ScheduleOutcome(0.0, SimCounters())
        pending = deque(waves)
        active: list[StreamState] = []
        current_label = ""
        label_start = 0.0

        def close_label() -> None:
            nonlocal label_start
            if current_label:
                outcome.wave_cycles.append(
                    (current_label, outcome.cycles - label_start)
                )
            label_start = outcome.cycles

        while pending or active:
            if not active:
                close_label()
                wave = pending.popleft()
                current_label = wave.label
                self._activate(wave, active, outcome)
                continue
            if (
                self.pipeline
                and pending
                and all(s.head_events < self.threshold for s in active)
            ):
                close_label()
                wave = pending.popleft()
                current_label = wave.label
                self._activate(wave, active, outcome)
                outcome.waves_injected_early += 1
                if not active:
                    continue
            group = [(s.rounds.popleft(), s.partition) for s in active]
            cost = self.timing.round_group_cost(group, outcome.counters)
            outcome.cycles += cost.total
            outcome.round_groups += 1
            share = cost.total / len(active)
            for s in active:
                outcome.phase_cycles[s.phase] = (
                    outcome.phase_cycles.get(s.phase, 0.0) + share
                )
            active[:] = [s for s in active if s.rounds]
        close_label()
        return outcome

    def _activate(
        self, wave: Wave, active: list[StreamState], outcome: ScheduleOutcome
    ) -> None:
        sweep = self.timing.partition_sweep_cycles(
            wave.partition, outcome.counters
        )
        outcome.cycles += sweep
        if sweep:
            outcome.phase_cycles["partition"] = (
                outcome.phase_cycles.get("partition", 0.0) + sweep
            )
        for e in wave.executions:
            spill = self.timing.execution_spill_cycles(
                e.touched_dst_count,
                len(e.targets),
                wave.partition,
                outcome.counters,
            )
            outcome.cycles += spill
            if spill:
                outcome.phase_cycles["partition"] = (
                    outcome.phase_cycles.get("partition", 0.0) + spill
                )
            if e.rounds:
                active.append(
                    StreamState(deque(e.rounds), wave.partition, e.phase)
                )
