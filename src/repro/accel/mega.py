"""MEGA — the evolving-graph accelerator (the paper's contribution).

MEGA keeps multiple snapshot versions active at once, executes any of the
three deletion-free CommonGraph workflows (Direct-Hop, Work-Sharing, or
Batch-Oriented-Execution), and optionally pipelines batches: a new batch
execution is injected once the current one enters its long tail (§3.2).
The datapath is JetStream's with the deletion logic removed and version
tags, the version table, and the batch scheduler added (§4.3).
"""

from __future__ import annotations

from repro.accel.config import AcceleratorConfig, mega_config
from repro.accel.simulate import simulate_plan
from repro.accel.stats import SimReport
from repro.algorithms.base import Algorithm
from repro.engines.executor import WorkflowResult
from repro.evolving.snapshots import EvolvingScenario
from repro.schedule import plan_for

__all__ = ["MegaSimulator", "MEGA_WORKFLOWS"]

MEGA_WORKFLOWS = ("direct-hop", "work-sharing", "boe")


class MegaSimulator:
    """Cycle-approximate model of the MEGA accelerator."""

    def __init__(
        self,
        workflow: str = "boe",
        pipeline: bool = False,
        config: AcceleratorConfig | None = None,
    ) -> None:
        if workflow not in MEGA_WORKFLOWS:
            raise ValueError(
                f"MEGA supports workflows {MEGA_WORKFLOWS}, not {workflow!r}"
            )
        if pipeline and workflow != "boe":
            raise ValueError("batch pipelining applies to the BOE workflow")
        self.workflow = workflow
        self.pipeline = pipeline
        self.config = config if config is not None else mega_config()

    def run(
        self,
        scenario: EvolvingScenario,
        algorithm: Algorithm,
        validate: bool = False,
    ) -> SimReport:
        report, __ = self.run_with_values(scenario, algorithm, validate)
        return report

    def run_with_values(
        self,
        scenario: EvolvingScenario,
        algorithm: Algorithm,
        validate: bool = False,
    ) -> tuple[SimReport, WorkflowResult]:
        plan = plan_for(self.workflow, scenario.unified)
        report, result = simulate_plan(
            scenario,
            algorithm,
            plan,
            self.config,
            concurrent=True,  # multiple active snapshots (§4.2)
            pipeline=self.pipeline,
            validate=validate,
        )
        if self.pipeline:
            report.workflow = f"{self.workflow}+bp"
        return report, result
