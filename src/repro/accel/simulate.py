"""End-to-end simulation: run a workflow plan and cost it on an accelerator.

``simulate_plan`` is the single entry point both accelerator frontends use:

1. execute the plan functionally (producing correct snapshot values and
   per-round traces);
2. derive the scheduler waves from the plan's stage structure;
3. replay the traces through the timing model.

The returned :class:`~repro.accel.stats.SimReport` carries the cycle count,
activity counters, and per-phase breakdown used by the paper's figures.
"""

from __future__ import annotations

from repro.accel.cache import EdgeCacheModel
from repro.accel.config import AcceleratorConfig
from repro.accel.memory import MemorySystem
from repro.accel.scheduler import Wave, WaveScheduler
from repro.accel.stats import SimReport
from repro.accel.timing import TimingModel
from repro.algorithms.base import Algorithm
from repro.engines.executor import PlanExecutor, WorkflowResult
from repro.engines.trace import ExecutionTrace
from repro.evolving.snapshots import EvolvingScenario
from repro.resilience.budget import Budget
from repro.schedule.plan import ApplyEdges, DeleteEdges, EvalFull, Plan

__all__ = ["simulate_plan", "build_waves", "config_for_scenario"]


def config_for_scenario(
    scenario: EvolvingScenario, base: AcceleratorConfig
) -> AcceleratorConfig:
    """Apply the scenario's proxy capacity scale to a configuration."""
    if base.capacity_scale is not None:
        return base
    scale = scenario.metadata.get("capacity_scale", 1.0)
    return base.scaled(float(scale))


def build_waves(
    plan: Plan,
    executions: list[ExecutionTrace],
    memory: MemorySystem,
    concurrent: bool,
) -> list[Wave]:
    """Group a plan's executions into scheduler waves.

    Steps sharing a ``stage`` value are mutually independent (Algorithm 1's
    ``parallel for``, Direct-Hop's hops, same-depth Work-Sharing hops) and
    form one wave; un-staged steps run alone.  With ``concurrent=False``
    (the JetStream baseline: one graph at a time) every execution is its
    own wave.
    """
    work_steps = [
        s
        for s in plan.steps
        if isinstance(s, (EvalFull, ApplyEdges, DeleteEdges))
    ]
    if len(work_steps) != len(executions):
        raise ValueError(
            f"plan has {len(work_steps)} work steps but the run produced "
            f"{len(executions)} executions"
        )

    groups: dict[object, list[tuple]] = {}
    order: list[object] = []
    for i, (step, e) in enumerate(zip(work_steps, executions)):
        stage = getattr(step, "stage", None)
        key = ("stage", stage) if (concurrent and stage is not None) else ("solo", i)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append((step, e))

    waves = []
    for key in order:
        members = groups[key]
        # All the wave's target versions are resident together (MEGA keeps
        # multiple active snapshots in the unified value array, §4.2);
        # the wave partitions the graph when they do not fit (Fig. 9).
        n_versions = sum(
            len(step.targets) if isinstance(step, ApplyEdges) else 1
            for step, __ in members
        )
        waves.append(
            Wave(
                executions=[e for __, e in members],
                partition=memory.partition_plan(n_versions),
                label=str(key[1]),
            )
        )
    return waves


def simulate_plan(
    scenario: EvolvingScenario,
    algorithm: Algorithm,
    plan: Plan,
    config: AcceleratorConfig,
    concurrent: bool,
    pipeline: bool = False,
    validate: bool = False,
    budget: Budget | None = None,
) -> tuple[SimReport, WorkflowResult]:
    """Execute a plan functionally and replay it on the modelled hardware.

    ``budget`` (optional) watchdogs the functional execution: total rounds,
    generated events, and wall clock, breached as a structured
    :class:`~repro.resilience.budget.BudgetExceeded`.
    """
    config = config_for_scenario(scenario, config)
    executor = PlanExecutor(
        scenario,
        algorithm,
        edges_per_block=config.edges_per_block,
        budget=budget,
    )
    result = executor.run(plan)
    if validate:
        from repro.engines.validation import validate_workflow

        validate_workflow(scenario, algorithm, result)

    memory = MemorySystem(config, scenario.unified.graph)
    fwd_blocks = (
        scenario.unified.n_union_edges + config.edges_per_block - 1
    ) // config.edges_per_block
    # the transpose (CSC) arrays used by deletion repair occupy their own
    # block region above the forward CSR blocks
    cache = EdgeCacheModel(
        capacity_blocks=int(config.edge_cache_bytes // config.block_bytes),
        n_blocks=max(1, 2 * fwd_blocks + 1),
    )
    timing = TimingModel(config, memory, cache)
    scheduler = WaveScheduler(timing, pipeline=pipeline)
    waves = build_waves(plan, result.collector.executions, memory, concurrent)
    outcome = scheduler.run(waves)

    max_parts = max((w.partition.n_partitions for w in waves), default=1)
    report = SimReport(
        system=config.name,
        workflow=plan.name,
        cycles=outcome.cycles,
        counters=outcome.counters,
        n_partitions=max_parts,
        pipelined=pipeline,
        phase_cycles=outcome.phase_cycles,
        round_series=[
            e.events_per_round() for e in result.collector.executions
        ],
        wave_cycles=outcome.wave_cycles,
    )
    return report, result
