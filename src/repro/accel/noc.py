"""On-chip network model: the 16x16 crossbar of §4.3.

"The event generation streams are interconnected with the queues via a
network on a chip implemented as a 16x16 crossbar with each port shared
among two of the 32 event generators."  Injection throughput is therefore
bounded by the port count; the serialization of two generators per port is
what keeps the NoC, rather than the generators, the binding constraint at
full tilt.
"""

from __future__ import annotations

from repro.accel.config import AcceleratorConfig

__all__ = ["CrossbarNoC"]


class CrossbarNoC:
    """Analytical crossbar throughput model."""

    def __init__(self, config: AcceleratorConfig) -> None:
        self.ports = config.noc_ports
        generators = config.n_pes * config.gen_units_per_pe
        #: how many generators contend for each input port
        self.generators_per_port = max(1, generators // self.ports)

    def cycles(self, messages: int) -> float:
        """Cycles to move ``messages`` events from generators to queue bins."""
        if messages <= 0:
            return 0.0
        return messages / self.ports

    @property
    def peak_messages_per_cycle(self) -> int:
        return self.ports
