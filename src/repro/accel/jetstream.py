"""JetStream — the streaming-accelerator hardware baseline (Rahman+, MICRO'21).

JetStream processes one graph at a time, streaming batch pairs of edge
additions and deletions snapshot by snapshot.  Additions are cheap
incremental events; deletions run the expensive invalidate-and-recompute
path (Fig. 2).  MEGA inherits JetStream's datapath, so the baseline shares
the queue/PE/NoC/memory models and differs only in workflow (sequential
streaming), deletion support, and single-snapshot residency.
"""

from __future__ import annotations

from repro.accel.config import AcceleratorConfig, jetstream_config
from repro.accel.simulate import simulate_plan
from repro.accel.stats import SimReport
from repro.algorithms.base import Algorithm
from repro.engines.executor import WorkflowResult
from repro.evolving.snapshots import EvolvingScenario
from repro.schedule.streaming import streaming_plan

__all__ = ["JetStreamSimulator"]


class JetStreamSimulator:
    """Cycle-approximate model of the JetStream streaming accelerator."""

    def __init__(self, config: AcceleratorConfig | None = None) -> None:
        self.config = config if config is not None else jetstream_config()

    def run(
        self,
        scenario: EvolvingScenario,
        algorithm: Algorithm,
        validate: bool = False,
    ) -> SimReport:
        report, __ = self.run_with_values(scenario, algorithm, validate)
        return report

    def run_with_values(
        self,
        scenario: EvolvingScenario,
        algorithm: Algorithm,
        validate: bool = False,
    ) -> tuple[SimReport, WorkflowResult]:
        plan = streaming_plan(scenario.unified)
        return simulate_plan(
            scenario,
            algorithm,
            plan,
            self.config,
            concurrent=False,  # one snapshot at a time
            pipeline=False,
            validate=validate,
        )
