"""Small built-in real graphs for documentation, teaching, and tests.

Zachary's karate club (1977) — the classic 34-vertex social network whose
split into two factions makes evolving-graph behaviour easy to eyeball:
deleting the instructor-administrator bridges disconnects the clubs.
The edge list is public-domain census data reproduced in virtually every
network-analysis package.
"""

from __future__ import annotations

import numpy as np

from repro.evolving.snapshots import EvolvingScenario, synthesize_scenario
from repro.graph.edges import EdgeList

__all__ = ["karate_club_edges", "karate_club_scenario"]

# (member, member) friendships; vertices 0 = instructor, 33 = administrator
_KARATE_PAIRS = [
    (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8),
    (0, 10), (0, 11), (0, 12), (0, 13), (0, 17), (0, 19), (0, 21),
    (0, 31), (1, 2), (1, 3), (1, 7), (1, 13), (1, 17), (1, 19), (1, 21),
    (1, 30), (2, 3), (2, 7), (2, 8), (2, 9), (2, 13), (2, 27), (2, 28),
    (2, 32), (3, 7), (3, 12), (3, 13), (4, 6), (4, 10), (5, 6), (5, 10),
    (5, 16), (6, 16), (8, 30), (8, 32), (8, 33), (9, 33), (13, 33),
    (14, 32), (14, 33), (15, 32), (15, 33), (18, 32), (18, 33), (19, 33),
    (20, 32), (20, 33), (22, 32), (22, 33), (23, 25), (23, 27), (23, 29),
    (23, 32), (23, 33), (24, 25), (24, 27), (24, 31), (25, 31), (26, 29),
    (26, 33), (27, 33), (28, 31), (28, 33), (29, 32), (29, 33), (30, 32),
    (30, 33), (31, 32), (31, 33), (32, 33),
]

N_MEMBERS = 34


def karate_club_edges(directed: bool = False, seed: int = 0) -> EdgeList:
    """The karate-club friendships, weighted uniformly in [1, 4).

    With ``directed=False`` (default) both directions of every friendship
    are included, matching the network's undirected nature.
    """
    rng = np.random.default_rng(seed)
    pairs = list(_KARATE_PAIRS)
    if not directed:
        pairs = pairs + [(b, a) for a, b in pairs]
    src = np.array([a for a, __ in pairs], dtype=np.int64)
    dst = np.array([b for __, b in pairs], dtype=np.int64)
    wt = rng.uniform(1.0, 4.0, size=len(pairs))
    return EdgeList(N_MEMBERS, src, dst, wt)


def karate_club_scenario(
    n_snapshots: int = 6, batch_pct: float = 0.05, seed: int = 2
) -> EvolvingScenario:
    """An evolving window over the club: friendships forming and fading."""
    scenario = synthesize_scenario(
        karate_club_edges(seed=seed),
        n_snapshots=n_snapshots,
        batch_pct=batch_pct,
        seed=seed,
        name="karate-club",
    )
    scenario.metadata["dataset"] = "karate"
    return scenario
