"""The paper's six input graphs as scaled synthetic proxies (Table 2).

The real inputs (Pokec 30M edges … Wikipedia-En 400M edges) are infeasible
for a pure-Python simulator, so each dataset is replaced by a deterministic
RMAT power-law proxy that preserves the original's vertex/edge ratio at a
configurable scale (DESIGN.md substitution table).  The proxy also carries
``capacity_scale`` — the vertex-count ratio to the real graph — so the
accelerator's on-chip capacity shrinks proportionally and partitioning
pressure matches the paper's (e.g. 16 snapshots of LiveJournal against
64 MB still yields four partitions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evolving.snapshots import EvolvingScenario, synthesize_scenario
from repro.graph.edges import EdgeList
from repro.graph.generators import rmat_edges

__all__ = ["DatasetSpec", "DATASETS", "SCALES", "load_pool", "load_scenario"]


@dataclass(frozen=True)
class DatasetSpec:
    """One Table 2 input graph."""

    name: str
    short: str
    paper_vertices: int
    paper_edges: int
    seed: int
    #: RMAT skew (a); webgraphs are more skewed than social networks
    rmat_a: float = 0.57

    def proxy_sizes(self, scale: float) -> tuple[int, int]:
        n_vertices = max(64, int(self.paper_vertices * scale))
        n_edges = max(256, int(self.paper_edges * scale))
        return n_vertices, n_edges


DATASETS: dict[str, DatasetSpec] = {
    spec.short: spec
    for spec in (
        DatasetSpec("pokec", "PK", 1_600_000, 30_000_000, seed=101),
        DatasetSpec("livejournal", "LJ", 4_000_000, 70_000_000, seed=102),
        DatasetSpec("orkut", "OR", 3_000_000, 117_000_000, seed=103),
        DatasetSpec("dbpedia", "DL", 18_000_000, 170_000_000, seed=104, rmat_a=0.60),
        DatasetSpec("uk2002", "UK", 18_000_000, 260_000_000, seed=105, rmat_a=0.60),
        DatasetSpec("wikipedia-en", "Wen", 13_000_000, 400_000_000, seed=106),
    )
}

#: named proxy scales (fraction of the paper graph)
SCALES: dict[str, float] = {
    "tiny": 1 / 20_000,
    "small": 1 / 4_000,
    "medium": 1 / 1_000,
}


def _resolve(name: str) -> DatasetSpec:
    for spec in DATASETS.values():
        if name in (spec.short, spec.name):
            return spec
    raise KeyError(
        f"unknown dataset {name!r}; choose from "
        f"{sorted(s.short for s in DATASETS.values())}"
    )


def load_pool(name: str, scale: str | float = "tiny") -> EdgeList:
    """Generate the proxy edge pool for a Table 2 graph."""
    spec = _resolve(name)
    factor = SCALES[scale] if isinstance(scale, str) else float(scale)
    n_vertices, n_edges = spec.proxy_sizes(factor)
    return rmat_edges(n_vertices, n_edges, seed=spec.seed, a=spec.rmat_a)


def load_scenario(
    name: str,
    scale: str | float = "tiny",
    n_snapshots: int = 16,
    batch_pct: float = 0.01,
    imbalance: float = 1.0,
    seed: int = 7,
) -> EvolvingScenario:
    """Build the paper's §5.1 evolving workload over a proxy graph.

    Defaults follow the evaluation setup: 16 snapshots, 1% batches, half
    additions / half deletions.
    """
    spec = _resolve(name)
    factor = SCALES[scale] if isinstance(scale, str) else float(scale)
    pool = load_pool(name, factor)
    scenario = synthesize_scenario(
        pool,
        n_snapshots=n_snapshots,
        batch_pct=batch_pct,
        imbalance=imbalance,
        seed=seed,
        name=f"{spec.short}@{factor:g}",
    )
    scenario.metadata["dataset"] = spec.short
    scenario.metadata["capacity_scale"] = (
        scenario.n_vertices / spec.paper_vertices
    )
    return scenario
