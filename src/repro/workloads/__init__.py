"""Workloads: Table 2 dataset proxies plus small built-in real graphs."""

from repro.workloads.builtin import karate_club_edges, karate_club_scenario
from repro.workloads.datasets import (
    DATASETS,
    SCALES,
    DatasetSpec,
    load_pool,
    load_scenario,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "SCALES",
    "karate_club_edges",
    "karate_club_scenario",
    "load_pool",
    "load_scenario",
]
