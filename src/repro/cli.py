"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    mega-repro list
    mega-repro run table4 --scale small
    mega-repro run all --scale tiny
    mega-repro simulate --graph Wen --algo sssp --workflow boe --pipeline
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.accel import JetStreamSimulator, MegaSimulator
from repro.algorithms import get_algorithm
from repro.experiments import ALL_EXPERIMENTS, run_experiment
from repro.workloads import DATASETS, SCALES, load_scenario

__all__ = ["main"]


def _cmd_list(args: argparse.Namespace) -> int:
    print("experiments:")
    for name in ALL_EXPERIMENTS:
        print(f"  {name}")
    print("datasets:", ", ".join(sorted(DATASETS)))
    print("scales:", ", ".join(SCALES))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.time()
        result = run_experiment(name, args.scale)
        if args.format == "json":
            print(result.to_json())
        elif args.format == "csv":
            print(result.to_csv(), end="")
        else:
            print(result.format_table())
            print(f"[{name} completed in {time.time() - t0:.1f}s]")
            print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import write_report

    path = write_report(args.out, args.scale)
    print(f"wrote {path}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    import numpy as np

    scenario = load_scenario(
        args.graph, args.scale, n_snapshots=args.snapshots
    )
    u = scenario.unified
    spec = DATASETS[scenario.metadata["dataset"]]
    print(f"scenario {scenario.name}  (proxy of {spec.name})")
    print(
        f"  vertices {u.n_vertices}  union edges {u.n_union_edges}  "
        f"snapshots {u.n_snapshots}  source {scenario.source}"
    )
    common = int(u.common_mask.sum())
    print(
        f"  common graph: {common} edges "
        f"({common / u.n_union_edges:.1%} of the union)"
    )
    adds = [len(b) for b in u.addition_batches()]
    dels = [len(b) for b in u.deletion_batches()]
    print(
        f"  batches: adds {min(adds)}-{max(adds)} edges, "
        f"dels {min(dels)}-{max(dels)} edges per transition"
    )
    sizes = [u.snapshot_graph(k).n_edges for k in range(u.n_snapshots)]
    print(f"  snapshot sizes: {min(sizes)} .. {max(sizes)} edges")
    degrees = np.diff(u.graph.indptr)
    print(
        f"  degrees: mean {degrees.mean():.1f}, max {int(degrees.max())} "
        f"(vertex {int(np.argmax(degrees))})"
    )
    print(
        f"  accelerator capacity scale: "
        f"{scenario.metadata['capacity_scale']:.2e}"
    )
    return 0


def _cmd_track(args: argparse.Namespace) -> int:
    from repro.analysis import snapshot_churn, track_mean_value, track_reach
    from repro.core import EvolvingGraphEngine

    scenario = load_scenario(
        args.graph, args.scale, n_snapshots=args.snapshots
    )
    engine = EvolvingGraphEngine(scenario, args.algo)
    result = engine.evaluate("boe", validate=True)
    reach = track_reach(result, engine.algorithm)
    mean = track_mean_value(result, engine.algorithm)
    churn = snapshot_churn(result)
    print(
        f"{engine.algorithm.name} on {scenario.name}: "
        f"{scenario.n_snapshots} snapshots"
    )
    print(f"  reach      {reach.sparkline()}  "
          f"({reach.values[0]:.0f} -> {reach.values[-1]:.0f} vertices)")
    print(f"  mean value {mean.sparkline()}  "
          f"({mean.values[0]:.3g} -> {mean.values[-1]:.3g})")
    print(f"  churn      {churn.sparkline()}  "
          f"(max {max(churn.values):.0f} vertices at snapshot "
          f"{churn.argmax()})")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    scenario = load_scenario(
        args.graph,
        args.scale,
        n_snapshots=args.snapshots,
        batch_pct=args.batch_pct,
    )
    algo = get_algorithm(args.algo)
    js = JetStreamSimulator().run(scenario, algo, validate=args.validate)
    print(js.summary())
    if args.workflow == "jetstream":
        return 0
    mega = MegaSimulator(args.workflow, pipeline=args.pipeline).run(
        scenario, algo, validate=args.validate
    )
    print(mega.summary())
    print(f"speedup over JetStream (update phase): {mega.speedup_over(js):.2f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mega-repro",
        description="MEGA evolving-graph accelerator reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiments, datasets, scales")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="regenerate a table/figure")
    p_run.add_argument(
        "experiment", choices=sorted(ALL_EXPERIMENTS) + ["all"]
    )
    p_run.add_argument("--scale", default=None, choices=sorted(SCALES))
    p_run.add_argument(
        "--format", default="table", choices=["table", "json", "csv"]
    )
    p_run.set_defaults(func=_cmd_run)

    p_report = sub.add_parser(
        "report", help="run every experiment into one markdown report"
    )
    p_report.add_argument("--out", default="reproduction_report.md")
    p_report.add_argument("--scale", default=None, choices=sorted(SCALES))
    p_report.set_defaults(func=_cmd_report)

    p_inspect = sub.add_parser(
        "inspect", help="describe a dataset's evolving-graph scenario"
    )
    p_inspect.add_argument("--graph", default="PK")
    p_inspect.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    p_inspect.add_argument("--snapshots", type=int, default=16)
    p_inspect.set_defaults(func=_cmd_inspect)

    p_track = sub.add_parser(
        "track", help="track a query property across the window"
    )
    p_track.add_argument("--graph", default="PK")
    p_track.add_argument("--algo", default="sssp")
    p_track.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    p_track.add_argument("--snapshots", type=int, default=16)
    p_track.set_defaults(func=_cmd_track)

    p_sim = sub.add_parser("simulate", help="run one simulation")
    p_sim.add_argument("--graph", default="PK")
    p_sim.add_argument("--algo", default="sssp")
    p_sim.add_argument(
        "--workflow",
        default="boe",
        choices=["jetstream", "direct-hop", "work-sharing", "boe"],
    )
    p_sim.add_argument("--pipeline", action="store_true")
    p_sim.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    p_sim.add_argument("--snapshots", type=int, default=16)
    p_sim.add_argument("--batch-pct", type=float, default=0.01)
    p_sim.add_argument("--validate", action="store_true")
    p_sim.set_defaults(func=_cmd_simulate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
